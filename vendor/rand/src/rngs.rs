//! Concrete generators. Only [`StdRng`] is provided: a fixed, seedable,
//! portable xoshiro256++ — deliberately *not* upstream's ChaCha so the
//! implementation stays a few dozen lines and bit-exact across platforms.

use crate::{RngCore, SeedableRng};

/// Deterministic, portable xoshiro256++ generator.
///
/// Passes BigCrush in its published form; more than adequate for the Monte
/// Carlo estimates and statistical tests in this suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        if s == [0, 0, 0, 0] {
            // The all-zero state is a fixed point; remap it.
            s = [0xDEAD_BEEF, 0xCAFE_F00D, 0xBAD_5EED, 0x1234_5678];
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl StdRng {
    /// Snapshot the raw generator state for checkpointing. Restoring via
    /// [`StdRng::from_state`] continues the stream bit-identically.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a [`StdRng::state`] snapshot.
    ///
    /// The all-zero state (a fixed point of xoshiro256++) is remapped the
    /// same way as in [`SeedableRng::from_seed`], so every input is usable.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            return StdRng {
                s: [0xDEAD_BEEF, 0xCAFE_F00D, 0xBAD_5EED, 0x1234_5678],
            };
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn state_roundtrip_continues_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The zero state is remapped, never a fixed point.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_ne!(rng.next_u64(), rng.next_u64());
        let z = StdRng::from_seed([0u8; 32]);
        assert_ne!(z.s, [0, 0, 0, 0]);
    }
}
