//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a minimal, dependency-free implementation of exactly the surface the
//! suite calls: [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], and [`seq::SliceRandom`] (`shuffle`/`choose`).
//!
//! Determinism contract: equal seeds give bit-identical streams. The
//! generator is **not** stream-compatible with upstream `rand`; everything
//! in this repo that depends on exact values derives them from this
//! implementation, so the swap is self-consistent.

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::{Distribution, SampleRange, Standard};

/// Core entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Construct from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it to full state deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the domain,
    /// `bool` fair coin).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty, matching upstream behaviour.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        distributions::unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
