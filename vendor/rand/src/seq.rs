//! Slice helpers mirroring `rand::seq::SliceRandom`.

use crate::RngCore;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
            self.get(i)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input ordered");
    }

    #[test]
    fn choose_none_on_empty_some_on_nonempty() {
        let mut rng = StdRng::seed_from_u64(9);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [10, 20, 30];
        let c = *v.choose(&mut rng).unwrap();
        assert!(v.contains(&c));
    }
}
