//! Distributions backing [`crate::Rng::gen`] and [`crate::Rng::gen_range`].

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Map 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Map 32 random bits to a uniform `f32` in `[0, 1)` (24-bit mantissa).
#[inline]
pub(crate) fn unit_f32(bits: u32) -> f32 {
    (bits >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: uniform over the unit interval for
/// floats, uniform over the whole domain for integers, fair coin for bools.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        unit_f32(rng.next_u32())
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range usable with [`crate::Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by 128-bit widening multiply
/// (Lemire's method without the rejection step; the bias is at most
/// `bound / 2^64`, far below anything observable here).
#[inline]
fn below(rng_bits: u64, bound: u64) -> u64 {
    ((rng_bits as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(below(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng.next_u64(), span as u64) as $t)
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty, $unit:ident, $next:ident);*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty float range");
                let u = $unit(rng.$next());
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty float range");
                let u = $unit(rng.$next());
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_range_float!(f64, unit_f64, next_u64; f32, unit_f32, next_u32);

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5usize..17);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&y));
        }
    }

    #[test]
    fn int_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&x));
            let y = rng.gen_range(0.1f64..=0.9);
            assert!((0.1..=0.9).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
    }
}
