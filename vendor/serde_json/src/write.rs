//! Compact JSON writer.

use serde::Value;
use std::fmt::Write as _;

pub(crate) fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is shortest-round-trip and keeps a `.0` on integral
                // values, matching serde_json's float syntax.
                let _ = write!(out, "{f:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
