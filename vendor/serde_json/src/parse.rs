//! Recursive-descent JSON parser.

use crate::Error;
use serde::Value;

/// Nesting bound: keeps adversarial inputs from overflowing the stack.
const MAX_DEPTH: usize = 128;

pub(crate) fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse("trailing characters after JSON value", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::parse(
                format!("invalid literal, expected `{word}`"),
                self.pos,
            ))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::parse("JSON nesting too deep", self.pos));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::parse(
                format!("unexpected byte `{}`", c as char),
                self.pos,
            )),
            None => Err(Error::parse("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse("expected `,` or `]` in array", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::parse("expected `,` or `}` in object", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue; // unicode_escape advanced pos itself
                        }
                        _ => return Err(Error::parse("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8: &str).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::parse("invalid UTF-8", start))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    /// Parse the 4 hex digits after `\u` (pos is at the first digit), plus a
    /// following low surrogate when needed. Leaves pos after the escape.
    fn unicode_escape(&mut self) -> Result<char, Error> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require `\uXXXX` low surrogate.
            if self.bytes.get(self.pos) == Some(&b'\\')
                && self.bytes.get(self.pos + 1) == Some(&b'u')
            {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(Error::parse("invalid low surrogate", self.pos));
                }
                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(code)
                    .ok_or_else(|| Error::parse("invalid surrogate pair", self.pos));
            }
            return Err(Error::parse("lone high surrogate", self.pos));
        }
        char::from_u32(hi).ok_or_else(|| Error::parse("invalid unicode escape", self.pos))
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(Error::parse("invalid hex digit in \\u escape", self.pos)),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("invalid number bytes", start))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(if n >= 0 {
                        Value::UInt(n as u64)
                    } else {
                        Value::Int(n)
                    });
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::parse(format!("invalid number `{text}`"), start))
    }
}
