//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`] / [`from_str`] over the vendored serde's value-tree model.
//!
//! Floats are written with Rust's shortest-round-trip formatting (`{:?}`),
//! which preserves exact `f64` values across a write/read cycle — the
//! property the real crate's `float_roundtrip` feature guarantees. Matching
//! upstream, non-finite floats serialize as `null` (and read back as NaN).

use serde::{DeError, Deserialize, Serialize, Value};

mod parse;
mod write;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
    /// Byte offset of the error in the input (0 for write errors).
    offset: usize,
}

impl Error {
    fn parse(message: impl Into<String>, offset: usize) -> Self {
        Error {
            message: message.into(),
            offset,
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte offset {}", self.message, self.offset)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error {
            message: e.to_string(),
            offset: 0,
        }
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write::write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Deserialize a `T` from JSON text. Trailing non-whitespace is an error.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse JSON text into a raw [`Value`] tree.
pub fn from_str_value(s: &str) -> Result<Value, Error> {
    parse::parse(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<u64>(" 42 ").unwrap(), 42);
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for &x in &[0.1, 1.0 / 3.0, 6.02e23, 5e-324, f64::MAX, -0.0, 2.5e-10] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s} -> {back}");
        }
    }

    #[test]
    fn integral_floats_keep_float_syntax() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
        assert_eq!(from_str::<f64>("1").unwrap(), 1.0);
    }

    #[test]
    fn nonfinite_floats_are_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let nasty = "a\"b\\c\n\t\r\u{8}\u{c}\u{1}é日本 \u{1F600}";
        let s = to_string(nasty).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, nasty);
    }

    #[test]
    fn vectors_options_tuples() {
        let v = vec![1u64, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>("[1,2,3]").unwrap(), v);
        assert_eq!(to_string(&None::<u32>).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("5").unwrap(), Some(5));
        let t = (1u8, "x".to_string());
        let s = to_string(&t).unwrap();
        assert_eq!(from_str::<(u8, String)>(&s).unwrap(), t);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<bool>("troo").is_err());
        assert!(from_str::<f64>("1.2.3").is_err());
    }

    #[test]
    fn nested_object_parses() {
        let v = from_str_value(r#"{"a": [1, {"b": null}], "c": -2.5e3}"#).unwrap();
        assert_eq!(v.field("c"), Some(&Value::Float(-2500.0)));
        let a = v.field("a").unwrap().as_array().unwrap();
        assert_eq!(a[0], Value::UInt(1));
        assert_eq!(a[1].field("b"), Some(&Value::Null));
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(2000) + &"]".repeat(2000);
        assert!(from_str_value(&deep).is_err());
    }
}
