//! Offline stand-in for the one crossbeam API this workspace uses:
//! `crossbeam::thread::scope` with `Scope::spawn`, implemented directly on
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! Behavioral difference from upstream: a panicking worker propagates the
//! panic out of `scope` (std semantics) instead of surfacing it as an `Err`.
//! Call sites in this repo `.expect(..)` the result either way, so both
//! implementations abort the process identically on worker panic.

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` surface.

    /// Result of a scope: `Ok` unless a spawned thread panicked.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// Handle for spawning threads tied to the scope's lifetime.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope again so
        /// workers can spawn nested workers (upstream's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            // `inner` is a Copy reference; rebuilding the wrapper inside the
            // worker avoids tying `&self` to the whole `'scope` lifetime.
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned;
    /// all spawned threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let out = thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            99
        })
        .expect("no worker panicked");
        assert_eq!(out, 99);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn join_returns_thread_value() {
        let v = thread::scope(|scope| {
            let h = scope.spawn(|_| 7 * 6);
            h.join().expect("worker ok")
        })
        .expect("scope ok");
        assert_eq!(v, 42);
    }
}
