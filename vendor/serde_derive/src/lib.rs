//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! The offline build rules out `syn`/`quote`, so the item is parsed directly
//! from the `proc_macro` token stream: attributes are scanned for
//! `#[serde(skip)]` / `#[serde(default)]` / `#[serde(default = "path")]`,
//! field and variant shapes are
//! extracted, and the impl is emitted as a string and re-parsed. Supported
//! shapes — all the suite needs — are non-generic structs (named, tuple,
//! unit) and enums with unit, tuple, and struct variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How to fill a field that is absent from the serialized object.
#[derive(Clone, PartialEq)]
enum FieldDefault {
    /// No fallback: a missing field is a deserialization error.
    Required,
    /// `#[serde(default)]`: fall back to `Default::default()`.
    Std,
    /// `#[serde(default = "path")]`: fall back to calling `path()`.
    Path(String),
}

struct Field {
    name: String,
    skip: bool,
    default: FieldDefault,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    body: Body,
}

/// Derives `serde::Serialize` (value-tree lowering).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` (value-tree rebuilding).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen(&parsed)
            .parse()
            .expect("serde_derive emitted invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error! emission is valid"),
    }
}

// ---------------------------------------------------------------- parsing

/// `(skip, default)` flags from one `#[serde(...)]` attribute body.
fn serde_flags(attr_body: &TokenStream) -> (bool, FieldDefault) {
    let mut toks = attr_body.clone().into_iter();
    let is_serde = matches!(toks.next(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
    if !is_serde {
        return (false, FieldDefault::Required);
    }
    let Some(TokenTree::Group(args)) = toks.next() else {
        return (false, FieldDefault::Required);
    };
    let mut skip = false;
    let mut default = FieldDefault::Required;
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        if let TokenTree::Ident(id) = &args[j] {
            match id.to_string().as_str() {
                "skip" => skip = true,
                "default" => {
                    // `default = "path"` names a fn to call; bare `default`
                    // means `Default::default()`.
                    let eq = matches!(args.get(j + 1),
                        Some(TokenTree::Punct(p)) if p.as_char() == '=');
                    if let (true, Some(TokenTree::Literal(lit))) = (eq, args.get(j + 2)) {
                        let path = lit.to_string();
                        default = FieldDefault::Path(path.trim_matches('"').to_string());
                        j += 2;
                    } else {
                        default = FieldDefault::Std;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    (skip, default)
}

/// Advance past attributes, merging any serde flags found into the result.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> (bool, FieldDefault) {
    let mut flags = (false, FieldDefault::Required);
    while *i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[*i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[*i + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let (s, d) = serde_flags(&g.stream());
        flags.0 |= s;
        if d != FieldDefault::Required {
            flags.1 = d;
        }
        *i += 2;
    }
    flags
}

/// Advance past `pub`, `pub(...)`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in derive does not support generic type `{name}`"
        ));
    }

    let body = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(&g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(count_top_level_items(&g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Fields::Unit),
            other => return Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(&g.stream())?)
            }
            other => return Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => return Err(format!("cannot derive serde impls for `{other}` items")),
    };
    Ok(Input { name, body })
}

fn parse_named_fields(stream: &TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let (skip, default) = skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        consume_type(&tokens, &mut i);
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    Ok(fields)
}

/// Advance past one type, stopping after the `,` that ends it (or at end of
/// stream). Tracks `<`/`>` depth so commas inside generic arguments don't
/// terminate early.
fn consume_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth: i32 = 0;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Number of comma-separated items at angle-depth zero (tuple-struct arity).
fn count_top_level_items(stream: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        consume_type(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: &TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_top_level_items(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(&g.stream())?)
            }
            _ => Fields::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ------------------------------------------------------------- generation

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(Fields::Named(fields)) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                let fname = &f.name;
                pushes.push_str(&format!(
                    "entries.push((\"{fname}\".to_string(), \
                     ::serde::Serialize::to_value(&self.{fname})));\n"
                ));
            }
            format!(
                "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(entries)"
            )
        }
        Body::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Struct(Fields::Tuple(arity)) => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    Fields::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![(\
                             \"{vname}\".to_string(), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(vec![(\
                             \"{vname}\".to_string(), \
                             ::serde::Value::Object(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

/// One named-field initializer `field: <expr>` reading from object value `src`.
fn named_field_init(ty: &str, f: &Field, src: &str) -> String {
    let fname = &f.name;
    if f.skip {
        return format!("{fname}: ::std::default::Default::default(),\n");
    }
    let on_missing = match &f.default {
        FieldDefault::Std => "::std::default::Default::default()".to_string(),
        // Emitted at the derive site, so a bare fn name resolves in the
        // module that defines the struct — same as real serde.
        FieldDefault::Path(path) => format!("{path}()"),
        FieldDefault::Required => format!(
            "return ::std::result::Result::Err(::serde::DeError::missing_field(\
             \"{ty}\", \"{fname}\"))"
        ),
    };
    format!(
        "{fname}: match {src}.field(\"{fname}\") {{\n\
         Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
         None => {on_missing},\n}},\n"
    )
}

fn gen_tuple_from_array(ctor: &str, arity: usize, src: &str) -> String {
    let items: Vec<String> = (0..arity)
        .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
        .collect();
    format!(
        "{{\nlet __items = {src}.as_array().ok_or_else(|| \
         ::serde::DeError::expected(\"array for {ctor}\", {src}))?;\n\
         if __items.len() != {arity} {{\n\
         return ::std::result::Result::Err(::serde::DeError::custom(format!(\
         \"expected {arity} elements for {ctor}, got {{}}\", __items.len())));\n}}\n\
         ::std::result::Result::Ok({ctor}({}))\n}}",
        items.join(", ")
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(Fields::Named(fields)) => {
            let inits: String = fields
                .iter()
                .map(|f| named_field_init(name, f, "__v"))
                .collect();
            format!(
                "if __v.as_object().is_none() {{\n\
                 return ::std::result::Result::Err(::serde::DeError::expected(\
                 \"object for {name}\", __v));\n}}\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Body::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Body::Struct(Fields::Tuple(arity)) => gen_tuple_from_array(name, *arity, "__v"),
        Body::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    Fields::Tuple(arity) => {
                        let expr =
                            gen_tuple_from_array(&format!("{name}::{vname}"), *arity, "__inner");
                        data_arms.push_str(&format!("\"{vname}\" => {expr},\n"));
                    }
                    Fields::Named(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| named_field_init(name, f, "__inner"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             if __inner.as_object().is_none() {{\n\
                             return ::std::result::Result::Err(::serde::DeError::expected(\
                             \"object for {name}::{vname}\", __inner));\n}}\n\
                             ::std::result::Result::Ok({name}::{vname} {{\n{inits}}})\n}},\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(format!(\
                 \"unknown unit variant `{{__other}}` for {name}\"))),\n}},\n\
                 ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__key, __inner) = &__entries[0];\n\
                 match __key.as_str() {{\n\
                 {data_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(format!(\
                 \"unknown variant `{{__other}}` for {name}\"))),\n}}\n}},\n\
                 __other => ::std::result::Result::Err(::serde::DeError::expected(\
                 \"enum value for {name}\", __other)),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
