//! Offline stand-in for the subset of `proptest` this workspace uses:
//! the `proptest!` macro over numeric-range strategies, `ProptestConfig`,
//! and the `prop_assert*` family.
//!
//! Semantics: each test body runs `cases` times with arguments drawn from a
//! deterministic per-test RNG (derived from the test's name), so failures
//! reproduce exactly. There is no shrinking — a failing case reports the
//! case number and the message from the failed assertion.

#[doc(hidden)]
pub use rand as __rand;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! Everything a `proptest!` test file needs.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Runner configuration. Only `cases` is honored by the stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure: the property does not hold.
    Fail(String),
    /// `prop_assume!` rejection: the case does not apply.
    Reject,
}

impl TestCaseError {
    /// Failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => f.write_str(m),
            TestCaseError::Reject => f.write_str("case rejected by prop_assume!"),
        }
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator. The stand-in supports the numeric range strategies
/// the suite uses (`lo..hi`, `lo..=hi`).
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Deterministic per-test seed: FNV-1a of the test path, so adding or
/// reordering sibling tests never changes another test's stream.
#[doc(hidden)]
pub fn seed_for(test_path: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Fresh deterministic RNG for one generated case.
#[doc(hidden)]
pub fn case_rng(test_path: &str, case: u32) -> StdRng {
    let mut meta = StdRng::seed_from_u64(seed_for(test_path) ^ u64::from(case));
    StdRng::seed_from_u64(meta.next_u64())
}

/// Define property tests. Mirrors upstream syntax for the forms used here:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0u64..100, y in 0.0f64..1.0) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(test_path, case);
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) | Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(message)) => panic!(
                        "proptest `{}` failed at case {}/{}:\n  {}\n  args: {}",
                        test_path,
                        case,
                        config.cases,
                        message,
                        [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", "),
                    ),
                }
            }
        }
    )*};
}

/// Assert a boolean property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skip cases whose inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in -1.5f64..=1.5, n in 2usize..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..=1.5).contains(&y), "y = {y}");
            prop_assert!((2..5).contains(&n));
        }

        #[test]
        fn assume_skips_cases(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 999);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a: Vec<u64> = (0..5)
            .map(|case| crate::Strategy::sample(&(0u64..1000), &mut crate::case_rng("t", case)))
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|case| crate::Strategy::sample(&(0u64..1000), &mut crate::case_rng("t", case)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
