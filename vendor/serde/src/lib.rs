//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The real serde's serializer/visitor architecture is replaced by a much
//! smaller value-tree model: [`Serialize`] lowers a type to a [`Value`],
//! [`Deserialize`] rebuilds it from one, and the companion `serde_json`
//! stand-in converts `Value` to and from JSON text. The derive macros in
//! `serde_derive` target this model directly, so `#[derive(Serialize,
//! Deserialize)]` (including `#[serde(skip)]` and `#[serde(default)]`)
//! works unchanged on the suite's types.
//!
//! Representation choices match upstream serde's external tagging:
//! unit enum variants serialize as a string, data-carrying variants as a
//! single-key object, newtype structs as their inner value.

pub use serde_derive::{Deserialize, Serialize};

mod impls;

/// A JSON-shaped value tree: the interchange format between `Serialize`,
/// `Deserialize`, and the `serde_json` stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer (always `< 0`; non-negatives normalize to `UInt`).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with preserved key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries, or `None` if not an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow the array elements, or `None` if not an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Look up a field of an object by key.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Short name of the value's kind, for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Error with an arbitrary message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Error for a required field absent from the input object.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError {
            message: format!("missing field `{field}` while deserializing {ty}"),
        }
    }

    /// Error for a value of the wrong kind.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError {
            message: format!("expected {what}, got {}", got.kind()),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// Lower to the interchange value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the interchange value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}
