//! `Serialize`/`Deserialize` implementations for std types.

use crate::{DeError, Deserialize, Serialize, Value};
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::UInt(n) => *n,
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::UInt(n) => *n as i128,
                    Value::Int(n) => *n as i128,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| {
                    DeError::custom(format!("{wide} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN), // serde_json writes non-finite floats as null
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => {
                s.chars().next().ok_or_else(|| DeError::expected("char", v))
            }
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        if items.len() != N {
            return Err(DeError::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::custom("array length mismatch"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("tuple array", v))?;
                let expect = [$($idx),+].len();
                if items.len() != expect {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expect} elements, got {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

/// Maps serialize as objects with stringified keys (the JSON constraint).
trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! impl_map_key_num {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| {
                    DeError::custom(format!("bad {} map key: {key:?}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_map_key_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic output
        Value::Object(entries)
    }
}

impl<K: MapKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        entries
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        entries
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}
