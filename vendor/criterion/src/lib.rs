//! Offline stand-in for the subset of `criterion` this workspace's benches
//! use. It runs each benchmark `sample_size` times with wall-clock timing and
//! prints a mean/min/max summary — no statistics engine, no HTML reports, no
//! CLI filtering. Good enough to keep `cargo bench` runnable and to catch
//! order-of-magnitude regressions by eye.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Work-unit annotation for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifier combining a function name and an input label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function/parameter` id, e.g. `forward/nsfnet14`.
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Time one call of `routine`, keeping its output alive until after the
    /// clock stops so drop cost is excluded and the optimizer cannot erase
    /// the computation.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed = start.elapsed();
        std::hint::black_box(&out);
        drop(out);
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let n = self.default_sample_size;
        run_benchmark(id, n, None, f);
        self
    }
}

/// A group of benchmarks sharing sample-size / throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate benchmarks with a work unit for per-element reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark `f` with a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        run_benchmark(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Benchmark a closure with no external input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// End the group. (No cross-benchmark reporting in the stand-in.)
    pub fn finish(&mut self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        times.push(bencher.elapsed);
    }
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let min = times.iter().min().copied().unwrap_or_default();
    let max = times.iter().max().copied().unwrap_or_default();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{id}: mean {mean:?}  min {min:?}  max {max:?}  [{samples} samples]{rate}");
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Run every benchmark in this group.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Run every benchmark in this group.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            let _ = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures_expected_number_of_times() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(7);
            group.bench_with_input(BenchmarkId::new("f", "x"), &3u32, |b, input| {
                b.iter(|| {
                    calls += 1;
                    *input * 2
                });
            });
            group.finish();
        }
        assert_eq!(calls, 7);
    }

    #[test]
    fn bench_function_times_routine() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("standalone", |b| {
            b.iter(|| {
                ran = true;
                42u64
            });
        });
        assert!(ran);
    }
}
