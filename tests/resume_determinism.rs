//! End-to-end resume determinism: training interrupted at epoch k and
//! resumed from its checkpoint must be indistinguishable — bit for bit —
//! from a run that was never interrupted. This is the contract that makes
//! checkpoints safe to rely on: resuming is not "approximately continuing",
//! it is the same computation.

use routenet_core::prelude::*;
use routenet_dataset::gen::{generate_dataset_with_threads, GenConfig, TopologySpec};

fn tiny_dataset(n: usize, seed: u64) -> Vec<Sample> {
    let mut cfg = GenConfig::new(
        TopologySpec::Synthetic {
            n: 6,
            topo_seed: 11,
        },
        n,
        seed,
    );
    cfg.sim.duration_s = 60.0;
    cfg.sim.warmup_s = 6.0;
    generate_dataset_with_threads(&cfg, 1)
}

fn tiny_model() -> RouteNet {
    RouteNet::new(RouteNetConfig {
        link_state_dim: 8,
        path_state_dim: 8,
        readout_hidden: 16,
        t_iterations: 2,
        predict_jitter: true,
        predict_drops: false,
        seed: 7,
    })
}

#[test]
fn interrupted_plus_resumed_equals_straight_run() {
    let data = tiny_dataset(8, 21);
    let (train_set, val_set) = data.split_at(6);
    let ckpt = std::env::temp_dir().join(format!("rn-e2e-resume-{}.ckpt", std::process::id()));

    let base = TrainConfig {
        epochs: 4,
        batch_size: 2,
        lr: 3e-3,
        ..TrainConfig::default()
    };

    // Reference: 4 epochs, never interrupted.
    let mut straight = tiny_model();
    let straight_report = train(&mut straight, train_set, val_set, &base).unwrap();

    // Interrupted: 2 epochs + checkpoint, then a fresh process-equivalent
    // (a brand-new model instance) resumes for the remaining 2.
    let mut first_half = tiny_model();
    let cfg_half = TrainConfig {
        epochs: 2,
        checkpoint_path: Some(ckpt.to_string_lossy().into_owned()),
        ..base.clone()
    };
    let half_report = train(&mut first_half, train_set, val_set, &cfg_half).unwrap();
    assert_eq!(half_report.epochs.len(), 2);

    let mut resumed = tiny_model();
    let cfg_resume = TrainConfig {
        epochs: 4,
        resume_from: Some(ckpt.to_string_lossy().into_owned()),
        ..base.clone()
    };
    let resumed_report = train(&mut resumed, train_set, val_set, &cfg_resume).unwrap();

    // The loss curves agree to the last bit...
    assert_eq!(straight_report.epochs.len(), 4);
    assert_eq!(straight_report.epochs, resumed_report.epochs);
    assert_eq!(straight_report.best_epoch, resumed_report.best_epoch);
    assert_eq!(
        straight_report.best_loss.to_bits(),
        resumed_report.best_loss.to_bits()
    );
    // ...and so do the final parameters and the predictions they produce.
    assert_eq!(straight.store(), resumed.store());
    let p_straight: Vec<f64> = straight
        .predict_scenario(&data[7].scenario)
        .iter()
        .map(|p| p.delay_s)
        .collect();
    let p_resumed: Vec<f64> = resumed
        .predict_scenario(&data[7].scenario)
        .iter()
        .map(|p| p.delay_s)
        .collect();
    assert_eq!(p_straight, p_resumed);

    std::fs::remove_file(&ckpt).ok();
}
