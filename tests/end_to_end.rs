//! Cross-crate integration tests: the full pipeline from topology to
//! trained-model predictions, exercised at miniature scale so they run in
//! debug mode in seconds.

use routenet_core::prelude::*;
use routenet_dataset::gen::{
    generate_dataset_with_threads, GenConfig, RoutingDiversity, TopologySpec,
};
use routenet_dataset::io::{load_jsonl, save_jsonl};

fn tiny_gen(n: usize, seed: u64) -> GenConfig {
    let mut cfg = GenConfig::new(
        TopologySpec::Synthetic {
            n: 6,
            topo_seed: 11,
        },
        n,
        seed,
    );
    cfg.sim.duration_s = 80.0;
    cfg.sim.warmup_s = 8.0;
    cfg
}

fn tiny_model_cfg() -> RouteNetConfig {
    RouteNetConfig {
        link_state_dim: 8,
        path_state_dim: 8,
        readout_hidden: 16,
        t_iterations: 3,
        predict_jitter: true,
        predict_drops: false,
        seed: 5,
    }
}

#[test]
fn pipeline_generate_train_predict() {
    let data = generate_dataset_with_threads(&tiny_gen(14, 3), 2);
    let (train_set, test_set) = data.split_at(11);
    let mut model = RouteNet::new(tiny_model_cfg());
    let report = train(
        &mut model,
        train_set,
        test_set,
        &TrainConfig {
            epochs: 10,
            batch_size: 4,
            ..TrainConfig::default()
        },
    )
    .expect("training failed");
    // Loss must drop substantially from the first epoch.
    let first = report.epochs.first().unwrap().train_loss;
    let best = report.best_loss;
    assert!(best < first, "no learning: {first} -> {best}");

    // Predictions on held-out data correlate with the simulator.
    let ev = collect_predictions(&model, test_set);
    let s = ev.delay_summary().expect("non-empty eval");
    assert!(s.pearson_r > 0.6, "weak correlation: r = {}", s.pearson_r);
    assert!(s.mre.is_finite());
}

#[test]
fn pipeline_through_disk_checkpoint() {
    let data = generate_dataset_with_threads(&tiny_gen(8, 17), 2);
    let mut model = RouteNet::new(tiny_model_cfg());
    train(
        &mut model,
        &data[..6],
        &[],
        &TrainConfig {
            epochs: 4,
            batch_size: 3,
            ..TrainConfig::default()
        },
    )
    .expect("training failed");
    let dir = std::env::temp_dir().join(format!("rn-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Model checkpoint roundtrip through a file.
    let model_path = dir.join("model.json");
    std::fs::write(&model_path, model.to_json()).unwrap();
    let restored = RouteNet::from_json(&std::fs::read_to_string(&model_path).unwrap()).unwrap();

    // Dataset roundtrip through a file.
    let ds_path = dir.join("eval.jsonl");
    save_jsonl(&ds_path, &data[6..]).unwrap();
    let eval_set = load_jsonl(&ds_path).unwrap();

    // Restored model on restored data == original model on original data.
    let a = collect_predictions(&model, &data[6..]);
    let b = collect_predictions(&restored, &eval_set);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.delay_pred.iter().zip(&b.delay_pred) {
        assert_eq!(x, y, "prediction changed across disk roundtrip");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mm1_baseline_accurate_on_mm1_exact_labels() {
    // With exponential sizes + Poisson arrivals the labels are per-link
    // M/M/1 (plus tandem correlation); the analytic baseline must be close.
    let mut cfg = GenConfig::mm1_exact(TopologySpec::Nsfnet, 2, 7);
    cfg.sim.duration_s = 300.0;
    cfg.sim.warmup_s = 30.0;
    cfg.routing = RoutingDiversity::Fixed;
    let data = generate_dataset_with_threads(&cfg, 2);
    let ev = collect_predictions(&Mm1Baseline::default(), &data);
    let s = ev.delay_summary().expect("non-empty eval");
    assert!(
        s.median_re < 0.15,
        "M/M/1 medRE {} too high on exact labels",
        s.median_re
    );
    assert!(s.pearson_r > 0.9);
}

#[test]
fn mm1_baseline_biased_on_deterministic_sizes() {
    // The default (M/D/1-like) labels expose the analytic model's bias: it
    // must systematically overestimate delay.
    let mut cfg = tiny_gen(4, 23);
    cfg.intensity_min = 0.6;
    cfg.intensity_max = 0.8;
    cfg.sim.duration_s = 300.0;
    cfg.sim.warmup_s = 30.0;
    let data = generate_dataset_with_threads(&cfg, 2);
    let ev = collect_predictions(&Mm1Baseline::default(), &data);
    let over = ev
        .delay_pred
        .iter()
        .zip(&ev.delay_true)
        .filter(|(p, t)| p > t)
        .count();
    assert!(
        over as f64 > 0.8 * ev.len() as f64,
        "expected systematic overestimation, got {over}/{}",
        ev.len()
    );
}

#[test]
fn routenet_transfers_across_graph_sizes() {
    // Train on 6-node graphs, predict on a 10-node graph the model never
    // saw: output must be structurally valid and loosely correlated.
    let train_data = generate_dataset_with_threads(&tiny_gen(12, 31), 2);
    let mut model = RouteNet::new(tiny_model_cfg());
    train(
        &mut model,
        &train_data,
        &[],
        &TrainConfig {
            epochs: 8,
            batch_size: 4,
            ..TrainConfig::default()
        },
    )
    .expect("training failed");
    let mut other = GenConfig::new(
        TopologySpec::Synthetic {
            n: 10,
            topo_seed: 99,
        },
        2,
        71,
    );
    other.sim.duration_s = 80.0;
    other.sim.warmup_s = 8.0;
    let unseen = generate_dataset_with_threads(&other, 2);
    let ev = collect_predictions(&model, &unseen);
    assert_eq!(
        ev.len(),
        unseen
            .iter()
            .map(|s| s.targets.iter().filter(|t| t.delay_s > 0.0).count())
            .sum::<usize>()
    );
    let s = ev.delay_summary().expect("non-empty eval");
    assert!(
        s.pearson_r > 0.3,
        "transfer correlation too weak: {}",
        s.pearson_r
    );
    assert!(ev.delay_pred.iter().all(|d| d.is_finite() && *d > 0.0));
}

#[test]
fn fnn_cannot_transfer_but_routenet_can() {
    // The structural contrast at the heart of the paper.
    let data6 = generate_dataset_with_threads(&tiny_gen(6, 41), 2);
    let fnn = FnnBaseline::train(
        &data6,
        &FnnConfig {
            hidden: vec![16],
            epochs: 20,
            ..FnnConfig::default()
        },
    );
    let mut other = GenConfig::new(
        TopologySpec::Synthetic {
            n: 9,
            topo_seed: 55,
        },
        1,
        81,
    );
    other.sim.duration_s = 60.0;
    other.sim.warmup_s = 6.0;
    let unseen = generate_dataset_with_threads(&other, 1);
    assert!(!fnn.supports(&unseen[0].scenario));
    // RouteNet (even untrained) accepts the new graph.
    let mut rn = RouteNet::new(tiny_model_cfg());
    rn.set_normalizer(Normalizer {
        capacity_scale: 40_000.0,
        traffic_scale: 300.0,
        ..Normalizer::default()
    });
    let preds = rn.predict(&unseen[0].scenario);
    assert_eq!(preds.len(), 9 * 8);
}

#[test]
fn drop_head_learns_finite_buffer_losses() {
    // Finite buffers at high load: labels contain real drops; a RouteNet
    // with the drop head must learn them better than predicting zero.
    let mut cfg = tiny_gen(14, 61);
    cfg.sim.buffer_pkts = Some(3);
    cfg.intensity_min = 0.9;
    cfg.intensity_max = 1.1;
    cfg.sim.duration_s = 200.0;
    cfg.sim.warmup_s = 20.0;
    let data = generate_dataset_with_threads(&cfg, 2);
    // Sanity: the dataset actually contains drops.
    let total_drop: f64 = data
        .iter()
        .flat_map(|s| s.targets.iter().map(|t| t.drop_prob))
        .sum();
    assert!(
        total_drop > 0.0,
        "no drops generated — experiment is vacuous"
    );

    let (train_set, test_set) = data.split_at(11);
    let mut model = RouteNet::new(RouteNetConfig {
        predict_drops: true,
        ..tiny_model_cfg()
    });
    assert_eq!(model.out_dim(), 3);
    train(
        &mut model,
        train_set,
        &[],
        &TrainConfig {
            epochs: 20,
            batch_size: 4,
            ..TrainConfig::default()
        },
    )
    .expect("training failed");
    let ev = collect_predictions(&model, test_set);
    let (_, r) = ev.drop_summary().expect("model has a drop head");
    // Trained with MSE, compare against the zero predictor in MSE.
    let mse: f64 = ev
        .drop_pred
        .iter()
        .zip(&ev.drop_true)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / ev.drop_true.len() as f64;
    let zero_mse: f64 = ev.drop_true.iter().map(|t| t * t).sum::<f64>() / ev.drop_true.len() as f64;
    assert!(
        mse < zero_mse,
        "drop head no better than zero predictor: mse {mse} vs {zero_mse}"
    );
    assert!(r > 0.3, "drop predictions uncorrelated: r = {r}");
    // Predictions respect the probability range.
    assert!(ev.drop_pred.iter().all(|p| (0.0..=1.0).contains(p)));

    // The M/M/1/K analytic baseline with the right buffer also applies.
    let mm1k = Mm1kBaseline {
        buffer_pkts: 4,
        ..Mm1kBaseline::default()
    };
    let evk = collect_predictions(&mm1k, test_set);
    let (mae_k, _) = evk.drop_summary().expect("analytic drop baseline");
    assert!(mae_k.is_finite());
}

#[test]
fn top_n_analytics_match_ground_truth_with_exact_predictor() {
    let data = generate_dataset_with_threads(&tiny_gen(2, 51), 1);
    let top = top_n_paths_by_delay(&Mm1Baseline::default(), &data[0], 5);
    assert_eq!(top.len(), 5);
    for w in top.windows(2) {
        assert!(w[0].2 >= w[1].2, "top-N not sorted");
    }
}
