//! Chaos suite: deterministic fault schedules injected into the IO seam
//! while the gen → train → checkpoint → resume pipeline runs. The contract,
//! asserted under every schedule in the pinned corpus:
//!
//! 1. the run either completes, or fails with a *typed* error — never a
//!    panic;
//! 2. whatever checkpoint file is left on disk loads cleanly (the atomic
//!    write protocol guarantees old bytes or new bytes, never a torn
//!    prefix);
//! 3. resuming from that checkpoint on a healthy filesystem lands
//!    bit-for-bit on the uninterrupted reference run;
//! 4. transient faults are absorbed by the retry layer without changing
//!    any result;
//! 5. telemetry faults never perturb training (pure-observer property) and
//!    dataset write faults never corrupt the previous file.

use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::Arc;

use routenet_core::prelude::*;
use routenet_dataset::gen::{generate_dataset_with_threads, GenConfig, TopologySpec};
use routenet_dataset::io::{load_jsonl, load_jsonl_with, save_jsonl_with, IoError};
use routenet_faults::{
    FaultKind, FaultPlan, FaultRule, FsHandle, OpKind, RealFs, RecordingSleeper, RetryPolicy,
};
use routenet_obs::Telemetry;

fn tiny_dataset(n: usize, seed: u64) -> Vec<Sample> {
    let mut cfg = GenConfig::new(
        TopologySpec::Synthetic {
            n: 6,
            topo_seed: 11,
        },
        n,
        seed,
    );
    cfg.sim.duration_s = 50.0;
    cfg.sim.warmup_s = 5.0;
    generate_dataset_with_threads(&cfg, 1)
}

fn tiny_model() -> RouteNet {
    RouteNet::new(RouteNetConfig {
        link_state_dim: 6,
        path_state_dim: 6,
        readout_hidden: 12,
        t_iterations: 2,
        predict_jitter: true,
        predict_drops: false,
        seed: 7,
    })
}

fn base_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 3,
        batch_size: 2,
        lr: 3e-3,
        checkpoint_every: 1,
        ..TrainConfig::default()
    }
}

fn tmp_path(tag: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rn-chaos-{tag}-{}.{ext}", std::process::id()))
}

/// The pinned corpus: named schedules covering every catalog fault on the
/// checkpoint write path, plus seeded schedules spraying faults over all
/// seam operations. Each schedule is fully deterministic — re-running the
/// suite replays exactly the same failures.
fn corpus() -> Vec<(String, FaultPlan)> {
    let mut c: Vec<(String, FaultPlan)> = vec![
        (
            "torn-ckpt-write".into(),
            FaultPlan::new().rule(
                FaultRule::nth(2, FaultKind::TornWrite { keep_bytes: 64 })
                    .on_op(OpKind::Write)
                    .on_path("ckpt"),
            ),
        ),
        (
            "enospc-ckpt-create".into(),
            FaultPlan::new().rule(
                FaultRule::nth(2, FaultKind::Enospc)
                    .on_op(OpKind::Create)
                    .on_path("ckpt"),
            ),
        ),
        (
            "fail-ckpt-rename".into(),
            FaultPlan::new().rule(
                FaultRule::nth(2, FaultKind::FailRename)
                    .on_op(OpKind::Rename)
                    .on_path("ckpt"),
            ),
        ),
        (
            "eio-ckpt-fsync".into(),
            FaultPlan::new().rule(
                FaultRule::nth(3, FaultKind::FailFsync)
                    .on_op(OpKind::Fsync)
                    .on_path("ckpt"),
            ),
        ),
        (
            "hard-interrupted-no-retry".into(),
            FaultPlan::new().rule(
                FaultRule::nth(2, FaultKind::Interrupted)
                    .on_op(OpKind::Write)
                    .on_path("ckpt"),
            ),
        ),
    ];
    for seed in [1u64, 2, 3, 5, 8] {
        c.push((format!("seeded-{seed}"), FaultPlan::seeded(seed, 3)));
    }
    c
}

#[test]
fn chaos_corpus_completes_or_fails_typed_with_loadable_checkpoint() {
    let data = tiny_dataset(6, 33);
    let (train_set, val_set) = data.split_at(5);
    let base = base_cfg();

    // Reference: the same run with a healthy filesystem and no checkpoints.
    let mut reference = tiny_model();
    let ref_report = train(&mut reference, train_set, val_set, &base).expect("reference run");

    for (name, plan) in corpus() {
        let ckpt = tmp_path(&name, "ckpt");
        std::fs::remove_file(&ckpt).ok();
        let (fs, plan) = FsHandle::faulty(plan);
        let schedule = plan.describe();
        let cfg = TrainConfig {
            checkpoint_path: Some(ckpt.to_string_lossy().into_owned()),
            fs,
            ..base.clone()
        };
        let mut model = tiny_model();

        // Contract 1: complete or typed error — never a panic.
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            train(&mut model, train_set, val_set, &cfg)
        }));
        let outcome = match outcome {
            Ok(r) => r,
            Err(_) => panic!("schedule `{name}` {schedule} panicked"),
        };
        match outcome {
            Ok(report) => {
                // Faults that the run survived (or that never fired) must
                // not have changed the training computation.
                assert_eq!(
                    report.epochs, ref_report.epochs,
                    "schedule `{name}` {schedule} perturbed a completed run"
                );
            }
            Err(e) => {
                assert!(
                    matches!(e, TrainError::Checkpoint(_)),
                    "schedule `{name}` {schedule}: expected a typed checkpoint error, got: {e}"
                );
                assert!(
                    plan.fired_count() > 0,
                    "schedule `{name}` errored without any injected fault"
                );
            }
        }

        // Contract 2 + 3: any checkpoint left behind loads cleanly, and a
        // healthy-filesystem resume from it is bit-identical to the
        // reference run.
        if ckpt.exists() {
            TrainState::load(&ckpt).unwrap_or_else(|e| {
                panic!("schedule `{name}` {schedule} left a corrupt checkpoint: {e}")
            });
            let mut resumed = tiny_model();
            let cfg_resume = TrainConfig {
                resume_from: Some(ckpt.to_string_lossy().into_owned()),
                ..base.clone()
            };
            let resumed_report = train(&mut resumed, train_set, val_set, &cfg_resume)
                .unwrap_or_else(|e| {
                    panic!("schedule `{name}`: resume from surviving checkpoint failed: {e}")
                });
            assert_eq!(
                resumed_report.epochs, ref_report.epochs,
                "schedule `{name}`: resumed loss curve diverged from the reference"
            );
            assert_eq!(
                resumed.store(),
                reference.store(),
                "schedule `{name}`: resumed parameters diverged from the reference"
            );
        }
        std::fs::remove_file(&ckpt).ok();
    }
}

#[test]
fn transient_faults_are_absorbed_by_retry_without_changing_results() {
    let data = tiny_dataset(6, 33);
    let (train_set, val_set) = data.split_at(5);
    let base = base_cfg();

    let mut reference = tiny_model();
    let ref_report = train(&mut reference, train_set, val_set, &base).expect("reference run");

    // The first two write attempts of the first checkpoint save are
    // interrupted; the default policy (4 attempts) absorbs both.
    let plan = FaultPlan::new()
        .rule(
            FaultRule::nth(1, FaultKind::Interrupted)
                .on_op(OpKind::Write)
                .on_path("ckpt"),
        )
        .rule(
            FaultRule::nth(2, FaultKind::Interrupted)
                .on_op(OpKind::Write)
                .on_path("ckpt"),
        );
    let (faulty, plan) = FsHandle::faulty(plan);
    let sleeper = Arc::new(RecordingSleeper::new());
    let fs = faulty.with_retry(
        RetryPolicy::default(),
        Arc::clone(&sleeper) as Arc<dyn routenet_faults::Sleeper>,
    );

    let ckpt = tmp_path("retry", "ckpt");
    std::fs::remove_file(&ckpt).ok();
    let cfg = TrainConfig {
        checkpoint_path: Some(ckpt.to_string_lossy().into_owned()),
        fs,
        ..base.clone()
    };
    let mut model = tiny_model();
    let report = train(&mut model, train_set, val_set, &cfg)
        .expect("transient faults under retry must not fail the run");

    // Both injected faults fired and were retried on the pinned backoff
    // schedule (10ms, then 20ms) — and the results are unchanged.
    assert_eq!(plan.fired_count(), 2);
    assert_eq!(
        sleeper.slept(),
        vec![
            std::time::Duration::from_millis(10),
            std::time::Duration::from_millis(20)
        ]
    );
    assert_eq!(report.epochs, ref_report.epochs);
    assert_eq!(model.store(), reference.store());
    let state = TrainState::load(&ckpt).expect("checkpoint written through retry loads");
    assert!(state.opt.steps() > 0);
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn dataset_write_faults_are_typed_and_leave_the_old_file_intact() {
    let data = tiny_dataset(3, 5);
    let path = tmp_path("dataset", "jsonl");
    std::fs::remove_file(&path).ok();

    // A healthy save first, so a later faulted save has old bytes to protect.
    save_jsonl_with(&RealFs, &path, &data).expect("healthy save");
    let before = std::fs::read(&path).expect("read saved dataset");

    let (fs, plan) = FsHandle::faulty(
        FaultPlan::new()
            .rule(FaultRule::nth(1, FaultKind::TornWrite { keep_bytes: 10 }).on_op(OpKind::Write)),
    );
    let err = save_jsonl_with(fs.fs(), &path, &data).expect_err("torn write must surface");
    assert!(
        matches!(err, IoError::Fs(_)),
        "expected a typed fs error, got: {err:?}"
    );
    assert_eq!(plan.fired_count(), 1);

    // Old bytes survived the torn write, and they still parse.
    assert_eq!(std::fs::read(&path).expect("read after fault"), before);
    assert_eq!(load_jsonl(&path).expect("old file still loads").len(), 3);

    // A short read surfaces as a typed parse error, never a panic.
    let (fs, _plan) = FsHandle::faulty(
        FaultPlan::new()
            .rule(FaultRule::nth(1, FaultKind::ShortRead { keep_bytes: 40 }).on_op(OpKind::Read)),
    );
    let err = load_jsonl_with(fs.fs(), &path).expect_err("short read must surface");
    assert!(
        matches!(
            err,
            IoError::Parse { .. }
                | IoError::Fs(_)
                | IoError::Invalid { .. }
                | IoError::TornTail { .. }
        ),
        "expected a typed error, got: {err:?}"
    );

    std::fs::remove_file(&path).ok();
}

#[test]
fn telemetry_faults_never_perturb_training() {
    let data = tiny_dataset(6, 33);
    let (train_set, val_set) = data.split_at(5);
    let base = base_cfg();

    let mut reference = tiny_model();
    let ref_report = train(&mut reference, train_set, val_set, &base).expect("reference run");

    // Every telemetry log write fails. Training must not notice: the sink
    // degrades to counting drops and the run completes byte-identically.
    let log = tmp_path("telemetry", "jsonl");
    std::fs::remove_file(&log).ok();
    let (fs, plan) = FsHandle::faulty(
        FaultPlan::new().rule(FaultRule::every(1, FaultKind::Eio).on_op(OpKind::Create)),
    );
    let tel = Telemetry::to_file_with_fs("chaos", "telemetry-faults", &log, fs);
    let cfg = TrainConfig {
        telemetry: tel.clone(),
        ..base.clone()
    };
    let mut model = tiny_model();
    let report = train(&mut model, train_set, val_set, &cfg)
        .expect("telemetry faults must never fail training");

    // Pure-observer property: the report and the parameters are exactly
    // the no-telemetry reference, down to serialized bytes.
    let ref_bytes = serde_json::to_string(&ref_report).expect("serialize reference report");
    let got_bytes = serde_json::to_string(&report).expect("serialize chaos report");
    assert_eq!(got_bytes, ref_bytes);
    assert_eq!(model.store(), reference.store());

    // The failure is surfaced, not swallowed: finish() reports the write
    // errors and drop counts, and no partial log file was published.
    assert!(plan.fired_count() > 0, "no telemetry fault ever fired");
    let err = tel
        .finish()
        .expect_err("finish must report the degraded sink");
    let msg = err.to_string();
    assert!(
        msg.contains("telemetry write(s) failed"),
        "unclear finish error: {msg}"
    );
    assert!(tel.write_errors() > 0);
    assert!(tel.dropped_events() > 0);
    assert!(
        !log.exists(),
        "a faulted sink must not publish a partial log"
    );
    std::fs::remove_file(&log).ok();
}
