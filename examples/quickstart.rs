//! Quickstart: generate a small dataset, train RouteNet, predict delays.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full pipeline on the 14-node NSFNET in under a minute:
//! 1. simulate labeled samples (topology + routing + traffic -> delays),
//! 2. train a small RouteNet on them,
//! 3. predict on a held-out scenario and compare against the simulator.

use routenet_core::prelude::*;
use routenet_dataset::gen::{generate_dataset, GenConfig, TopologySpec};

fn main() {
    // 1. Data: 24 NSFNET scenarios with varied routing and traffic.
    println!("generating 24 NSFNET samples (packet-level simulation)...");
    let mut cfg = GenConfig::new(TopologySpec::Nsfnet, 24, 7);
    cfg.sim.duration_s = 400.0; // shorter labels for a fast demo
    cfg.sim.warmup_s = 40.0;
    let data = generate_dataset(&cfg);
    let (train_set, test_set) = data.split_at(20);

    // 2. Model: a small RouteNet (see RouteNetConfig for the knobs).
    let mut model = RouteNet::new(RouteNetConfig {
        link_state_dim: 12,
        path_state_dim: 12,
        readout_hidden: 24,
        t_iterations: 4,
        predict_jitter: true,
        predict_drops: false,
        seed: 1,
    });
    println!(
        "training RouteNet ({} parameters) for 20 epochs...",
        model.n_parameters()
    );
    let report = train(
        &mut model,
        train_set,
        test_set,
        &TrainConfig {
            epochs: 20,
            batch_size: 4,
            verbose: true,
            ..TrainConfig::default()
        },
    )
    .expect("training failed");
    println!(
        "best epoch {} with validation loss {:.4}",
        report.best_epoch, report.best_loss
    );

    // 3. Predict on the held-out samples.
    let eval = collect_predictions(&model, test_set);
    let s = eval.delay_summary().expect("held-out set is non-empty");
    println!(
        "\nheld-out delay accuracy over {} paths: MAE {:.1} ms, median rel. err {:.1}%, r = {:.3}",
        s.n,
        s.mae * 1e3,
        s.median_re * 100.0,
        s.pearson_r
    );

    // Show a few individual predictions.
    let sample = &test_set[0];
    let preds = model.predict_scenario(&sample.scenario);
    println!("\nexample predictions on one unseen scenario (first 5 pairs):");
    println!("{:<10} {:>12} {:>12}", "pair", "predicted", "simulated");
    for (i, (s, d)) in sample.scenario.pairs().iter().take(5).enumerate() {
        println!(
            "{:<10} {:>9.1} ms {:>9.1} ms",
            format!("{s}->{d}"),
            preds[i].delay_s * 1e3,
            sample.targets[i].delay_s * 1e3
        );
    }
}
