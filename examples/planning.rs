//! Network planning with a learned model (the paper's §3 "network
//! visibility and planning" use case): run cheap what-if analyses that
//! would be too slow with a packet-level simulator in the loop.
//!
//! ```text
//! cargo run --release --example planning
//! ```
//!
//! Two what-ifs on NSFNET:
//! 1. traffic growth sweep — how does worst-path delay grow as demand
//!    scales up, and where is the knee?
//! 2. capacity upgrade — which single link upgrade buys the largest
//!    reduction in predicted mean delay?

use routenet_core::prelude::*;
use routenet_dataset::gen::{generate_dataset, GenConfig, TopologySpec};
use routenet_netgraph::LinkId;
use std::time::Instant;

fn mean_delay(preds: &[Prediction]) -> f64 {
    preds.iter().map(|p| p.delay_s).sum::<f64>() / preds.len() as f64
}

fn main() {
    println!("simulating 24 NSFNET training scenarios...");
    let mut cfg = GenConfig::new(TopologySpec::Nsfnet, 24, 31);
    cfg.sim.duration_s = 400.0;
    cfg.sim.warmup_s = 40.0;
    cfg.intensity_min = 0.1;
    cfg.intensity_max = 0.9; // cover the whole load range for what-ifs
    let data = generate_dataset(&cfg);

    let mut model = RouteNet::new(RouteNetConfig::default());
    println!("training (18 epochs)...");
    train(
        &mut model,
        &data,
        &[],
        &TrainConfig {
            epochs: 18,
            ..TrainConfig::default()
        },
    )
    .expect("training failed");

    // Baseline scenario: moderate load.
    let base = data[0].scenario.clone();

    // ---- What-if 1: traffic growth sweep -------------------------------
    println!("\n=== what-if: uniform traffic growth ===");
    println!(
        "{:>8} {:>16} {:>16}",
        "growth", "mean delay (ms)", "worst path (ms)"
    );
    let t0 = Instant::now();
    let mut evaluations = 0;
    for growth in [0.5, 0.75, 1.0, 1.25, 1.5, 1.75] {
        let mut what_if = base.clone();
        what_if.traffic.scale(growth);
        let preds = model.predict_scenario(&what_if);
        evaluations += 1;
        let worst = preds.iter().map(|p| p.delay_s).fold(f64::MIN, f64::max);
        println!(
            "{:>7.0}% {:>16.1} {:>16.1}",
            growth * 100.0,
            mean_delay(&preds) * 1e3,
            worst * 1e3
        );
    }

    // ---- What-if 2: which link should we upgrade? ----------------------
    println!("\n=== what-if: single-link capacity upgrade (x4) ===");
    let current = mean_delay(&model.predict_scenario(&base));
    let mut results: Vec<(LinkId, f64)> = Vec::new();
    for (lid, _) in base.graph.links() {
        let mut what_if = base.clone();
        what_if.graph.link_mut(lid).unwrap().capacity_bps *= 4.0;
        // capacity symmetric upgrade of the reverse direction too
        let rev = {
            let l = base.graph.link(lid).unwrap();
            base.graph.link_between(l.dst, l.src)
        };
        if let Some(rev) = rev {
            what_if.graph.link_mut(rev).unwrap().capacity_bps *= 4.0;
        }
        let preds = model.predict_scenario(&what_if);
        evaluations += 1;
        results.push((lid, mean_delay(&preds)));
    }
    results.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!("current mean delay: {:.1} ms", current * 1e3);
    println!("top-5 upgrades by predicted mean delay after upgrade:");
    for (lid, d) in results.iter().take(5) {
        let l = base.graph.link(*lid).unwrap();
        println!(
            "  upgrade {}<->{} ({:.0} kbps): {:.1} ms  ({:+.1}%)",
            l.src,
            l.dst,
            l.capacity_bps / 1e3,
            d * 1e3,
            (d - current) / current * 100.0
        );
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "\n{} what-if evaluations in {:.2}s ({:.0} ms each) — the cost profile\n\
         that makes model-in-the-loop planning practical, vs seconds-to-minutes\n\
         per evaluation with a packet-level simulator.",
        evaluations,
        dt,
        dt / evaluations as f64 * 1e3
    );
}
