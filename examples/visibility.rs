//! Network-visibility analytics (the paper's Fig. 4 / §3 demo): use
//! RouteNet's predictions to rank the Top-N source/destination paths by
//! delay and inspect where the delay accumulates.
//!
//! ```text
//! cargo run --release --example visibility
//! ```

use routenet_core::prelude::*;
use routenet_dataset::gen::{generate_dataset, GenConfig, TopologySpec};
use routenet_netgraph::LinkId;
use routenet_simnet::queueing::Mm1Network;

fn main() {
    // Generate a batch of Geant2 scenarios; train a quick model on most of
    // them and run the analytics on the last one.
    println!("simulating 20 Geant2 scenarios...");
    let mut cfg = GenConfig::new(TopologySpec::Geant2, 20, 23);
    cfg.sim.duration_s = 400.0;
    cfg.sim.warmup_s = 40.0;
    let data = generate_dataset(&cfg);
    let (train_set, demo) = data.split_at(19);
    let sample = &demo[0];

    let mut model = RouteNet::new(RouteNetConfig {
        t_iterations: 4,
        ..RouteNetConfig::default()
    });
    println!("training a quick model (15 epochs)...");
    train(
        &mut model,
        train_set,
        &[],
        &TrainConfig {
            epochs: 15,
            ..TrainConfig::default()
        },
    )
    .expect("training failed");

    // ---- Fig. 4: Top-10 paths with more delay --------------------------
    let top = top_n_paths_by_delay(&model, sample, 10);
    println!(
        "\n=== Top-10 paths with more delay (Geant2, intensity {:.2}) ===",
        sample.intensity
    );
    println!(
        "{:<4} {:<10} {:>15} {:>15} {:>7}",
        "#", "path", "predicted (ms)", "simulated (ms)", "hops"
    );
    for (rank, (s, d, pred, truth)) in top.iter().enumerate() {
        let hops = sample
            .scenario
            .routing
            .hops(routenet_netgraph::NodeId(*s), routenet_netgraph::NodeId(*d));
        println!(
            "{:<4} {:<10} {:>15.1} {:>15.1} {:>7}",
            rank + 1,
            format!("n{s}->n{d}"),
            pred * 1e3,
            truth * 1e3,
            hops
        );
    }

    // ---- Drill-down: where does the worst path's delay accumulate? -----
    let (ws, wd, _, _) = top[0];
    let (ws, wd) = (routenet_netgraph::NodeId(ws), routenet_netgraph::NodeId(wd));
    let mm1 = Mm1Network::build(
        &sample.scenario.graph,
        &sample.scenario.routing,
        &sample.scenario.traffic,
        1_000.0,
    );
    println!("\nper-link breakdown of the worst path (analytic estimates):");
    println!(
        "{:<12} {:>12} {:>12} {:>10}",
        "link", "util", "sojourn (ms)", "cap (kbps)"
    );
    for &lid in sample.scenario.routing.path(ws, wd) {
        let link = sample.scenario.graph.link(lid).unwrap();
        let q = &mm1.links()[lid.0];
        println!(
            "{:<12} {:>11.1}% {:>12.1} {:>10.0}",
            format!("{}->{}", link.src, link.dst),
            q.rho * 100.0,
            q.mean_sojourn_s * 1e3,
            link.capacity_bps / 1e3
        );
    }

    // ---- Hottest links by predicted traffic concentration --------------
    let fanin = routenet_core::indexing::PathTensors::build(&sample.scenario).link_fanin();
    let mut hot: Vec<(usize, usize)> = fanin.iter().cloned().enumerate().collect();
    hot.sort_by_key(|h| std::cmp::Reverse(h.1));
    println!("\nbusiest links by number of traversing paths (this routing):");
    for (lid, n_paths) in hot.iter().take(5) {
        let link = sample.scenario.graph.link(LinkId(*lid)).unwrap();
        println!("  {}->{}  carries {} paths", link.src, link.dst, n_paths);
    }

    // ---- Structural bottlenecks (routing-independent) ------------------
    let bc = routenet_netgraph::algo::edge_betweenness(&sample.scenario.graph);
    let mut central: Vec<(usize, f64)> = bc.iter().cloned().enumerate().collect();
    central.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nstructural bottlenecks by edge betweenness (topology-only):");
    for (lid, score) in central.iter().take(5) {
        let link = sample.scenario.graph.link(LinkId(*lid)).unwrap();
        println!("  {}->{}  betweenness {:.1}", link.src, link.dst, score);
    }
}
