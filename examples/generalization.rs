//! The paper's headline demo: train on {NSFNET-14, Synth-50}, then predict
//! on the **unseen** 24-node Geant2 topology — and compare against the
//! analytic M/M/1 baseline.
//!
//! ```text
//! cargo run --release --example generalization [-- <scale> <epochs>]
//! ```
//!
//! A GNN assembles its architecture from the input graph at runtime, so one
//! trained model transfers across topologies of different sizes; this
//! example measures how much accuracy survives the transfer.

use routenet_core::prelude::*;
use routenet_dataset::split::{generate_paper_datasets, ProtocolConfig};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = argv.first().and_then(|v| v.parse().ok()).unwrap_or(0.4);
    let epochs: usize = argv.get(1).and_then(|v| v.parse().ok()).unwrap_or(20);

    let base = ProtocolConfig::default();
    let mul = |n: usize| ((n as f64 * scale).round() as usize).max(2);
    let protocol = ProtocolConfig {
        train_per_topology: mul(base.train_per_topology),
        val_per_topology: mul(base.val_per_topology),
        eval_per_topology: mul(base.eval_per_topology),
        eval_geant2: mul(base.eval_geant2),
        ..base
    };

    println!(
        "generating paper-protocol datasets (train: {}x NSFNET + {}x Synth-50)...",
        protocol.train_per_topology, protocol.train_per_topology
    );
    let data = generate_paper_datasets(&protocol);

    let mut model = RouteNet::new(RouteNetConfig::default());
    println!("training for {epochs} epochs on mixed topologies...");
    train(
        &mut model,
        &data.train,
        &data.val,
        &TrainConfig {
            epochs,
            verbose: true,
            ..TrainConfig::default()
        },
    )
    .expect("training failed");

    let mm1 = Mm1Baseline::default();
    println!("\n=== generalization to topologies ===");
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>8}",
        "eval set", "paths", "RouteNet", "M/M/1", "winner"
    );
    for (name, set) in [
        ("NSFNET (seen)", &data.eval_nsfnet),
        ("Synth-50 (seen)", &data.eval_synth),
        ("Geant2 (UNSEEN)", &data.eval_geant2),
    ] {
        let rn = collect_predictions(&model, set)
            .delay_summary()
            .expect("evaluation sets are non-empty");
        let qa = collect_predictions(&mm1, set)
            .delay_summary()
            .expect("evaluation sets are non-empty");
        println!(
            "{:<18} {:>10} {:>10.1}% {:>10.1}% {:>8}",
            name,
            rn.n,
            rn.median_re * 100.0,
            qa.median_re * 100.0,
            if rn.median_re < qa.median_re {
                "RouteNet"
            } else {
                "M/M/1"
            }
        );
    }
    println!("\n(median relative delay error; lower is better)");
    println!(
        "The key observation: RouteNet's error on the unseen Geant2 stays close\n\
         to its error on the training topologies — the GNN generalizes across\n\
         graph sizes, which fixed-input neural models cannot do at all."
    );
}
