//! Validate the packet-level simulator against closed-form queueing theory —
//! the evidence that the ground-truth labels RouteNet trains on are sound.
//!
//! ```text
//! cargo run --release --example simulator_validation
//! ```
//!
//! Sweeps a single link's utilization and compares simulated mean delay and
//! jitter against the exact M/M/1 and M/D/1 formulas, then shows the tandem
//! (multi-hop) effect that *no* per-link analytic model captures — the gap
//! RouteNet closes from data.

use routenet_netgraph::routing::shortest_path_routing;
use routenet_netgraph::{Graph, NodeId, TrafficMatrix};
use routenet_simnet::queueing::{Mg1Link, Mm1Link};
use routenet_simnet::sim::{simulate, SimConfig, SizeDistribution};

fn one_link() -> (Graph, routenet_netgraph::RoutingScheme) {
    let mut g = Graph::new("one-link", 2);
    g.add_duplex(NodeId(0), NodeId(1), 10_000.0, 0.0).unwrap();
    let r = shortest_path_routing(&g).unwrap();
    (g, r)
}

fn main() {
    let (g, r) = one_link();
    println!("=== single M/M/1 link: simulation vs closed form ===");
    println!(
        "{:>6} {:>14} {:>14} {:>8} {:>14} {:>14}",
        "rho", "sim mean (s)", "theory (s)", "err", "sim var (s2)", "theory (s2)"
    );
    for rho in [0.2, 0.4, 0.6, 0.8] {
        let mut tm = TrafficMatrix::zeros(2);
        tm.set_demand(NodeId(0), NodeId(1), rho * 10_000.0);
        let cfg = SimConfig {
            duration_s: 3_000.0,
            warmup_s: 300.0,
            seed: 7,
            ..SimConfig::default()
        };
        let res = simulate(&g, &r, &tm, &cfg).unwrap();
        let f = res.flow(NodeId(0), NodeId(1)).unwrap();
        let th = Mm1Link::new(rho * 10.0, 10.0);
        println!(
            "{:>6.1} {:>14.4} {:>14.4} {:>7.1}% {:>14.5} {:>14.5}",
            rho,
            f.mean_delay_s,
            th.mean_sojourn_s,
            (f.mean_delay_s - th.mean_sojourn_s).abs() / th.mean_sojourn_s * 100.0,
            f.jitter_s2,
            th.var_sojourn_s2
        );
    }

    println!("\n=== deterministic packet sizes: M/D/1 vs the (wrong) M/M/1 formula ===");
    println!(
        "{:>6} {:>14} {:>12} {:>12} {:>22}",
        "rho", "sim mean (s)", "M/D/1 (s)", "M/M/1 (s)", "M/M/1 overestimates by"
    );
    for rho in [0.4, 0.6, 0.8] {
        let mut tm = TrafficMatrix::zeros(2);
        tm.set_demand(NodeId(0), NodeId(1), rho * 10_000.0);
        let cfg = SimConfig {
            duration_s: 3_000.0,
            warmup_s: 300.0,
            size_dist: SizeDistribution::Deterministic,
            seed: 7,
            ..SimConfig::default()
        };
        let res = simulate(&g, &r, &tm, &cfg).unwrap();
        let f = res.flow(NodeId(0), NodeId(1)).unwrap();
        let md1 = Mg1Link::new(rho * 10.0, 10.0, 0.0);
        let mm1 = Mm1Link::new(rho * 10.0, 10.0);
        println!(
            "{:>6.1} {:>14.4} {:>12.4} {:>12.4} {:>21.1}%",
            rho,
            f.mean_delay_s,
            md1.mean_sojourn_s,
            mm1.mean_sojourn_s,
            (mm1.mean_sojourn_s - f.mean_delay_s) / f.mean_delay_s * 100.0
        );
    }

    println!("\n=== tandem effect: 3 hops, what independence approximations miss ===");
    let mut g3 = Graph::new("tandem", 4);
    for i in 0..3 {
        g3.add_duplex(NodeId(i), NodeId(i + 1), 10_000.0, 0.0)
            .unwrap();
    }
    let r3 = shortest_path_routing(&g3).unwrap();
    println!(
        "{:>6} {:>14} {:>16} {:>10}",
        "rho", "sim mean (s)", "3x M/D/1 sum (s)", "sum bias"
    );
    for rho in [0.4, 0.6, 0.8] {
        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(NodeId(0), NodeId(3), rho * 10_000.0);
        let cfg = SimConfig {
            duration_s: 3_000.0,
            warmup_s: 300.0,
            size_dist: SizeDistribution::Deterministic,
            seed: 7,
            ..SimConfig::default()
        };
        let res = simulate(&g3, &r3, &tm, &cfg).unwrap();
        let f = res.flow(NodeId(0), NodeId(3)).unwrap();
        let md1 = Mg1Link::new(rho * 10.0, 10.0, 0.0);
        let sum = 3.0 * md1.mean_sojourn_s;
        println!(
            "{:>6.1} {:>14.4} {:>16.4} {:>9.1}%",
            rho,
            f.mean_delay_s,
            sum,
            (sum - f.mean_delay_s) / f.mean_delay_s * 100.0
        );
    }
    println!(
        "\nWith identical deterministic services, packets that waited at hop 1 never\n\
         queue again downstream — the per-link independence sum overestimates the\n\
         true tandem delay. This residual structure is what RouteNet learns."
    );
}
