//! Two-run determinism: dataset generation must be byte-identical for the
//! same seed. This is the contract the analyzer's determinism rule (RN101)
//! guards statically — any hash-order dependence in topology generation,
//! routing, traffic sampling, simulation, or label assembly shows up here as
//! a serialized-sample mismatch.

use proptest::prelude::*;
use routenet_dataset::gen::{generate_sample, GenConfig, TopologySpec};

/// A small-but-real recipe: synthetic scale-free topology (exercises the
/// EdgeSet/BTreeSet generator paths), short simulation for test speed.
fn tiny_config(base_seed: u64) -> GenConfig {
    let mut cfg = GenConfig::new(
        TopologySpec::Synthetic {
            n: 10,
            topo_seed: base_seed ^ 0x5eed,
        },
        2,
        base_seed,
    );
    cfg.sim.duration_s = 4.0;
    cfg.sim.warmup_s = 0.5;
    cfg
}

/// Serialize every sample of a full generation run to one JSON string.
fn run_bytes(cfg: &GenConfig) -> String {
    let mut out = String::new();
    for i in 0..cfg.n_samples {
        let sample = generate_sample(cfg, i);
        out.push_str(&serde_json::to_string(&sample).expect("sample serializes"));
        out.push('\n');
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn generation_is_byte_identical_across_runs(base_seed in 0u64..1_000) {
        let a = run_bytes(&tiny_config(base_seed));
        let b = run_bytes(&tiny_config(base_seed));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_datasets(base_seed in 0u64..1_000) {
        let a = run_bytes(&tiny_config(base_seed));
        let b = run_bytes(&tiny_config(base_seed + 1));
        prop_assert_ne!(a, b);
    }
}
