//! The paper's §2.1 dataset protocol, parameterized by scale.
//!
//! Paper scale: 480k training samples from {NSFNET-14, Synth-50}, 120k
//! evaluation samples from the same two topologies, and 300k samples from
//! the *unseen* Geant2-24 topology. Our simulator is the label source, so
//! the counts are a knob ([`ProtocolConfig`]); the *structure* — which
//! topologies are seen during training and which are held out — is fixed.

use crate::gen::{generate_dataset, GenConfig, TopologySpec};
use routenet_core::sample::Sample;
use routenet_obs::Telemetry;
use serde::{Deserialize, Serialize};

/// Seed that fixes the 50-node synthetic training topology (one graph, as in
/// the paper — diversity comes from routing and traffic, not the graph).
pub const SYNTH50_TOPOLOGY_SEED: u64 = 2019;

/// Scale knobs for the paper protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Training samples per training topology (paper: 240k each).
    pub train_per_topology: usize,
    /// Validation samples per training topology.
    pub val_per_topology: usize,
    /// Evaluation samples per training topology (paper: 60k each).
    pub eval_per_topology: usize,
    /// Evaluation samples on unseen Geant2 (paper: 300k).
    pub eval_geant2: usize,
    /// Node count of the synthetic training topology (paper: 50).
    pub synth_nodes: usize,
    /// Labeling-simulation duration, seconds.
    pub sim_duration_s: f64,
    /// Labeling-simulation warm-up, seconds.
    pub sim_warmup_s: f64,
    /// Master seed; train/val/eval draws use disjoint seed ranges.
    pub seed: u64,
    /// Telemetry handle threaded into every dataset-generation call (one
    /// [`routenet_obs::Event::DatasetGen`] aggregate per dataset). Wiring,
    /// not configuration: skipped by serde and always compares equal.
    #[serde(skip)]
    pub telemetry: Telemetry,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        // Laptop-scale defaults: full pipeline (generate + train + evaluate)
        // in minutes. Scale up with --samples flags on the bench binaries.
        ProtocolConfig {
            train_per_topology: 48,
            val_per_topology: 8,
            eval_per_topology: 24,
            eval_geant2: 32,
            synth_nodes: 50,
            sim_duration_s: 600.0,
            sim_warmup_s: 60.0,
            seed: 1,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// The generated datasets of the paper protocol.
#[derive(Debug, Clone)]
pub struct PaperDatasets {
    /// Mixed NSFNET + synthetic training set (shuffled deterministically).
    pub train: Vec<Sample>,
    /// Mixed validation set.
    pub val: Vec<Sample>,
    /// Held-out samples on NSFNET (seen topology, unseen scenarios).
    pub eval_nsfnet: Vec<Sample>,
    /// Held-out samples on the synthetic topology.
    pub eval_synth: Vec<Sample>,
    /// Samples on the unseen Geant2 topology.
    pub eval_geant2: Vec<Sample>,
}

impl PaperDatasets {
    /// All evaluation samples concatenated (the paper's Fig. 3 aggregates
    /// the three evaluation sets).
    pub fn eval_all(&self) -> Vec<Sample> {
        let mut v = self.eval_nsfnet.clone();
        v.extend(self.eval_synth.iter().cloned());
        v.extend(self.eval_geant2.iter().cloned());
        v
    }
}

fn make_cfg(cfg: &ProtocolConfig, topo: TopologySpec, n: usize, base_seed: u64) -> GenConfig {
    let mut g = GenConfig::new(topo, n, base_seed);
    g.sim.duration_s = cfg.sim_duration_s;
    g.sim.warmup_s = cfg.sim_warmup_s;
    g.sim.telemetry = cfg.telemetry.clone();
    g
}

/// Generate every dataset of the protocol. Seed ranges are disjoint by
/// construction: train, val and eval never share a generation seed.
pub fn generate_paper_datasets(cfg: &ProtocolConfig) -> PaperDatasets {
    let synth = TopologySpec::Synthetic {
        n: cfg.synth_nodes,
        topo_seed: SYNTH50_TOPOLOGY_SEED,
    };
    // Disjoint seed blocks (1M apart; no dataset approaches 1M samples here).
    let block = 1_000_000u64;
    let s = cfg.seed.wrapping_mul(100 * block);
    let train_nsf = generate_dataset(&make_cfg(
        cfg,
        TopologySpec::Nsfnet,
        cfg.train_per_topology,
        s,
    ));
    let train_syn = generate_dataset(&make_cfg(
        cfg,
        synth.clone(),
        cfg.train_per_topology,
        s + block,
    ));
    let val_nsf = generate_dataset(&make_cfg(
        cfg,
        TopologySpec::Nsfnet,
        cfg.val_per_topology,
        s + 2 * block,
    ));
    let val_syn = generate_dataset(&make_cfg(
        cfg,
        synth.clone(),
        cfg.val_per_topology,
        s + 3 * block,
    ));
    let eval_nsfnet = generate_dataset(&make_cfg(
        cfg,
        TopologySpec::Nsfnet,
        cfg.eval_per_topology,
        s + 4 * block,
    ));
    let eval_synth = generate_dataset(&make_cfg(cfg, synth, cfg.eval_per_topology, s + 5 * block));
    let eval_geant2 = generate_dataset(&make_cfg(
        cfg,
        TopologySpec::Geant2,
        cfg.eval_geant2,
        s + 6 * block,
    ));

    // Interleave the two training topologies deterministically so minibatches
    // mix graph sizes even without shuffling.
    let mut train = Vec::with_capacity(train_nsf.len() + train_syn.len());
    let mut it_a = train_nsf.into_iter();
    let mut it_b = train_syn.into_iter();
    loop {
        match (it_a.next(), it_b.next()) {
            (None, None) => break,
            (a, b) => {
                if let Some(x) = a {
                    train.push(x);
                }
                if let Some(x) = b {
                    train.push(x);
                }
            }
        }
    }
    let mut val = val_nsf;
    val.extend(val_syn);

    PaperDatasets {
        train,
        val,
        eval_nsfnet,
        eval_synth,
        eval_geant2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn tiny_protocol() -> ProtocolConfig {
        ProtocolConfig {
            train_per_topology: 3,
            val_per_topology: 1,
            eval_per_topology: 2,
            eval_geant2: 2,
            synth_nodes: 8,
            sim_duration_s: 40.0,
            sim_warmup_s: 4.0,
            seed: 5,
            ..ProtocolConfig::default()
        }
    }

    #[test]
    fn protocol_shapes_and_topologies() {
        let ds = generate_paper_datasets(&tiny_protocol());
        assert_eq!(ds.train.len(), 6);
        assert_eq!(ds.val.len(), 2);
        assert_eq!(ds.eval_nsfnet.len(), 2);
        assert_eq!(ds.eval_synth.len(), 2);
        assert_eq!(ds.eval_geant2.len(), 2);
        // Training mixes exactly the two training topologies.
        let train_topos: HashSet<_> = ds.train.iter().map(|s| s.topology.clone()).collect();
        assert_eq!(
            train_topos,
            HashSet::from(["NSFNET".to_string(), "Synth-8".to_string()])
        );
        // Geant2 never appears in training (the unseen-topology property).
        assert!(ds.train.iter().all(|s| s.topology != "Geant2"));
        assert!(ds.eval_geant2.iter().all(|s| s.topology == "Geant2"));
        assert_eq!(ds.eval_all().len(), 6);
    }

    #[test]
    fn train_is_interleaved() {
        let ds = generate_paper_datasets(&tiny_protocol());
        assert_ne!(ds.train[0].topology, ds.train[1].topology);
    }

    #[test]
    fn seed_ranges_are_disjoint() {
        let ds = generate_paper_datasets(&tiny_protocol());
        let mut seen = HashSet::new();
        for s in ds
            .train
            .iter()
            .chain(&ds.val)
            .chain(&ds.eval_nsfnet)
            .chain(&ds.eval_synth)
            .chain(&ds.eval_geant2)
        {
            assert!(
                seen.insert((s.topology.clone(), s.seed)),
                "duplicated generation seed {} in {}",
                s.seed,
                s.topology
            );
        }
    }

    #[test]
    fn all_samples_valid() {
        let ds = generate_paper_datasets(&tiny_protocol());
        for s in ds.eval_all().iter().chain(&ds.train).chain(&ds.val) {
            s.validate().unwrap();
        }
    }
}
