//! CLI dataset generator.
//!
//! ```text
//! cargo run -p routenet-dataset --release --bin gen-dataset -- \
//!     --topology nsfnet --samples 100 --seed 1 --out nsfnet.jsonl \
//!     [--routing randomized|fixed|kshortest] [--intensity-min 0.2] \
//!     [--intensity-max 0.8] [--duration 800] [--synth-nodes 50]
//! ```

use routenet_dataset::gen::{generate_dataset, GenConfig, RoutingDiversity, TopologySpec};
use routenet_dataset::io::save_jsonl;

fn flag(argv: &[String], key: &str) -> Option<String> {
    argv.iter()
        .position(|a| a == &format!("--{key}"))
        .and_then(|i| argv.get(i + 1).cloned())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let topology = match flag(&argv, "topology").as_deref().unwrap_or("nsfnet") {
        "nsfnet" => TopologySpec::Nsfnet,
        "geant2" => TopologySpec::Geant2,
        "gbn" => TopologySpec::Gbn,
        "synth" => TopologySpec::Synthetic {
            n: flag(&argv, "synth-nodes")
                .and_then(|v| v.parse().ok())
                .unwrap_or(50),
            topo_seed: routenet_dataset::split::SYNTH50_TOPOLOGY_SEED,
        },
        other => {
            eprintln!("unknown topology {other:?} (nsfnet|geant2|gbn|synth)");
            std::process::exit(2);
        }
    };
    let samples: usize = flag(&argv, "samples")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let seed: u64 = flag(&argv, "seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let out = flag(&argv, "out").unwrap_or_else(|| "dataset.jsonl".into());

    let mut cfg = GenConfig::new(topology, samples, seed);
    match flag(&argv, "routing").as_deref() {
        Some("fixed") => cfg.routing = RoutingDiversity::Fixed,
        Some("kshortest") => cfg.routing = RoutingDiversity::KShortest { k: 4 },
        Some("randomized") | None => {}
        Some(other) => {
            eprintln!("unknown routing {other:?} (fixed|randomized|kshortest)");
            std::process::exit(2);
        }
    }
    if let Some(v) = flag(&argv, "intensity-min").and_then(|v| v.parse().ok()) {
        cfg.intensity_min = v;
    }
    if let Some(v) = flag(&argv, "intensity-max").and_then(|v| v.parse().ok()) {
        cfg.intensity_max = v;
    }
    if let Some(v) = flag(&argv, "duration").and_then(|v| v.parse().ok()) {
        cfg.sim.duration_s = v;
        cfg.sim.warmup_s = v / 10.0;
    }

    eprintln!(
        "generating {samples} samples on {} (seed {seed})...",
        cfg.topology.name()
    );
    let t0 = std::time::Instant::now();
    let ds = generate_dataset(&cfg);
    eprintln!(
        "generated in {:.1}s, writing {out}",
        t0.elapsed().as_secs_f64()
    );
    save_jsonl(&out, &ds).unwrap_or_else(|e| {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    });
    println!("{} samples -> {out}", ds.len());
}
