//! Dataset generation: simulate network scenarios into labeled samples.
//!
//! Reproduces the paper's §2.1 data protocol: for a given topology, draw a
//! routing scheme and a traffic matrix per sample ("a wide variety of routing
//! schemes and traffic matrices with different traffic intensity"), run the
//! packet-level simulator, and record per-pair mean delay and jitter labels.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use routenet_core::sample::{Sample, Scenario, TargetKpi};
use routenet_netgraph::routing::{
    destination_based_routing, k_path_random_routing, randomized_routing, shortest_path_routing,
    RoutingScheme,
};
use routenet_netgraph::topology::{assign_capacities, CapacityScheme};
use routenet_netgraph::traffic::{sample_traffic_matrix, TrafficModel};
use routenet_netgraph::{generate, topology, Graph};
use routenet_obs::{Event, Telemetry};
use routenet_simnet::sim::{simulate, SimConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Which topology a dataset is generated on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// 14-node NSFNET (training topology #1 in the paper).
    Nsfnet,
    /// 24-node Geant2 (the paper's unseen evaluation topology).
    Geant2,
    /// 17-node GBN (extra held-out topology for extension experiments).
    Gbn,
    /// The synthetic scale-free topology family; the paper's second training
    /// topology is `Synthetic { n: 50, topo_seed: .. }`.
    Synthetic {
        /// Number of nodes.
        n: usize,
        /// Seed that fixes the generated graph.
        topo_seed: u64,
    },
}

impl TopologySpec {
    /// Instantiate the graph (capacities not yet assigned).
    pub fn build(&self) -> Graph {
        match self {
            TopologySpec::Nsfnet => topology::nsfnet(),
            TopologySpec::Geant2 => topology::geant2(),
            TopologySpec::Gbn => topology::gbn(),
            TopologySpec::Synthetic { n, topo_seed } => {
                let mut rng = StdRng::seed_from_u64(*topo_seed);
                generate::synthetic(*n, &mut rng)
            }
        }
    }

    /// Canonical display name, used as `Sample::topology`.
    pub fn name(&self) -> String {
        match self {
            TopologySpec::Nsfnet => "NSFNET".into(),
            TopologySpec::Geant2 => "Geant2".into(),
            TopologySpec::Gbn => "GBN".into(),
            TopologySpec::Synthetic { n, .. } => format!("Synth-{n}"),
        }
    }
}

/// How routing schemes vary across samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RoutingDiversity {
    /// Every sample uses deterministic shortest-path routing.
    Fixed,
    /// Random link-weight perturbation per sample (`spread` as in
    /// [`randomized_routing`]).
    Randomized {
        /// Weight-perturbation spread.
        spread: f64,
    },
    /// Uniform choice among the k shortest paths per pair, per sample.
    KShortest {
        /// Number of candidate paths per pair.
        k: usize,
    },
    /// Destination-based forwarding (reverse shortest-path trees) on
    /// per-sample randomly perturbed weights — forwarding-consistent like
    /// real IP routing, yet diverse across samples.
    DestinationBased {
        /// Weight-perturbation spread, as in [`randomized_routing`].
        spread: f64,
    },
}

/// Full generation recipe for one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenConfig {
    /// Topology to generate on.
    pub topology: TopologySpec,
    /// Link capacity assignment (per sample, re-randomized).
    pub capacities: CapacityScheme,
    /// Number of samples.
    pub n_samples: usize,
    /// Routing-scheme diversity.
    pub routing: RoutingDiversity,
    /// Traffic-matrix structural model.
    pub traffic: TrafficModel,
    /// Intensity range: per sample, the target max-link utilization is drawn
    /// uniformly from `[intensity_min, intensity_max]`.
    pub intensity_min: f64,
    /// Upper intensity bound.
    pub intensity_max: f64,
    /// Simulator settings used for labeling (seed is overridden per sample).
    pub sim: SimConfig,
    /// Base seed; sample `i` uses `base_seed + i` for all of its draws.
    pub base_seed: u64,
}

impl GenConfig {
    /// Default recipe for `topology`.
    ///
    /// Labels use Poisson arrivals with **deterministic (MTU-like) packet
    /// sizes**, so each queue behaves as M/D/1 rather than M/M/1. This
    /// matches the paper's motivation that analytic models fail under real
    /// traffic characteristics: the per-link M/M/1 baseline systematically
    /// overestimates M/D/1 delay (up to ~40% at high load) and its jitter
    /// estimate is off by an order of magnitude — exactly the gap RouteNet
    /// learns from data. Use [`GenConfig::mm1_exact`] for the sanity variant
    /// whose labels M/M/1 predicts perfectly.
    pub fn new(topology: TopologySpec, n_samples: usize, base_seed: u64) -> Self {
        GenConfig {
            topology,
            capacities: CapacityScheme::kdn_default(),
            n_samples,
            routing: RoutingDiversity::Randomized { spread: 2.0 },
            traffic: TrafficModel::Uniform { min_frac: 0.25 },
            intensity_min: 0.2,
            intensity_max: 0.8,
            sim: SimConfig {
                duration_s: 800.0,
                warmup_s: 80.0,
                size_dist: routenet_simnet::sim::SizeDistribution::Deterministic,
                ..SimConfig::default()
            },
            base_seed,
        }
    }

    /// Variant with exponential packet sizes (labels are per-link M/M/1;
    /// the analytic baseline is near-perfect — useful as a sanity check).
    pub fn mm1_exact(topology: TopologySpec, n_samples: usize, base_seed: u64) -> Self {
        let mut cfg = Self::new(topology, n_samples, base_seed);
        cfg.sim.size_dist = routenet_simnet::sim::SizeDistribution::Exponential;
        cfg
    }
}

/// Generate the `i`-th sample of `cfg` (deterministic in `cfg.base_seed + i`).
pub fn generate_sample(cfg: &GenConfig, i: usize) -> Sample {
    let seed = cfg.base_seed.wrapping_add(i as u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = cfg.topology.build();
    assign_capacities(&mut graph, &cfg.capacities, &mut rng);
    let routing: RoutingScheme = match &cfg.routing {
        RoutingDiversity::Fixed => shortest_path_routing(&graph),
        RoutingDiversity::Randomized { spread } => randomized_routing(&graph, *spread, &mut rng),
        RoutingDiversity::KShortest { k } => k_path_random_routing(&graph, *k, &mut rng),
        RoutingDiversity::DestinationBased { spread } => {
            let mut pg = graph.clone();
            let ids: Vec<_> = pg.links().map(|(id, _)| id).collect();
            for id in ids {
                let f = 1.0 + rand::Rng::gen::<f64>(&mut rng) * spread;
                pg.adj_link_mut(id).weight *= f;
            }
            // Build on perturbed weights, then re-express on the original
            // graph (identical structure, so paths transfer verbatim).
            destination_based_routing(&pg)
        }
    }
    .expect("zoo/generator topologies are strongly connected"); // lint: allow(panic, reason = "generator only emits strongly connected graphs; routing cannot fail")
    let intensity = rng.gen_range(cfg.intensity_min..=cfg.intensity_max);
    let traffic = sample_traffic_matrix(&graph, &routing, &cfg.traffic, intensity, &mut rng);
    // Strip the telemetry handle: a dataset run simulates hundreds of
    // scenarios, and one SimRun event per sample would flood the log (and,
    // with a file sink, rewrite it O(n²)). The dataset layer reports its
    // own aggregate ([`Event::DatasetGen`]) instead.
    let sim_cfg = SimConfig {
        seed,
        telemetry: Telemetry::disabled(),
        ..cfg.sim.clone()
    };
    // lint: allow(panic, reason = "config built from validated GenConfig fields; a rejection is a generator bug")
    let result = simulate(&graph, &routing, &traffic, &sim_cfg).expect("valid sim config");
    // Map flows back to canonical pair order explicitly (robust even if a
    // traffic model produced zero-demand pairs, which carry no flow).
    // Ordered map: label construction must stay deterministic even if this
    // is ever iterated (determinism rule, RN101).
    let mut by_pair = std::collections::BTreeMap::new();
    for f in &result.flows {
        by_pair.insert(
            (f.src, f.dst),
            TargetKpi {
                delay_s: f.mean_delay_s,
                jitter_s2: f.jitter_s2,
                drop_prob: f.drop_prob(),
            },
        );
    }
    let targets: Vec<TargetKpi> = graph
        .node_pairs()
        .map(|(s, d)| {
            by_pair.get(&(s, d)).copied().unwrap_or(TargetKpi {
                delay_s: 0.0,
                jitter_s2: 0.0,
                drop_prob: 0.0,
            })
        })
        .collect();
    let sample = Sample {
        scenario: Scenario {
            graph,
            routing,
            traffic,
        },
        targets,
        topology: cfg.topology.name(),
        intensity,
        seed,
    };
    debug_assert_eq!(sample.targets.len(), sample.scenario.n_pairs());
    sample
}

/// Generate a full dataset, parallelized over samples with crossbeam scoped
/// threads. Output order is by sample index (deterministic).
pub fn generate_dataset(cfg: &GenConfig) -> Vec<Sample> {
    generate_dataset_with_threads(cfg, num_threads())
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// [`generate_sample`] wrapped in a per-sample wall-clock measurement.
/// Returns the elapsed seconds (0.0 when telemetry is disabled) so the
/// caller can aggregate per-dataset statistics without re-reading the
/// process-wide histogram.
fn generate_sample_timed(cfg: &GenConfig, i: usize) -> (Sample, f64) {
    let t0 = cfg.sim.telemetry.enabled().then(Instant::now);
    let s = generate_sample(cfg, i);
    match t0 {
        Some(t0) => {
            let dt = t0.elapsed().as_secs_f64();
            cfg.sim.telemetry.observe_s("dataset.sample_s", dt);
            (s, dt)
        }
        None => (s, 0.0),
    }
}

/// Generate with an explicit worker count (1 = sequential, used in tests).
///
/// When `cfg.sim.telemetry` is enabled, each sample's generation time is
/// recorded (the handle is stripped from the per-sample simulator calls,
/// see [`generate_sample`]) and one [`Event::DatasetGen`] aggregate is
/// emitted per call.
pub fn generate_dataset_with_threads(cfg: &GenConfig, workers: usize) -> Vec<Sample> {
    assert!(workers >= 1);
    let tel = &cfg.sim.telemetry;
    let run_t0 = tel.enabled().then(Instant::now);
    let (samples, sample_times, effective_workers) = if workers == 1 || cfg.n_samples <= 1 {
        let mut times = Vec::with_capacity(cfg.n_samples);
        let samples = (0..cfg.n_samples)
            .map(|i| {
                let (s, dt) = generate_sample_timed(cfg, i);
                times.push(dt);
                s
            })
            .collect();
        (samples, times, 1)
    } else {
        // Blessed indexed write-slot pattern (DESIGN.md "Parallelism safety
        // contract"): worker `w` generates the strided sample indices w,
        // w+workers, ... into its own Vec (each sample still seeds its own
        // RNG from `base_seed + i`), and the sequential interleave below
        // restores index order — byte-identical output at any worker count.
        let parts: Vec<Vec<(Sample, f64)>> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                handles.push(scope.spawn(move |_| {
                    let mut part = Vec::with_capacity(cfg.n_samples.div_ceil(workers));
                    let mut i = w;
                    while i < cfg.n_samples {
                        part.push(generate_sample_timed(cfg, i));
                        i += workers;
                    }
                    part
                }));
            }
            handles
                .into_iter()
                // lint: allow(panic, reason = "worker panics are programming errors; propagating them is the intent")
                .map(|h| h.join().expect("worker threads do not panic"))
                .collect()
        })
        .expect("generation scope joins cleanly"); // lint: allow(panic, reason = "worker panics are programming errors; propagating them is the intent")
        let mut iters: Vec<_> = parts.into_iter().map(Vec::into_iter).collect();
        let mut times = Vec::with_capacity(cfg.n_samples);
        let samples = (0..cfg.n_samples)
            .map(|i| {
                // lint: allow(panic, reason = "worker w holds exactly the indices i with i % workers == w, so each next() yields")
                let (s, dt) = iters[i % workers].next().expect("stride invariant");
                times.push(dt);
                s
            })
            .collect();
        (samples, times, workers)
    };
    if let Some(t0) = run_t0 {
        let wall_s = t0.elapsed().as_secs_f64();
        let n = sample_times.len();
        let sum: f64 = sample_times.iter().sum();
        let max = sample_times.iter().fold(0.0f64, |a, &b| a.max(b));
        tel.emit(Event::DatasetGen {
            topology: cfg.topology.name(),
            samples: n,
            workers: effective_workers,
            wall_s,
            mean_sample_s: if n > 0 { sum / n as f64 } else { 0.0 },
            max_sample_s: max,
        });
        tel.counter_add("dataset.samples", n as u64);
        tel.observe_s("dataset.gen_s", wall_s);
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> GenConfig {
        let mut cfg = GenConfig::new(
            TopologySpec::Synthetic {
                n: 6,
                topo_seed: 42,
            },
            4,
            100,
        );
        cfg.sim.duration_s = 60.0;
        cfg.sim.warmup_s = 6.0;
        cfg
    }

    #[test]
    fn samples_validate_and_have_labels() {
        let cfg = tiny_cfg();
        let ds = generate_dataset_with_threads(&cfg, 1);
        assert_eq!(ds.len(), 4);
        for s in &ds {
            s.validate().unwrap();
            assert_eq!(s.topology, "Synth-6");
            assert_eq!(s.targets.len(), 30);
            assert!(s.targets.iter().all(|t| t.delay_s > 0.0));
            assert!((cfg.intensity_min..=cfg.intensity_max).contains(&s.intensity));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = tiny_cfg();
        let a = generate_sample(&cfg, 2);
        let b = generate_sample(&cfg, 2);
        assert_eq!(a.seed, b.seed);
        for (x, y) in a.targets.iter().zip(&b.targets) {
            assert_eq!(x.delay_s, y.delay_s);
            assert_eq!(x.jitter_s2, y.jitter_s2);
        }
    }

    #[test]
    fn samples_differ_across_indices() {
        let cfg = tiny_cfg();
        let a = generate_sample(&cfg, 0);
        let b = generate_sample(&cfg, 1);
        assert_ne!(a.seed, b.seed);
        let da: Vec<f64> = a.targets.iter().map(|t| t.delay_s).collect();
        let db: Vec<f64> = b.targets.iter().map(|t| t.delay_s).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn generation_emits_one_aggregate_event_and_no_simruns() {
        let mut cfg = tiny_cfg();
        let tel = Telemetry::in_memory("dataset", "test");
        cfg.sim.telemetry = tel.clone();
        let ds = generate_dataset_with_threads(&cfg, 2);
        assert_eq!(ds.len(), 4);
        let records = tel.records();
        // The per-sample simulator calls run with a stripped handle, so the
        // log holds exactly one DatasetGen aggregate and zero SimRun events.
        assert!(records.iter().all(|r| r.event.kind() != "SimRun"));
        let gens: Vec<_> = records
            .iter()
            .filter(|r| r.event.kind() == "DatasetGen")
            .collect();
        assert_eq!(gens.len(), 1);
        match &gens[0].event {
            Event::DatasetGen {
                topology,
                samples,
                workers,
                mean_sample_s,
                max_sample_s,
                ..
            } => {
                assert_eq!(topology, "Synth-6");
                assert_eq!(*samples, 4);
                assert_eq!(*workers, 2);
                assert!(*mean_sample_s > 0.0);
                assert!(*max_sample_s >= *mean_sample_s);
            }
            other => panic!("expected DatasetGen, got {other:?}"),
        }
        assert_eq!(tel.counter("dataset.samples"), 4);
        assert!(tel.histogram_summary("dataset.sample_s").is_some());
    }

    #[test]
    fn parallel_equals_sequential() {
        let cfg = tiny_cfg();
        let seq = generate_dataset_with_threads(&cfg, 1);
        let par = generate_dataset_with_threads(&cfg, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.seed, b.seed);
            for (x, y) in a.targets.iter().zip(&b.targets) {
                assert_eq!(x.delay_s, y.delay_s);
            }
        }
    }

    #[test]
    fn fixed_routing_reuses_shortest_paths() {
        let mut cfg = tiny_cfg();
        cfg.routing = RoutingDiversity::Fixed;
        cfg.capacities = CapacityScheme::Uniform(10_000.0);
        let a = generate_sample(&cfg, 0);
        let b = generate_sample(&cfg, 1);
        for (s, d) in a.scenario.graph.node_pairs() {
            assert_eq!(a.scenario.routing.path(s, d), b.scenario.routing.path(s, d));
        }
    }

    #[test]
    fn destination_based_diversity_generates_valid_consistent_routes() {
        let mut cfg = tiny_cfg();
        cfg.routing = RoutingDiversity::DestinationBased { spread: 2.0 };
        let a = generate_sample(&cfg, 0);
        let b = generate_sample(&cfg, 1);
        a.validate().unwrap();
        b.validate().unwrap();
        // Suffix property holds on every sample.
        for s in [&a, &b] {
            let g = &s.scenario.graph;
            let r = &s.scenario.routing;
            for (src, dst, links) in r.pairs() {
                let mut cur = src;
                for (i, &l) in links.iter().enumerate() {
                    if cur != src {
                        assert_eq!(&links[i..], r.path(cur, dst));
                    }
                    cur = g.link(l).unwrap().dst;
                }
            }
        }
        // Different samples still get different routings (diversity).
        let differs = a
            .scenario
            .graph
            .node_pairs()
            .any(|(s, d)| a.scenario.routing.path(s, d) != b.scenario.routing.path(s, d));
        assert!(differs);
    }

    #[test]
    fn topology_specs_build_expected_graphs() {
        assert_eq!(TopologySpec::Nsfnet.build().n_nodes(), 14);
        assert_eq!(TopologySpec::Geant2.build().n_nodes(), 24);
        assert_eq!(TopologySpec::Gbn.build().n_nodes(), 17);
        let s = TopologySpec::Synthetic {
            n: 50,
            topo_seed: 1,
        };
        assert_eq!(s.build().n_nodes(), 50);
        assert_eq!(s.name(), "Synth-50");
        // topo_seed fixes the graph
        let g1 = s.build();
        let g2 = TopologySpec::Synthetic {
            n: 50,
            topo_seed: 1,
        }
        .build();
        let e1: Vec<_> = g1.links().map(|(_, l)| (l.src.0, l.dst.0)).collect();
        let e2: Vec<_> = g2.links().map(|(_, l)| (l.src.0, l.dst.0)).collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn intensity_influences_delays() {
        let mut lo = tiny_cfg();
        lo.intensity_min = 0.1;
        lo.intensity_max = 0.1;
        let mut hi = tiny_cfg();
        hi.intensity_min = 0.9;
        hi.intensity_max = 0.9;
        let a = generate_sample(&lo, 0);
        let b = generate_sample(&hi, 0);
        let mean =
            |s: &Sample| s.targets.iter().map(|t| t.delay_s).sum::<f64>() / s.targets.len() as f64;
        assert!(mean(&b) > mean(&a), "high intensity must raise delays");
    }
}
