//! # routenet-dataset
//!
//! Dataset pipeline: turn (topology, routing diversity, traffic intensity)
//! recipes into labeled [`routenet_core::sample::Sample`]s by running the
//! packet-level simulator, in parallel, deterministically per seed.
//!
//! - [`gen`] — per-sample generation and parallel dataset generation.
//! - [`split`] — the paper's §2.1 protocol (train on {NSFNET, Synth-50},
//!   evaluate additionally on unseen Geant2), scaled by a config.
//! - [`io`] — JSONL persistence.
//!
//! ```
//! use routenet_dataset::gen::{GenConfig, TopologySpec, generate_dataset_with_threads};
//!
//! let mut cfg = GenConfig::new(TopologySpec::Nsfnet, 2, 42);
//! cfg.sim.duration_s = 60.0; // short labels for the doctest
//! cfg.sim.warmup_s = 6.0;
//! let ds = generate_dataset_with_threads(&cfg, 1);
//! assert_eq!(ds.len(), 2);
//! assert_eq!(ds[0].targets.len(), 14 * 13);
//! ```

#![warn(missing_docs)]

pub mod gen;
pub mod io;
pub mod split;

pub use gen::{generate_dataset, generate_sample, GenConfig, RoutingDiversity, TopologySpec};
pub use io::{load_jsonl, load_jsonl_lenient, save_jsonl, IoError, LenientLoad};
pub use split::{generate_paper_datasets, PaperDatasets, ProtocolConfig};
