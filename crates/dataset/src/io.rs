//! Dataset persistence: JSON-lines files (one sample per line).

use routenet_core::sample::Sample;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors while reading or writing datasets.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Fs(std::io::Error),
    /// A line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        msg: String,
    },
    /// A sample failed structural validation after load.
    Invalid {
        /// 0-based sample index.
        index: usize,
        /// Validation message.
        msg: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Fs(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            IoError::Invalid { index, msg } => write!(f, "invalid sample {index}: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Fs(e)
    }
}

/// Write samples as JSONL (one JSON object per line).
pub fn save_jsonl(path: impl AsRef<Path>, samples: &[Sample]) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    for s in samples {
        // lint: allow(panic, reason = "in-memory numeric data always serializes; f64 is emitted as a literal")
        let line = serde_json::to_string(s).expect("samples serialize");
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

/// Load samples from JSONL, rebuilding indices and validating each sample.
pub fn load_jsonl(path: impl AsRef<Path>) -> Result<Vec<Sample>, IoError> {
    let r = BufReader::new(File::open(path)?);
    let mut out = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut s: Sample = serde_json::from_str(&line).map_err(|e| IoError::Parse {
            line: lineno + 1,
            msg: e.to_string(),
        })?;
        s.finalize();
        s.validate().map_err(|msg| IoError::Invalid {
            index: out.len(),
            msg,
        })?;
        out.push(s);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_dataset_with_threads, GenConfig, TopologySpec};

    fn tiny_dataset() -> Vec<Sample> {
        let mut cfg = GenConfig::new(TopologySpec::Synthetic { n: 5, topo_seed: 9 }, 3, 7);
        cfg.sim.duration_s = 40.0;
        cfg.sim.warmup_s = 4.0;
        generate_dataset_with_threads(&cfg, 1)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join(format!("rn-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.jsonl");
        save_jsonl(&path, &ds).unwrap();
        let back = load_jsonl(&path).unwrap();
        assert_eq!(back.len(), ds.len());
        for (a, b) in ds.iter().zip(&back) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.topology, b.topology);
            for (x, y) in a.targets.iter().zip(&b.targets) {
                assert_eq!(x.delay_s, y.delay_s);
                assert_eq!(x.jitter_s2, y.jitter_s2);
            }
            // routing survives (index rebuilt)
            for (s, d) in a.scenario.graph.node_pairs() {
                assert_eq!(a.scenario.routing.path(s, d), b.scenario.routing.path(s, d));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("rn-io-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        std::fs::write(&path, "{not json}\n").unwrap();
        match load_jsonl(&path) {
            Err(IoError::Parse { line: 1, .. }) => {}
            other => panic!("expected parse error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_skips_blank_lines() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join(format!("rn-io-blank-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blank.jsonl");
        let mut content = serde_json::to_string(&ds[0]).unwrap();
        content.push_str("\n\n");
        content.push_str(&serde_json::to_string(&ds[1]).unwrap());
        content.push('\n');
        std::fs::write(&path, content).unwrap();
        let back = load_jsonl(&path).unwrap();
        assert_eq!(back.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_fs_error() {
        match load_jsonl("/definitely/not/here.jsonl") {
            Err(IoError::Fs(_)) => {}
            other => panic!("expected fs error, got {other:?}"),
        }
    }
}
