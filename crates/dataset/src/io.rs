//! Dataset persistence: JSON-lines files (one sample per line).
//!
//! Writes go through the canonical atomic writer in `routenet-faults`
//! (temp sibling + fsync + rename), so an interrupted generation run can
//! never leave a torn dataset file under the final name. Reads offer a
//! strict mode (default: any bad line aborts the load) and a lenient mode
//! that quarantines bad lines — both counted in the report *and* written
//! verbatim to a `<path>.quarantine` sidecar for inspection — useful for
//! salvaging datasets produced by older, non-atomic writers.
//!
//! Every function has a `_with` variant taking an explicit
//! [`FaultFs`] seam, so the chaos suite can inject torn writes, short
//! reads, and `ENOSPC` into dataset IO deterministically.

use routenet_core::sample::Sample;
use routenet_faults::{atomic_write_with, FaultFs, RealFs};
use std::path::{Path, PathBuf};

/// Errors while reading or writing datasets.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Fs(std::io::Error),
    /// A line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        msg: String,
    },
    /// A sample failed structural validation after load.
    Invalid {
        /// 0-based sample index.
        index: usize,
        /// Validation message.
        msg: String,
    },
    /// The final line is not newline-terminated: the writer was interrupted
    /// mid-record, so the tail cannot be trusted.
    TornTail {
        /// 1-based line number of the unterminated line.
        line: usize,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Fs(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            IoError::Invalid { index, msg } => write!(f, "invalid sample {index}: {msg}"),
            IoError::TornTail { line } => write!(
                f,
                "torn tail at line {line}: final line is not newline-terminated"
            ),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Fs(e)
    }
}

/// Outcome of a lenient load: the recovered samples plus an account of
/// everything that was quarantined.
#[derive(Debug)]
pub struct LenientLoad {
    /// Samples that parsed and validated.
    pub samples: Vec<Sample>,
    /// Number of quarantined lines (parse/validation failures + torn tail).
    pub skipped: usize,
    /// The first error encountered, for diagnostics.
    pub first_error: Option<IoError>,
    /// True if the final line was missing its newline (interrupted write).
    pub torn_tail: bool,
    /// Sidecar file the quarantined raw lines were written to (atomic;
    /// `<path>.quarantine`). `None` when nothing was quarantined or when
    /// writing the sidecar itself failed (the failure is folded into
    /// [`LenientLoad::first_error`]).
    pub quarantine_path: Option<PathBuf>,
}

impl LenientLoad {
    /// Record this load outcome on `tel`: one
    /// [`routenet_obs::Event::DatasetLoad`] event plus quarantine counters.
    pub fn emit_telemetry(&self, tel: &routenet_obs::Telemetry, path: &str) {
        if !tel.enabled() {
            return;
        }
        tel.counter_add("dataset.loads", 1);
        tel.counter_add("dataset.quarantined_lines", self.skipped as u64);
        tel.emit(routenet_obs::Event::DatasetLoad {
            path: path.to_string(),
            loaded: self.samples.len(),
            quarantined: self.skipped,
            torn_tail: self.torn_tail,
        });
    }
}

/// Write samples as JSONL (one JSON object per line) through the atomic
/// writer: the file appears under `path` fully written or not at all.
#[must_use = "an ignored save error means the dataset silently does not exist"]
pub fn save_jsonl(path: impl AsRef<Path>, samples: &[Sample]) -> Result<(), IoError> {
    save_jsonl_with(&RealFs, path.as_ref(), samples)
}

/// [`save_jsonl`] routed through an explicit IO seam.
#[must_use = "an ignored save error means the dataset silently does not exist"]
pub fn save_jsonl_with(fs: &dyn FaultFs, path: &Path, samples: &[Sample]) -> Result<(), IoError> {
    let mut buf = Vec::new();
    for s in samples {
        // lint: allow(panic, reason = "in-memory numeric data always serializes; f64 is emitted as a literal")
        let line = serde_json::to_string(s).expect("samples serialize");
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
    }
    atomic_write_with(fs, path, &buf)?;
    Ok(())
}

fn parse_line(line: &str, lineno: usize, index: usize) -> Result<Sample, IoError> {
    let mut s: Sample = serde_json::from_str(line).map_err(|e| IoError::Parse {
        line: lineno,
        msg: e.to_string(),
    })?;
    s.finalize();
    s.validate()
        .map_err(|msg| IoError::Invalid { index, msg })?;
    Ok(s)
}

/// Load samples from JSONL, rebuilding indices and validating each sample.
/// Strict: the first bad line (or a torn, newline-less tail) aborts the
/// load with an error. Use [`load_jsonl_lenient`] to salvage instead.
#[must_use = "dropping the result loses both the samples and any corruption diagnosis"]
pub fn load_jsonl(path: impl AsRef<Path>) -> Result<Vec<Sample>, IoError> {
    load_jsonl_with(&RealFs, path.as_ref())
}

/// [`load_jsonl`] routed through an explicit IO seam.
#[must_use = "dropping the result loses both the samples and any corruption diagnosis"]
pub fn load_jsonl_with(fs: &dyn FaultFs, path: &Path) -> Result<Vec<Sample>, IoError> {
    let content = fs.read_to_string(path)?;
    let torn = torn_tail_line(&content);
    let mut out = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        if Some(lineno + 1) == torn {
            return Err(IoError::TornTail { line: lineno + 1 });
        }
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_line(line, lineno + 1, out.len())?);
    }
    Ok(out)
}

/// Load samples from JSONL, quarantining bad lines instead of aborting.
/// Unparseable or invalid lines — and a torn (newline-less) final line —
/// are counted in [`LenientLoad::skipped`] with the first error retained
/// *and* written verbatim to an atomic `<path>.quarantine` sidecar so bad
/// data is inspectable, not just counted. Every salvageable sample is
/// returned. Filesystem errors reading the dataset itself still fail.
#[must_use = "dropping the result loses the salvaged samples and the skip report"]
pub fn load_jsonl_lenient(path: impl AsRef<Path>) -> Result<LenientLoad, IoError> {
    load_jsonl_lenient_with(&RealFs, path.as_ref())
}

/// Sidecar path for quarantined lines: `<path>.quarantine`.
pub fn quarantine_path_for(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".quarantine");
    PathBuf::from(os)
}

/// [`load_jsonl_lenient`] routed through an explicit IO seam (both the
/// dataset read and the quarantine sidecar write go through `fs`).
#[must_use = "dropping the result loses the salvaged samples and the skip report"]
pub fn load_jsonl_lenient_with(fs: &dyn FaultFs, path: &Path) -> Result<LenientLoad, IoError> {
    let content = fs.read_to_string(path)?;
    let torn = torn_tail_line(&content);
    let mut report = LenientLoad {
        samples: Vec::new(),
        skipped: 0,
        first_error: None,
        torn_tail: false,
        quarantine_path: None,
    };
    let mut quarantined: Vec<u8> = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        if Some(lineno + 1) == torn {
            // An unterminated final line means the writer died mid-record;
            // even if the fragment parses, it cannot be trusted.
            report.torn_tail = true;
            report.skipped += 1;
            report
                .first_error
                .get_or_insert(IoError::TornTail { line: lineno + 1 });
            quarantined.extend_from_slice(line.as_bytes());
            quarantined.push(b'\n');
            break;
        }
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line, lineno + 1, report.samples.len()) {
            Ok(s) => report.samples.push(s),
            Err(e) => {
                report.skipped += 1;
                report.first_error.get_or_insert(e);
                quarantined.extend_from_slice(line.as_bytes());
                quarantined.push(b'\n');
            }
        }
    }
    if !quarantined.is_empty() {
        let qpath = quarantine_path_for(path);
        match atomic_write_with(fs, &qpath, &quarantined) {
            Ok(()) => report.quarantine_path = Some(qpath),
            // Salvage must not fail because the *report* could not be
            // written; surface the failure through the report instead.
            Err(e) => {
                report.first_error.get_or_insert(IoError::Fs(e));
            }
        }
    }
    Ok(report)
}

/// 1-based line number of a non-empty final line missing its newline
/// terminator, if any.
fn torn_tail_line(content: &str) -> Option<usize> {
    if content.is_empty() || content.ends_with('\n') {
        return None;
    }
    Some(content.lines().count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_dataset_with_threads, GenConfig, TopologySpec};

    fn tiny_dataset() -> Vec<Sample> {
        let mut cfg = GenConfig::new(TopologySpec::Synthetic { n: 5, topo_seed: 9 }, 3, 7);
        cfg.sim.duration_s = 40.0;
        cfg.sim.warmup_s = 4.0;
        generate_dataset_with_threads(&cfg, 1)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join(format!("rn-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.jsonl");
        save_jsonl(&path, &ds).unwrap();
        let back = load_jsonl(&path).unwrap();
        assert_eq!(back.len(), ds.len());
        for (a, b) in ds.iter().zip(&back) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.topology, b.topology);
            for (x, y) in a.targets.iter().zip(&b.targets) {
                assert_eq!(x.delay_s, y.delay_s);
                assert_eq!(x.jitter_s2, y.jitter_s2);
            }
            // routing survives (index rebuilt)
            for (s, d) in a.scenario.graph.node_pairs() {
                assert_eq!(a.scenario.routing.path(s, d), b.scenario.routing.path(s, d));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_replaces_existing_file_atomically() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join(format!("rn-io-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.jsonl");
        save_jsonl(&path, &ds).unwrap();
        save_jsonl(&path, &ds[..1]).unwrap();
        assert_eq!(load_jsonl(&path).unwrap().len(), 1);
        // The temp sibling never survives a successful write.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("rn-io-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        std::fs::write(&path, "{not json}\n").unwrap();
        match load_jsonl(&path) {
            Err(IoError::Parse { line: 1, .. }) => {}
            other => panic!("expected parse error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_skips_blank_lines() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join(format!("rn-io-blank-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blank.jsonl");
        let mut content = serde_json::to_string(&ds[0]).unwrap();
        content.push_str("\n\n");
        content.push_str(&serde_json::to_string(&ds[1]).unwrap());
        content.push('\n');
        std::fs::write(&path, content).unwrap();
        let back = load_jsonl(&path).unwrap();
        assert_eq!(back.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_fs_error() {
        match load_jsonl("/definitely/not/here.jsonl") {
            Err(IoError::Fs(_)) => {}
            other => panic!("expected fs error, got {other:?}"),
        }
    }

    #[test]
    fn strict_load_rejects_torn_tail() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join(format!("rn-io-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.jsonl");
        let good = serde_json::to_string(&ds[0]).unwrap();
        // A second record cut off mid-write, with no trailing newline.
        let content = format!("{good}\n{}", &good[..good.len() / 2]);
        std::fs::write(&path, content).unwrap();
        match load_jsonl(&path) {
            Err(IoError::TornTail { line: 2 }) => {}
            other => panic!("expected torn tail, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lenient_load_quarantines_bad_lines() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join(format!("rn-io-lenient-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mixed.jsonl");
        let good = serde_json::to_string(&ds[0]).unwrap();
        let content = format!("{good}\n{{corrupt}}\n{good}\n");
        std::fs::write(&path, content).unwrap();
        let report = load_jsonl_lenient(&path).unwrap();
        assert_eq!(report.samples.len(), 2);
        assert_eq!(report.skipped, 1);
        assert!(!report.torn_tail);
        match report.first_error {
            Some(IoError::Parse { line: 2, .. }) => {}
            other => panic!("expected parse error at line 2, got {other:?}"),
        }
        // The bad line is inspectable in the sidecar, verbatim.
        let qpath = report.quarantine_path.expect("sidecar written");
        assert_eq!(qpath, quarantine_path_for(&path));
        assert_eq!(std::fs::read_to_string(&qpath).unwrap(), "{corrupt}\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_sidecar_collects_all_bad_lines_and_torn_tail() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join(format!("rn-io-qside-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mixed.jsonl");
        let good = serde_json::to_string(&ds[0]).unwrap();
        let frag = &good[..good.len() / 2];
        // Two bad lines plus a torn tail fragment; all must land in the
        // sidecar in file order.
        let content = format!("{{bad1}}\n{good}\n{{bad2}}\n{frag}");
        std::fs::write(&path, content).unwrap();
        let report = load_jsonl_lenient(&path).unwrap();
        assert_eq!(report.samples.len(), 1);
        assert_eq!(report.skipped, 3);
        assert!(report.torn_tail);
        let qpath = report.quarantine_path.expect("sidecar written");
        let sidecar = std::fs::read_to_string(&qpath).unwrap();
        assert_eq!(sidecar, format!("{{bad1}}\n{{bad2}}\n{frag}\n"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clean_lenient_load_writes_no_sidecar() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join(format!("rn-io-noq-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clean.jsonl");
        save_jsonl(&path, &ds).unwrap();
        let report = load_jsonl_lenient(&path).unwrap();
        assert!(report.quarantine_path.is_none());
        assert!(!quarantine_path_for(&path).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lenient_load_quarantines_torn_tail() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join(format!("rn-io-lt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.jsonl");
        let good = serde_json::to_string(&ds[0]).unwrap();
        // The torn fragment is quarantined even when it happens to parse:
        // here it is a full record missing only its newline.
        let content = format!("{good}\n{good}");
        std::fs::write(&path, content).unwrap();
        let report = load_jsonl_lenient(&path).unwrap();
        assert_eq!(report.samples.len(), 1);
        assert_eq!(report.skipped, 1);
        assert!(report.torn_tail);
        match report.first_error {
            Some(IoError::TornTail { line: 2 }) => {}
            other => panic!("expected torn tail at line 2, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lenient_load_telemetry_reports_quarantine() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join(format!("rn-io-tel-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mixed.jsonl");
        let good = serde_json::to_string(&ds[0]).unwrap();
        let content = format!("{good}\n{{corrupt}}\n{good}\n");
        std::fs::write(&path, content).unwrap();
        let report = load_jsonl_lenient(&path).unwrap();
        let tel = routenet_obs::Telemetry::in_memory("dataset", "test");
        report.emit_telemetry(&tel, &path.to_string_lossy());
        assert_eq!(tel.counter("dataset.quarantined_lines"), 1);
        let loads: Vec<_> = tel
            .records()
            .into_iter()
            .filter(|r| r.event.kind() == "DatasetLoad")
            .collect();
        assert_eq!(loads.len(), 1);
        match &loads[0].event {
            routenet_obs::Event::DatasetLoad {
                loaded,
                quarantined,
                torn_tail,
                ..
            } => {
                assert_eq!(*loaded, 2);
                assert_eq!(*quarantined, 1);
                assert!(!torn_tail);
            }
            other => panic!("expected DatasetLoad, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lenient_load_of_clean_file_reports_nothing() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join(format!("rn-io-clean-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clean.jsonl");
        save_jsonl(&path, &ds).unwrap();
        let report = load_jsonl_lenient(&path).unwrap();
        assert_eq!(report.samples.len(), ds.len());
        assert_eq!(report.skipped, 0);
        assert!(report.first_error.is_none());
        assert!(!report.torn_tail);
        std::fs::remove_dir_all(&dir).ok();
    }
}
