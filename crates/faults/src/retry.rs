//! Bounded exponential-backoff retry for transient IO errors.
//!
//! Only *transient* error kinds are retried — `Interrupted`, `WouldBlock`,
//! `TimedOut` — never hard failures like `ENOSPC` or a torn write (retrying
//! a partially-completed write could duplicate bytes; the atomic-write
//! protocol handles those by discarding the temp file instead). Sleeping is
//! routed through the [`Sleeper`] trait so tests pin the exact backoff
//! schedule without wall-clock waits.

use std::io;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// Whether `err` is worth retrying: a transient condition that a later
/// attempt can plausibly succeed at, as opposed to a hard failure
/// (`ENOSPC`, `EIO`, permission errors) that will recur.
pub fn is_transient(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Bounded exponential backoff: attempt, then sleep
/// `base_delay_ms * multiplier^i` (capped at `max_delay_ms`) between
/// retries, up to `max_attempts` total attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retry).
    pub max_attempts: u32,
    /// Delay before the first retry, in milliseconds.
    pub base_delay_ms: u64,
    /// Factor applied to the delay after each retry.
    pub multiplier: u64,
    /// Upper bound on any single delay, in milliseconds.
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 10,
            multiplier: 2,
            max_delay_ms: 1000,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay_ms: 0,
            multiplier: 1,
            max_delay_ms: 0,
        }
    }

    /// Delay before retry number `retry` (0-based), applying the
    /// exponential schedule and the cap.
    pub fn delay_for(&self, retry: u32) -> Duration {
        let mut ms = self.base_delay_ms;
        for _ in 0..retry {
            ms = ms.saturating_mul(self.multiplier);
            if ms >= self.max_delay_ms {
                ms = self.max_delay_ms;
                break;
            }
        }
        Duration::from_millis(ms.min(self.max_delay_ms))
    }
}

/// Injectable sleep, so retry tests are deterministic and instantaneous.
pub trait Sleeper: Send + Sync + std::fmt::Debug {
    /// Pause for `d` (or record that a pause was requested).
    fn sleep(&self, d: Duration);
}

/// Production sleeper: actually blocks the thread.
#[derive(Debug, Default, Clone, Copy)]
pub struct ThreadSleeper;

impl Sleeper for ThreadSleeper {
    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// Test sleeper: records every requested delay and returns immediately.
#[derive(Debug, Default)]
pub struct RecordingSleeper {
    slept: Mutex<Vec<Duration>>,
}

impl RecordingSleeper {
    /// A fresh recorder with no sleeps logged.
    pub fn new() -> Self {
        RecordingSleeper::default()
    }

    /// Every delay requested so far, in order.
    pub fn slept(&self) -> Vec<Duration> {
        self.slept
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

impl Sleeper for RecordingSleeper {
    fn sleep(&self, d: Duration) {
        self.slept
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(d);
    }
}

/// Run `op` under `policy`: retry transient errors with exponential backoff,
/// return the first success or the first non-transient (or final) error.
#[must_use = "the result carries the outcome of the final attempt"]
pub fn retry_io<T>(
    policy: &RetryPolicy,
    sleeper: &dyn Sleeper,
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let attempts = policy.max_attempts.max(1);
    let mut last: Option<io::Error> = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            sleeper.sleep(policy.delay_for(attempt - 1));
        }
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(&e) && attempt + 1 < attempts => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    // Unreachable unless the loop exhausted attempts on transient errors;
    // `last` is Some in that case.
    Err(last.unwrap_or_else(|| io::Error::other("retry_io: no attempts made")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn interrupted() -> io::Error {
        io::Error::new(io::ErrorKind::Interrupted, "injected")
    }

    #[test]
    fn succeeds_after_transient_failures_with_backoff_schedule() {
        let policy = RetryPolicy::default();
        let sleeper = RecordingSleeper::new();
        let calls = AtomicU32::new(0);
        let out = retry_io(&policy, &sleeper, || {
            if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                Err(interrupted())
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.ok(), Some(42));
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(
            sleeper.slept(),
            vec![Duration::from_millis(10), Duration::from_millis(20)]
        );
    }

    #[test]
    fn hard_errors_are_not_retried() {
        let policy = RetryPolicy::default();
        let sleeper = RecordingSleeper::new();
        let calls = AtomicU32::new(0);
        let out: io::Result<()> = retry_io(&policy, &sleeper, || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(io::Error::from_raw_os_error(28)) // ENOSPC
        });
        assert!(out.is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert!(sleeper.slept().is_empty());
    }

    #[test]
    fn exhausting_attempts_returns_last_transient_error() {
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let sleeper = RecordingSleeper::new();
        let calls = AtomicU32::new(0);
        let out: io::Result<()> = retry_io(&policy, &sleeper, || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(interrupted())
        });
        assert_eq!(
            out.err().map(|e| e.kind()),
            Some(io::ErrorKind::Interrupted)
        );
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(sleeper.slept().len(), 2);
    }

    #[test]
    fn delay_schedule_is_capped() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay_ms: 100,
            multiplier: 10,
            max_delay_ms: 500,
        };
        assert_eq!(policy.delay_for(0), Duration::from_millis(100));
        assert_eq!(policy.delay_for(1), Duration::from_millis(500));
        assert_eq!(policy.delay_for(5), Duration::from_millis(500));
    }

    #[test]
    fn none_policy_is_single_attempt() {
        let policy = RetryPolicy::none();
        let sleeper = RecordingSleeper::new();
        let calls = AtomicU32::new(0);
        let out: io::Result<()> = retry_io(&policy, &sleeper, || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(interrupted())
        });
        assert!(out.is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }
}
