//! # routenet-faults
//!
//! Deterministic fault injection for the RouteNet suite's persistence layer.
//! Zero dependencies: the crate sits *below* `routenet-core`, `routenet-obs`,
//! and `routenet-dataset` so every byte those crates put on (or read off)
//! disk can be routed through one injectable seam.
//!
//! Three pieces:
//!
//! * **The IO seam** ([`FaultFs`] / [`FsHandle`], module [`fs`]): a small
//!   trait covering exactly the filesystem operations the workspace
//!   performs (create / write / fsync / rename / remove / read / metadata /
//!   directory fsync). [`RealFs`] is the zero-cost passthrough used in
//!   production; [`InjectFs`] consults a [`FaultPlan`] before every
//!   operation. The canonical atomic writer ([`atomic_write_with`]) lives
//!   here so `core::checkpoint` and the `routenet-obs` file sink share one
//!   implementation (and one collision-free temp-name scheme).
//! * **Fault plans** ([`FaultPlan`], module [`plan`]): a deterministic,
//!   optionally seeded schedule of faults — fail the Nth matching
//!   operation, fail every Kth — filtered by operation kind and path
//!   substring, over a catalog of fault kinds (`ENOSPC`, `EIO`, `EINTR`,
//!   torn write after k bytes, short read, failed rename, failed fsync).
//!   The same plan replayed against the same operation sequence fires the
//!   same faults, which is what makes the chaos corpus pinnable.
//! * **Retry** ([`RetryPolicy`] / [`retry_io`], module [`retry`]): bounded
//!   exponential backoff that retries *transient* errors only
//!   (`Interrupted` / `WouldBlock` / `TimedOut`), never `ENOSPC`-style
//!   hard failures. Sleeping goes through the injectable [`Sleeper`] trait
//!   so tests assert the exact backoff schedule without wall-clock waits.
//!   [`FsHandle::with_retry`] stacks the policy on any seam handle as a
//!   per-operation decorator.
//!
//! The analyzer's `io-seam` rule (RN301) denies direct `std::fs` use in the
//! crates that adopted the seam, so the boundary is enforced, not
//! aspirational.

pub mod fs;
pub mod plan;
pub mod retry;

pub use fs::{atomic_write_with, FaultFs, FsFile, FsHandle, InjectFs, RealFs, RetryFs};
pub use plan::{FaultKind, FaultPlan, FaultRule, FiredFault, OpKind, Trigger};
pub use retry::{is_transient, retry_io, RecordingSleeper, RetryPolicy, Sleeper, ThreadSleeper};
