//! Deterministic fault schedules: *which* operation fails, *when*, and *how*.
//!
//! A [`FaultPlan`] is an ordered list of [`FaultRule`]s plus per-rule match
//! counters. Every seam operation is presented to the plan; each rule whose
//! predicate matches (operation kind, path substring, and a fault kind that
//! is meaningful for the operation) advances its counter, and the first rule
//! whose [`Trigger`] condition is met fires its [`FaultKind`]. Replaying the
//! same operation sequence against the same plan fires the same faults —
//! the property the chaos corpus is built on.

use std::path::Path;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The seam operations a fault can target (see [`crate::FaultFs`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Creating (truncating) a file for writing.
    Create,
    /// Writing a buffer to an open file.
    Write,
    /// Flushing file contents to stable storage (`fsync`).
    Fsync,
    /// Renaming a file (the atomic-write publish step).
    Rename,
    /// Removing a file (temp-file cleanup).
    Remove,
    /// Reading a whole file.
    Read,
    /// Querying a file's length.
    Metadata,
    /// Flushing a directory entry to stable storage.
    SyncDir,
}

impl OpKind {
    /// Lowercase name for logs and schedule descriptions.
    pub fn as_str(self) -> &'static str {
        match self {
            OpKind::Create => "create",
            OpKind::Write => "write",
            OpKind::Fsync => "fsync",
            OpKind::Rename => "rename",
            OpKind::Remove => "remove",
            OpKind::Read => "read",
            OpKind::Metadata => "metadata",
            OpKind::SyncDir => "sync_dir",
        }
    }
}

/// The fault catalog: what an injected failure looks like to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// `ENOSPC`: the disk is full. Hard failure, never retried.
    Enospc,
    /// `EIO`: the device misbehaved. Hard failure, never retried.
    Eio,
    /// `EINTR`-style transient failure; the retry policy may retry it.
    Interrupted,
    /// Write only the first `keep_bytes` bytes, then fail: the torn-write
    /// crash shape that atomic rename must make invisible to readers.
    TornWrite {
        /// Bytes actually written before the failure.
        keep_bytes: usize,
    },
    /// Return only the first `keep_bytes` bytes of the file, simulating a
    /// truncated read of a longer file.
    ShortRead {
        /// Bytes returned to the reader.
        keep_bytes: usize,
    },
    /// The rename publishing an atomic write fails.
    FailRename,
    /// `fsync` fails (contents may or may not be durable).
    FailFsync,
}

impl FaultKind {
    /// Whether this fault is meaningful for `op` (a torn write can only
    /// happen on a write, a short read only on a read, and so on). The
    /// plain error kinds apply to every operation.
    pub fn applies_to(&self, op: OpKind) -> bool {
        match self {
            FaultKind::TornWrite { .. } => op == OpKind::Write,
            FaultKind::ShortRead { .. } => op == OpKind::Read,
            FaultKind::FailRename => op == OpKind::Rename,
            FaultKind::FailFsync => matches!(op, OpKind::Fsync | OpKind::SyncDir),
            FaultKind::Enospc | FaultKind::Eio | FaultKind::Interrupted => true,
        }
    }

    /// The `io::Error` the seam surfaces for this fault. `ShortRead` never
    /// errors (it truncates the returned bytes instead), so it maps to a
    /// generic injected-fault error should a caller force it down the error
    /// path.
    pub fn to_error(&self) -> std::io::Error {
        match self {
            FaultKind::Enospc => err_no(28, "injected ENOSPC"),
            FaultKind::Eio => err_no(5, "injected EIO"),
            FaultKind::Interrupted => std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "injected EINTR (transient)",
            ),
            FaultKind::TornWrite { keep_bytes } => std::io::Error::other(format!(
                "injected torn write: failed after {keep_bytes} bytes"
            )),
            FaultKind::ShortRead { keep_bytes } => std::io::Error::other(format!(
                "injected short read: only {keep_bytes} bytes available"
            )),
            FaultKind::FailRename => std::io::Error::other("injected rename failure"),
            FaultKind::FailFsync => std::io::Error::other("injected fsync failure"),
        }
    }

    /// Short name for logs and schedule descriptions.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Enospc => "enospc",
            FaultKind::Eio => "eio",
            FaultKind::Interrupted => "interrupted",
            FaultKind::TornWrite { .. } => "torn-write",
            FaultKind::ShortRead { .. } => "short-read",
            FaultKind::FailRename => "fail-rename",
            FaultKind::FailFsync => "fail-fsync",
        }
    }
}

/// OS-numbered error with an explanatory message; on non-Unix targets the
/// raw number is dropped and a plain error carries the message.
fn err_no(raw: i32, msg: &'static str) -> std::io::Error {
    #[cfg(unix)]
    {
        // Preserve the real errno so callers see the same ErrorKind they
        // would under a genuine disk-full / device error.
        let _ = msg;
        std::io::Error::from_raw_os_error(raw)
    }
    #[cfg(not(unix))]
    {
        let _ = raw;
        std::io::Error::other(msg)
    }
}

/// When a matching rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire on the Nth matching operation only (1-based).
    Nth(u64),
    /// Fire on every Kth matching operation (the Kth, 2Kth, ...).
    EveryK(u64),
}

/// One schedule entry: a predicate over seam operations plus a trigger and
/// the fault to inject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// Restrict to one operation kind (`None` = any operation the fault
    /// kind applies to).
    pub op: Option<OpKind>,
    /// Restrict to paths containing this substring (`None` = any path).
    pub path_contains: Option<String>,
    /// When the rule fires, counted over *matching* operations.
    pub trigger: Trigger,
    /// The fault injected when the trigger condition is met.
    pub kind: FaultKind,
}

impl FaultRule {
    /// Rule matching every operation `kind` applies to, firing on the Nth
    /// match (1-based). Narrow it with [`FaultRule::on_op`] /
    /// [`FaultRule::on_path`].
    pub fn nth(n: u64, kind: FaultKind) -> Self {
        FaultRule {
            op: None,
            path_contains: None,
            trigger: Trigger::Nth(n.max(1)),
            kind,
        }
    }

    /// Rule firing on every Kth match.
    pub fn every(k: u64, kind: FaultKind) -> Self {
        FaultRule {
            op: None,
            path_contains: None,
            trigger: Trigger::EveryK(k.max(1)),
            kind,
        }
    }

    /// Restrict the rule to one operation kind.
    pub fn on_op(mut self, op: OpKind) -> Self {
        self.op = Some(op);
        self
    }

    /// Restrict the rule to paths containing `substring`.
    pub fn on_path(mut self, substring: &str) -> Self {
        self.path_contains = Some(substring.to_string());
        self
    }

    fn matches(&self, op: OpKind, path: &str) -> bool {
        if !self.kind.applies_to(op) {
            return false;
        }
        if let Some(want) = self.op {
            if want != op {
                return false;
            }
        }
        if let Some(sub) = &self.path_contains {
            if !path.contains(sub.as_str()) {
                return false;
            }
        }
        true
    }
}

/// Record of one injected fault, for post-run assertions and logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredFault {
    /// Index of the rule that fired.
    pub rule: usize,
    /// The operation the fault was injected into.
    pub op: OpKind,
    /// Path of the faulted operation.
    pub path: String,
    /// The injected fault.
    pub kind: FaultKind,
}

#[derive(Debug, Default)]
struct PlanState {
    /// Matching-operation count per rule (trigger arithmetic runs on this).
    matched: Vec<u64>,
    /// Every fault fired so far, in firing order.
    fired: Vec<FiredFault>,
}

/// A deterministic fault schedule with interior match counters, shared by
/// every clone of the [`crate::FsHandle`] it is installed into.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    state: Mutex<PlanState>,
}

fn lock(m: &Mutex<PlanState>) -> MutexGuard<'_, PlanState> {
    // Fault bookkeeping must never compound a failure: a poisoned lock
    // (impossible in this module, but cheap to defend) degrades to using
    // the state as-is.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl FaultPlan {
    /// An empty plan: injects nothing.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Append a rule (builder style).
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// A pseudo-random schedule derived purely from `seed`: `n_rules` rules
    /// drawn from the fault catalog over the write-path operations, with
    /// small Nth/every-K triggers. The same seed always yields the same
    /// schedule (splitmix64, no global RNG), so seeds double as corpus IDs.
    pub fn seeded(seed: u64, n_rules: usize) -> Self {
        let mut s = seed;
        let mut next = move || splitmix64(&mut s);
        let mut plan = FaultPlan::new();
        for _ in 0..n_rules {
            let op = match next() % 6 {
                0 => OpKind::Create,
                1 | 2 => OpKind::Write,
                3 => OpKind::Fsync,
                4 => OpKind::Rename,
                _ => OpKind::Read,
            };
            let kind = match (next() % 7, op) {
                (0, _) => FaultKind::Enospc,
                (1, _) => FaultKind::Eio,
                (2, _) => FaultKind::Interrupted,
                (3, OpKind::Write) => FaultKind::TornWrite {
                    keep_bytes: (next() % 256) as usize,
                },
                (3 | 4, OpKind::Read) => FaultKind::ShortRead {
                    keep_bytes: (next() % 64) as usize,
                },
                (4 | 5, OpKind::Rename) => FaultKind::FailRename,
                (4 | 5, OpKind::Fsync) => FaultKind::FailFsync,
                _ => FaultKind::Eio,
            };
            let trigger = if next() % 2 == 0 {
                Trigger::Nth(1 + next() % 5)
            } else {
                Trigger::EveryK(2 + next() % 4)
            };
            plan.rules.push(FaultRule {
                op: Some(op),
                path_contains: None,
                trigger,
                kind,
            });
        }
        plan
    }

    /// Present one operation to the plan. Every matching rule's counter
    /// advances; the first rule whose trigger condition is met fires, and
    /// the fault is recorded. Returns the fault to inject, if any.
    pub fn check(&self, op: OpKind, path: &Path) -> Option<FaultKind> {
        let path_str = path.to_string_lossy();
        let mut st = lock(&self.state);
        if st.matched.len() < self.rules.len() {
            st.matched.resize(self.rules.len(), 0);
        }
        let mut fired: Option<(usize, FaultKind)> = None;
        for (i, rule) in self.rules.iter().enumerate() {
            if !rule.matches(op, &path_str) {
                continue;
            }
            st.matched[i] += 1;
            let hit = match rule.trigger {
                Trigger::Nth(n) => st.matched[i] == n,
                Trigger::EveryK(k) => st.matched[i].is_multiple_of(k),
            };
            if hit && fired.is_none() {
                fired = Some((i, rule.kind.clone()));
            }
        }
        let (rule, kind) = fired?;
        st.fired.push(FiredFault {
            rule,
            op,
            path: path_str.into_owned(),
            kind: kind.clone(),
        });
        Some(kind)
    }

    /// Every fault fired so far, in firing order.
    pub fn fired(&self) -> Vec<FiredFault> {
        lock(&self.state).fired.clone()
    }

    /// Number of faults fired so far.
    pub fn fired_count(&self) -> usize {
        lock(&self.state).fired.len()
    }

    /// One-line human description of the schedule, for chaos-test logs.
    pub fn describe(&self) -> String {
        let rules: Vec<String> = self
            .rules
            .iter()
            .map(|r| {
                let op = r.op.map_or("any", OpKind::as_str);
                let path = r.path_contains.as_deref().unwrap_or("*");
                let trig = match r.trigger {
                    Trigger::Nth(n) => format!("nth={n}"),
                    Trigger::EveryK(k) => format!("every={k}"),
                };
                format!("{}@{op}[{path}]({trig})", r.kind.name())
            })
            .collect();
        format!("[{}]", rules.join(", "))
    }
}

/// splitmix64: tiny, dependency-free, deterministic PRNG for seeded
/// schedules. Not used anywhere numerics-critical.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let plan = FaultPlan::new().rule(FaultRule::nth(2, FaultKind::Eio).on_op(OpKind::Write));
        let p = PathBuf::from("/tmp/x");
        assert_eq!(plan.check(OpKind::Write, &p), None);
        assert_eq!(plan.check(OpKind::Write, &p), Some(FaultKind::Eio));
        assert_eq!(plan.check(OpKind::Write, &p), None);
        assert_eq!(plan.fired_count(), 1);
        assert_eq!(plan.fired()[0].op, OpKind::Write);
    }

    #[test]
    fn every_k_trigger_repeats() {
        let plan = FaultPlan::new().rule(FaultRule::every(2, FaultKind::Enospc));
        let p = PathBuf::from("/tmp/x");
        let fires: Vec<bool> = (0..6)
            .map(|_| plan.check(OpKind::Create, &p).is_some())
            .collect();
        assert_eq!(fires, [false, true, false, true, false, true]);
    }

    #[test]
    fn path_and_op_predicates_filter() {
        let plan = FaultPlan::new().rule(
            FaultRule::nth(1, FaultKind::Eio)
                .on_op(OpKind::Rename)
                .on_path("ckpt"),
        );
        let other = PathBuf::from("/tmp/data.jsonl");
        let target = PathBuf::from("/tmp/model.ckpt");
        assert_eq!(plan.check(OpKind::Rename, &other), None);
        assert_eq!(plan.check(OpKind::Write, &target), None);
        assert_eq!(plan.check(OpKind::Rename, &target), Some(FaultKind::Eio));
    }

    #[test]
    fn fault_kinds_apply_to_their_ops_only() {
        let torn = FaultKind::TornWrite { keep_bytes: 3 };
        assert!(torn.applies_to(OpKind::Write));
        assert!(!torn.applies_to(OpKind::Read));
        let short = FaultKind::ShortRead { keep_bytes: 3 };
        assert!(short.applies_to(OpKind::Read));
        assert!(!short.applies_to(OpKind::Write));
        assert!(FaultKind::FailRename.applies_to(OpKind::Rename));
        assert!(!FaultKind::FailRename.applies_to(OpKind::Fsync));
        assert!(FaultKind::FailFsync.applies_to(OpKind::SyncDir));
        assert!(FaultKind::Enospc.applies_to(OpKind::Metadata));
    }

    #[test]
    fn interrupted_is_the_only_transient_catalog_error() {
        assert!(crate::retry::is_transient(
            &FaultKind::Interrupted.to_error()
        ));
        for hard in [
            FaultKind::Enospc,
            FaultKind::Eio,
            FaultKind::TornWrite { keep_bytes: 1 },
            FaultKind::FailRename,
            FaultKind::FailFsync,
        ] {
            assert!(
                !crate::retry::is_transient(&hard.to_error()),
                "{hard:?} must be a hard failure"
            );
        }
    }

    #[test]
    fn seeded_schedules_are_deterministic_and_distinct() {
        let a = FaultPlan::seeded(7, 4);
        let b = FaultPlan::seeded(7, 4);
        assert_eq!(a.describe(), b.describe());
        assert_eq!(a.rules, b.rules);
        let c = FaultPlan::seeded(8, 4);
        assert_ne!(a.describe(), c.describe());
    }

    #[test]
    fn first_matching_rule_wins_but_all_counters_advance() {
        let plan = FaultPlan::new()
            .rule(FaultRule::nth(2, FaultKind::Eio))
            .rule(FaultRule::nth(2, FaultKind::Enospc));
        let p = PathBuf::from("/tmp/x");
        assert_eq!(plan.check(OpKind::Create, &p), None);
        // Both rules hit their Nth on the same op; the first wins.
        assert_eq!(plan.check(OpKind::Create, &p), Some(FaultKind::Eio));
        assert_eq!(plan.fired_count(), 1);
    }
}
