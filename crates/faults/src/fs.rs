//! The filesystem IO seam: one trait covering every disk operation the
//! workspace performs, a zero-cost passthrough, a fault-injecting
//! implementation, a per-operation retry decorator, and the canonical
//! atomic-write protocol built on top of the seam.
//!
//! This module is the **only** place in the seam-adopting crates
//! (`routenet-core`, `routenet-dataset`, `routenet-obs`) allowed to touch
//! `std::fs` directly; the analyzer's `io-seam` rule (RN301) denies direct
//! use elsewhere.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::plan::{FaultKind, FaultPlan, OpKind};
use crate::retry::{retry_io, RetryPolicy, Sleeper, ThreadSleeper};

/// The seam: every filesystem operation the RouteNet crates perform.
///
/// Files are handled by whole-buffer operations plus an opaque writer token
/// so the injecting impl can tear writes deterministically without holding
/// OS state of its own.
pub trait FaultFs: Send + Sync + std::fmt::Debug {
    /// Create (truncate) `path` for writing; returns a writer token for
    /// [`FaultFs::write_all`] / [`FaultFs::sync_all`].
    fn create(&self, path: &Path) -> std::io::Result<FsFile>;
    /// Write `bytes` to the open file.
    fn write_all(&self, file: &mut FsFile, bytes: &[u8]) -> std::io::Result<()>;
    /// Flush the open file's contents to stable storage.
    fn sync_all(&self, file: &mut FsFile) -> std::io::Result<()>;
    /// Rename `from` to `to` (atomic within a filesystem).
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;
    /// Remove the file at `path`.
    fn remove_file(&self, path: &Path) -> std::io::Result<()>;
    /// Read the whole file at `path`.
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>>;
    /// Read the whole file at `path` as UTF-8.
    fn read_to_string(&self, path: &Path) -> std::io::Result<String> {
        let bytes = self.read(path)?;
        String::from_utf8(bytes).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("not UTF-8: {e}"))
        })
    }
    /// Length in bytes of the file at `path`.
    fn metadata_len(&self, path: &Path) -> std::io::Result<u64>;
    /// Flush the directory entry at `dir` to stable storage (best-effort on
    /// platforms where directories cannot be opened).
    fn sync_dir(&self, dir: &Path) -> std::io::Result<()>;
}

/// An open file handle flowing through the seam. The path is retained so
/// injecting implementations can apply path predicates to writes and
/// fsyncs, not just to opens.
#[derive(Debug)]
pub struct FsFile {
    file: File,
    path: PathBuf,
}

impl FsFile {
    /// Path this handle was created for.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Zero-cost passthrough: every seam operation maps 1:1 to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl FaultFs for RealFs {
    fn create(&self, path: &Path) -> std::io::Result<FsFile> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FsFile {
            file,
            path: path.to_path_buf(),
        })
    }

    fn write_all(&self, file: &mut FsFile, bytes: &[u8]) -> std::io::Result<()> {
        file.file.write_all(bytes)
    }

    fn sync_all(&self, file: &mut FsFile) -> std::io::Result<()> {
        file.file.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        std::fs::remove_file(path)
    }

    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn read_to_string(&self, path: &Path) -> std::io::Result<String> {
        std::fs::read_to_string(path)
    }

    fn metadata_len(&self, path: &Path) -> std::io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
        // Directory fsync is a durability nicety; platforms that cannot
        // open directories simply skip it.
        match File::open(dir) {
            Ok(d) => d.sync_all(),
            Err(_) => Ok(()),
        }
    }
}

/// Fault-injecting seam: consults a [`FaultPlan`] before every operation
/// and applies the fired [`FaultKind`] (error out, tear the write, truncate
/// the read) before delegating the un-faulted remainder to [`RealFs`].
#[derive(Debug)]
pub struct InjectFs {
    plan: Arc<FaultPlan>,
    real: RealFs,
}

impl InjectFs {
    /// Wrap `plan` around the real filesystem.
    pub fn new(plan: Arc<FaultPlan>) -> Self {
        InjectFs { plan, real: RealFs }
    }

    /// The plan this seam consults (for fired-fault assertions).
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }

    fn gate(&self, op: OpKind, path: &Path) -> std::io::Result<Option<FaultKind>> {
        match self.plan.check(op, path) {
            None => Ok(None),
            // Shape-changing faults are returned for the caller to apply.
            Some(k @ (FaultKind::TornWrite { .. } | FaultKind::ShortRead { .. })) => Ok(Some(k)),
            Some(k) => Err(k.to_error()),
        }
    }
}

impl FaultFs for InjectFs {
    fn create(&self, path: &Path) -> std::io::Result<FsFile> {
        self.gate(OpKind::Create, path)?;
        self.real.create(path)
    }

    fn write_all(&self, file: &mut FsFile, bytes: &[u8]) -> std::io::Result<()> {
        let path = file.path.clone();
        match self.gate(OpKind::Write, &path)? {
            Some(FaultKind::TornWrite { keep_bytes }) => {
                let keep = keep_bytes.min(bytes.len());
                self.real.write_all(file, &bytes[..keep])?;
                // Make the torn prefix visible on disk the way a crash
                // would, then report the failure.
                let _ = self.real.sync_all(file); // lint: allow(error-discard, reason = "best-effort flush of a deliberately torn write; the injected error below is the outcome under test")
                Err(FaultKind::TornWrite { keep_bytes }.to_error())
            }
            _ => self.real.write_all(file, bytes),
        }
    }

    fn sync_all(&self, file: &mut FsFile) -> std::io::Result<()> {
        let path = file.path.clone();
        self.gate(OpKind::Fsync, &path)?;
        self.real.sync_all(file)
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        self.gate(OpKind::Rename, to)?;
        self.real.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        self.gate(OpKind::Remove, path)?;
        self.real.remove_file(path)
    }

    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        match self.gate(OpKind::Read, path)? {
            Some(FaultKind::ShortRead { keep_bytes }) => {
                let mut bytes = self.real.read(path)?;
                bytes.truncate(keep_bytes);
                Ok(bytes)
            }
            _ => self.real.read(path),
        }
    }

    fn metadata_len(&self, path: &Path) -> std::io::Result<u64> {
        self.gate(OpKind::Metadata, path)?;
        self.real.metadata_len(path)
    }

    fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
        self.gate(OpKind::SyncDir, dir)?;
        self.real.sync_dir(dir)
    }
}

/// Per-operation retry decorator: wraps an inner seam and retries each
/// operation under a [`RetryPolicy`]. Whole-buffer writes restart from a
/// re-created file, so a retried `create`+`write_all` sequence cannot
/// duplicate bytes; partial-write faults surface as non-transient errors
/// and are never retried.
#[derive(Debug)]
pub struct RetryFs {
    inner: Arc<dyn FaultFs>,
    policy: RetryPolicy,
    sleeper: Arc<dyn Sleeper>,
}

impl RetryFs {
    /// Wrap `inner` with `policy`, sleeping via `sleeper` between attempts.
    pub fn new(inner: Arc<dyn FaultFs>, policy: RetryPolicy, sleeper: Arc<dyn Sleeper>) -> Self {
        RetryFs {
            inner,
            policy,
            sleeper,
        }
    }
}

impl FaultFs for RetryFs {
    fn create(&self, path: &Path) -> std::io::Result<FsFile> {
        retry_io(&self.policy, self.sleeper.as_ref(), || {
            self.inner.create(path)
        })
    }

    fn write_all(&self, file: &mut FsFile, bytes: &[u8]) -> std::io::Result<()> {
        // Transient write errors (injected EINTR) fail before any bytes
        // land, so re-issuing the whole buffer is safe. Partial writes are
        // non-transient by construction and fall straight through.
        retry_io(&self.policy, self.sleeper.as_ref(), || {
            self.inner.write_all(file, bytes)
        })
    }

    fn sync_all(&self, file: &mut FsFile) -> std::io::Result<()> {
        retry_io(&self.policy, self.sleeper.as_ref(), || {
            self.inner.sync_all(file)
        })
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        retry_io(&self.policy, self.sleeper.as_ref(), || {
            self.inner.rename(from, to)
        })
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        retry_io(&self.policy, self.sleeper.as_ref(), || {
            self.inner.remove_file(path)
        })
    }

    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        retry_io(&self.policy, self.sleeper.as_ref(), || {
            self.inner.read(path)
        })
    }

    fn read_to_string(&self, path: &Path) -> std::io::Result<String> {
        retry_io(&self.policy, self.sleeper.as_ref(), || {
            self.inner.read_to_string(path)
        })
    }

    fn metadata_len(&self, path: &Path) -> std::io::Result<u64> {
        retry_io(&self.policy, self.sleeper.as_ref(), || {
            self.inner.metadata_len(path)
        })
    }

    fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
        retry_io(&self.policy, self.sleeper.as_ref(), || {
            self.inner.sync_dir(dir)
        })
    }
}

/// Cheap-clone handle to a seam implementation, designed to sit inside
/// configs the way the `Telemetry` handle does: `Default` is the real
/// filesystem with the default retry policy, and equality always holds so
/// a `#[serde(skip)]` handle never perturbs config comparison or resume
/// compatibility.
#[derive(Debug, Clone)]
pub struct FsHandle(Arc<dyn FaultFs>);

impl Default for FsHandle {
    fn default() -> Self {
        FsHandle(Arc::new(RetryFs::new(
            Arc::new(RealFs),
            RetryPolicy::default(),
            Arc::new(ThreadSleeper),
        )))
    }
}

impl PartialEq for FsHandle {
    fn eq(&self, _other: &Self) -> bool {
        // The seam is wiring, not data: two configs differing only in fs
        // handle are the same config.
        true
    }
}

impl FsHandle {
    /// The real filesystem, no retry.
    pub fn real() -> Self {
        FsHandle(Arc::new(RealFs))
    }

    /// A fault-injecting handle over `plan`; the returned plan handle is
    /// for post-run fired-fault assertions.
    pub fn faulty(plan: FaultPlan) -> (Self, Arc<FaultPlan>) {
        let plan = Arc::new(plan);
        (FsHandle(Arc::new(InjectFs::new(Arc::clone(&plan)))), plan)
    }

    /// Wrap any existing seam implementation.
    pub fn from_fs(fs: Arc<dyn FaultFs>) -> Self {
        FsHandle(fs)
    }

    /// Stack a retry decorator on this handle.
    pub fn with_retry(self, policy: RetryPolicy, sleeper: Arc<dyn Sleeper>) -> Self {
        FsHandle(Arc::new(RetryFs::new(self.0, policy, sleeper)))
    }

    /// The underlying seam implementation.
    pub fn fs(&self) -> &dyn FaultFs {
        self.0.as_ref()
    }
}

impl std::ops::Deref for FsHandle {
    type Target = dyn FaultFs;

    fn deref(&self) -> &Self::Target {
        self.0.as_ref()
    }
}

/// Monotonic per-process counter appended to atomic-write temp names so
/// concurrent writers targeting the same path never share a temp file.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The canonical crash-safe write protocol, shared by `core::checkpoint`
/// and the `routenet-obs` file sink:
///
/// 1. write the full payload to a sibling temp file
///    (`.{name}.tmp.{pid}.{seq}` — pid *and* a per-process atomic counter,
///    so concurrent writers cannot clobber each other's temp),
/// 2. fsync the temp file,
/// 3. atomically rename it over the destination,
/// 4. best-effort fsync of the parent directory.
///
/// On any failure the temp file is removed (best-effort) and the
/// destination is untouched: readers see the old bytes or the new bytes,
/// never a prefix.
#[must_use = "an ignored error means the destination may still hold the old bytes"]
pub fn atomic_write_with(fs: &dyn FaultFs, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "out".to_string());
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp_name = format!(".{name}.tmp.{}.{seq}", std::process::id());
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => PathBuf::from(&tmp_name),
    };

    let result = (|| -> std::io::Result<()> {
        let mut file = fs.create(&tmp)?;
        fs.write_all(&mut file, bytes)?;
        fs.sync_all(&mut file)?;
        drop(file);
        fs.rename(&tmp, path)?;
        if let Some(d) = dir {
            let _ = fs.sync_dir(d); // lint: allow(error-discard, reason = "directory fsync is best-effort durability hardening; the data file itself is already synced")
        }
        Ok(())
    })();

    if result.is_err() {
        let _ = fs.remove_file(&tmp); // lint: allow(error-discard, reason = "best-effort cleanup of the temp file on the failure path; the original error is what matters")
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultRule, Trigger};
    use crate::retry::RecordingSleeper;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "routenet-faults-{tag}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn atomic_write_roundtrips_through_real_fs() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("out.bin");
        atomic_write_with(&RealFs, &path, b"hello").expect("atomic write");
        assert_eq!(std::fs::read(&path).expect("read back"), b"hello");
        // No temp litter.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("list dir")
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn torn_write_leaves_destination_untouched() {
        let dir = tmp_dir("torn");
        let path = dir.join("out.bin");
        atomic_write_with(&RealFs, &path, b"original").expect("seed write");

        let plan = FaultPlan::new()
            .rule(FaultRule::nth(1, FaultKind::TornWrite { keep_bytes: 3 }).on_op(OpKind::Write));
        let (fs, plan) = FsHandle::faulty(plan);
        let err = atomic_write_with(fs.fs(), &path, b"replacement");
        assert!(err.is_err());
        assert_eq!(plan.fired_count(), 1);
        // Old contents survive; no torn prefix is visible at the real path.
        assert_eq!(std::fs::read(&path).expect("read back"), b"original");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn failed_rename_preserves_old_contents_and_cleans_temp() {
        let dir = tmp_dir("rename");
        let path = dir.join("out.bin");
        atomic_write_with(&RealFs, &path, b"v1").expect("seed write");

        let plan =
            FaultPlan::new().rule(FaultRule::nth(1, FaultKind::FailRename).on_op(OpKind::Rename));
        let (fs, _plan) = FsHandle::faulty(plan);
        assert!(atomic_write_with(fs.fs(), &path, b"v2").is_err());
        assert_eq!(std::fs::read(&path).expect("read back"), b"v1");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("list dir")
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn short_read_truncates_bytes() {
        let dir = tmp_dir("shortread");
        let path = dir.join("data.txt");
        std::fs::write(&path, b"0123456789").expect("seed write");
        let plan = FaultPlan::new()
            .rule(FaultRule::nth(1, FaultKind::ShortRead { keep_bytes: 4 }).on_op(OpKind::Read));
        let (fs, _plan) = FsHandle::faulty(plan);
        assert_eq!(fs.read(&path).expect("short read"), b"0123");
        // Second read is clean.
        assert_eq!(fs.read(&path).expect("clean read"), b"0123456789");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn retry_handle_recovers_from_transient_create_failures() {
        let dir = tmp_dir("retry");
        let path = dir.join("out.bin");
        let plan = FaultPlan::new().rule(FaultRule {
            op: Some(OpKind::Create),
            path_contains: None,
            trigger: Trigger::Nth(1),
            kind: FaultKind::Interrupted,
        });
        let sleeper = Arc::new(RecordingSleeper::new());
        let (fs, plan) = FsHandle::faulty(plan);
        let fs = fs.with_retry(
            RetryPolicy::default(),
            Arc::clone(&sleeper) as Arc<dyn Sleeper>,
        );
        atomic_write_with(fs.fs(), &path, b"persisted").expect("retried write");
        assert_eq!(std::fs::read(&path).expect("read back"), b"persisted");
        assert_eq!(plan.fired_count(), 1);
        assert_eq!(sleeper.slept().len(), 1);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn hard_faults_pass_through_retry_unchanged() {
        let dir = tmp_dir("hard");
        let path = dir.join("out.bin");
        let plan = FaultPlan::new().rule(FaultRule {
            op: Some(OpKind::Create),
            path_contains: None,
            trigger: Trigger::Nth(1),
            kind: FaultKind::Enospc,
        });
        let sleeper = Arc::new(RecordingSleeper::new());
        let (fs, _plan) = FsHandle::faulty(plan);
        let fs = fs.with_retry(
            RetryPolicy::default(),
            Arc::clone(&sleeper) as Arc<dyn Sleeper>,
        );
        assert!(atomic_write_with(fs.fs(), &path, b"x").is_err());
        assert!(sleeper.slept().is_empty(), "hard fault must not be retried");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn concurrent_atomic_writes_to_same_path_do_not_collide() {
        let dir = tmp_dir("concurrent");
        let path = dir.join("shared.bin");
        let threads: Vec<_> = (0..8u8)
            .map(|i| {
                let path = path.clone();
                std::thread::spawn(move || {
                    let payload = vec![i; 4096];
                    atomic_write_with(&RealFs, &path, &payload).expect("atomic write");
                })
            })
            .collect();
        for t in threads {
            t.join().expect("writer thread");
        }
        // Whatever writer won, the file is one intact 4096-byte payload.
        let bytes = std::fs::read(&path).expect("read back");
        assert_eq!(bytes.len(), 4096);
        assert!(bytes.windows(2).all(|w| w[0] == w[1]), "mixed payloads");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn fs_handle_equality_is_always_true() {
        let (faulty, _) = FsHandle::faulty(FaultPlan::new());
        assert_eq!(FsHandle::default(), FsHandle::real());
        assert_eq!(FsHandle::real(), faulty);
    }
}
