//! Integration tests: every event kind round-trips through serde, and the
//! file sink produces a parseable, crash-safe JSONL log.

use routenet_obs::{Event, Record, Telemetry};

fn every_event_kind() -> Vec<Event> {
    vec![
        Event::RunStart {
            bin: "test".into(),
            run: "r1".into(),
        },
        Event::Epoch {
            epoch: 3,
            train_loss: 0.25,
            val_loss: Some(0.3),
            lr: 1e-3,
            grad_norm: 2.5,
            samples_per_s: 120.0,
        },
        Event::Epoch {
            epoch: 4,
            train_loss: 0.2,
            val_loss: None,
            lr: 9e-4,
            grad_norm: 2.1,
            samples_per_s: 118.0,
        },
        Event::Rollback {
            epoch: 5,
            reason: "loss spike".into(),
            lr_before: 1e-3,
            lr_after: 5e-4,
        },
        Event::CheckpointWrite {
            epoch: 6,
            bytes: 4096,
            write_s: 0.012,
        },
        Event::SimRun {
            events: 100_000,
            events_per_s: 2.0e6,
            packets_generated: 40_000,
            packets_delivered: 39_990,
            packets_dropped: 10,
            heap_high_water: 512,
            wall_s: 0.05,
        },
        Event::DatasetGen {
            topology: "NSFNET".into(),
            samples: 48,
            workers: 8,
            wall_s: 12.5,
            mean_sample_s: 1.9,
            max_sample_s: 3.2,
        },
        Event::DatasetLoad {
            path: "train.jsonl".into(),
            loaded: 47,
            quarantined: 1,
            torn_tail: true,
        },
        Event::Eval {
            scope: "Geant2".into(),
            n: 1200,
            mae: 0.004,
            median_re: 0.11,
            p95_re: 0.4,
            pearson_r: 0.97,
        },
        Event::RunEnd { wall_s: 60.0 },
    ]
}

#[test]
fn every_event_kind_roundtrips_through_serde() {
    for (i, ev) in every_event_kind().into_iter().enumerate() {
        let rec = Record {
            seq: i as u64,
            elapsed_s: 0.5 * i as f64,
            event: ev,
        };
        let json = serde_json::to_string(&rec).expect("serialize");
        let back: Record = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(rec, back, "round-trip mismatch for {json}");
    }
}

#[test]
fn file_sink_writes_parseable_jsonl() {
    let path = std::env::temp_dir().join(format!(
        "rn-obs-test-{}.telemetry.jsonl",
        std::process::id()
    ));
    let tel = Telemetry::to_file("test", "filesink", &path);
    for ev in every_event_kind() {
        tel.emit(ev);
    }
    tel.finish().expect("no sink failures");
    assert_eq!(tel.write_errors(), 0);

    let text = std::fs::read_to_string(&path).expect("log exists");
    let mut kinds = Vec::new();
    let mut prev_seq = None;
    for line in text.lines() {
        let rec: Record = serde_json::from_str(line).expect("each line parses");
        if let Some(p) = prev_seq {
            assert!(rec.seq > p, "seq must strictly increase");
        }
        prev_seq = Some(rec.seq);
        kinds.push(rec.event.kind().to_string());
    }
    // Constructor RunStart + 10 emitted + finish RunEnd.
    assert_eq!(kinds.len(), 12);
    assert_eq!(kinds.first().map(String::as_str), Some("RunStart"));
    assert_eq!(kinds.last().map(String::as_str), Some("RunEnd"));
    for required in ["Epoch", "SimRun", "Rollback", "CheckpointWrite", "Eval"] {
        assert!(kinds.iter().any(|k| k == required), "missing {required}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn sink_failure_is_deferred_not_fatal() {
    // A directory that does not exist: every flush fails, but emit() never
    // panics and finish() reports the failure.
    let tel = Telemetry::to_file("test", "bad", "/nonexistent-dir-rn-obs/t.jsonl");
    tel.emit(Event::RunEnd { wall_s: 0.0 });
    assert!(tel.write_errors() > 0);
    assert!(tel.finish().is_err());
}
