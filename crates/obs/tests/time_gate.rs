//! Integration tests for the `time-gate` binary: a wrapped command is timed
//! under a span, the budget gates the exit code, and the optional telemetry
//! log is a parseable JSONL with the expected markers (the same contract
//! `validate-telemetry` enforces for training/simulation runs).

use routenet_obs::Record;
use std::process::Command;

fn time_gate() -> Command {
    Command::new(env!("CARGO_BIN_EXE_time-gate"))
}

#[test]
fn fast_command_passes_within_budget() {
    let out = time_gate()
        .args(["--budget-s", "30", "--span", "smoke", "--", "true"])
        .output()
        .expect("run time-gate");
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("time-gate: smoke ok in"),
        "digest missing: {stdout}"
    );
    assert!(stdout.contains("budget 30.00s"), "budget missing: {stdout}");
}

#[test]
fn over_budget_command_fails_with_timing_diagnostic() {
    // A 50 ms budget the sleep is guaranteed to blow.
    let out = time_gate()
        .args(["--budget-s", "0.05", "--span", "slow", "--", "sleep", "0.3"])
        .output()
        .expect("run time-gate");
    assert_eq!(out.status.code(), Some(1), "expected the budget exit code");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("slow took") && stderr.contains("over the 0.05s budget"),
        "diagnostic missing: {stderr}"
    );
}

#[test]
fn child_failure_propagates_its_exit_code() {
    let out = time_gate()
        .args(["--budget-s", "30", "--", "sh", "-c", "exit 3"])
        .output()
        .expect("run time-gate");
    assert_eq!(out.status.code(), Some(3), "child exit code not propagated");
}

#[test]
fn missing_budget_is_a_usage_error() {
    let out = time_gate()
        .args(["--", "true"])
        .output()
        .expect("run time-gate");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--budget-s is required"), "{stderr}");
}

#[test]
fn telemetry_log_is_parseable_with_span_and_budget() {
    let dir = std::env::temp_dir().join(format!("time-gate-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let log = dir.join("gate.telemetry.jsonl");
    let out = time_gate()
        .args([
            "--budget-s",
            "30",
            "--span",
            "analyzer-gate",
            "--telemetry",
            log.to_str().expect("utf-8 temp path"),
            "--",
            "true",
        ])
        .output()
        .expect("run time-gate");
    assert!(out.status.success(), "stderr: {:?}", out.stderr);

    // Same shape validate-telemetry checks: every line parses as a Record,
    // seq strictly increases, and the run markers are present.
    let text = std::fs::read_to_string(&log).expect("read telemetry log");
    let mut last_seq = None;
    let mut kinds = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let rec: Record = serde_json::from_str(line).expect("parseable record");
        if let Some(prev) = last_seq {
            assert!(rec.seq > prev, "seq not strictly increasing");
        }
        last_seq = Some(rec.seq);
        kinds.push(rec.event.kind());
    }
    assert!(kinds.contains(&"RunStart"), "kinds: {kinds:?}");
    assert!(kinds.contains(&"RunEnd"), "kinds: {kinds:?}");

    let _ = std::fs::remove_dir_all(&dir);
}
