//! # routenet-obs
//!
//! Zero-dependency observability for the RouteNet suite: a process-wide
//! metrics registry (monotonic counters, gauges, log-spaced histograms),
//! lightweight span timers, and two sinks — a human-readable end-of-run
//! summary table and an append-only JSONL event log written with the same
//! atomic-write discipline as the training checkpoints.
//!
//! ## Design
//!
//! The entry point is [`Telemetry`], a cheaply cloneable handle that is
//! either *disabled* (the default — every operation is a single `Option`
//! check and returns immediately) or backed by a shared recorder. Configs
//! ([`SimConfig`](https://docs.rs) / `TrainConfig`) carry the handle as a
//! `#[serde(skip)]` field so it never leaks into checkpoints or datasets.
//!
//! **Overhead budget**: instrumented hot loops (the simulator event loop,
//! the trainer batch loop) must never call into the registry per event.
//! They aggregate into local scalars and emit a single [`Event`] per run or
//! per epoch; the disabled path costs one branch per run. This keeps the
//! `hot-loop-alloc` analyzer rule (RN103) green.
//!
//! **Durability**: the JSONL sink rewrites the full event log through the
//! canonical atomic writer in `routenet-faults` (temp-file + fsync +
//! rename) on every emitted event (events are epoch- or run-scale, so this
//! is a handful of small writes per run). Readers never observe a torn
//! line; the log only ever grows. Writes go through the injectable IO seam
//! with transient-error retry by default; see [`Telemetry::to_file_with_fs`].
//!
//! **Graceful degradation**: the sink is a pure observer, so its failures
//! must never take the run down. A failed write is counted and deferred to
//! [`Telemetry::finish`]; after [`DEGRADE_THRESHOLD`] *consecutive*
//! failures the sink stops touching the filesystem entirely and counts
//! dropped events instead ([`Telemetry::dropped_events`]). Because each
//! flush rewrites the full log, a later successful write — including the
//! last-gasp flush in `finish()` — recovers every "dropped" event.

use routenet_faults::{atomic_write_with, FsHandle};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Consecutive sink-write failures after which the file sink degrades to
/// dropping events (counted, recoverable by a later full-log flush).
pub const DEGRADE_THRESHOLD: u64 = 3;

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// One structured telemetry event. Serialized externally tagged, one JSON
/// object per line in the `.telemetry.jsonl` log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A run began (always the first event in a log).
    RunStart {
        /// Name of the emitting binary or subsystem.
        bin: String,
        /// Run label (typically derived from the output path).
        run: String,
    },
    /// One accepted training epoch.
    Epoch {
        /// Epoch index (0-based).
        epoch: usize,
        /// Mean training loss over the epoch's batches.
        train_loss: f64,
        /// Validation loss, if a validation set was given.
        val_loss: Option<f64>,
        /// Learning rate the epoch ran with.
        lr: f64,
        /// Mean post-clip global gradient norm over the epoch's batches.
        grad_norm: f64,
        /// Training-set samples processed per wall-clock second.
        samples_per_s: f64,
    },
    /// A divergence-recovery rollback (the epoch was retried).
    Rollback {
        /// Epoch that diverged.
        epoch: usize,
        /// What tripped the detector (display form).
        reason: String,
        /// Learning rate the failed attempt ran with.
        lr_before: f64,
        /// Learning rate after the multiplicative backoff.
        lr_after: f64,
    },
    /// One durable training-state checkpoint write.
    CheckpointWrite {
        /// `epoch_next` of the written state.
        epoch: usize,
        /// Size of the checkpoint file, bytes.
        bytes: u64,
        /// Wall-clock write latency, seconds.
        write_s: f64,
    },
    /// Cost metrics of one discrete-event simulation run.
    SimRun {
        /// Events processed by the event loop.
        events: u64,
        /// Events per wall-clock second.
        events_per_s: f64,
        /// Packets generated over the full horizon.
        packets_generated: u64,
        /// Measured packets delivered end-to-end.
        packets_delivered: u64,
        /// Measured packets dropped at full buffers.
        packets_dropped: u64,
        /// High-water mark of the event heap (peak pending events).
        heap_high_water: usize,
        /// Wall-clock duration of the run, seconds.
        wall_s: f64,
    },
    /// One dataset-generation run (aggregated over workers).
    DatasetGen {
        /// Topology the dataset was generated on.
        topology: String,
        /// Samples generated.
        samples: usize,
        /// Worker threads used.
        workers: usize,
        /// Wall-clock duration, seconds.
        wall_s: f64,
        /// Mean per-sample generation time, seconds.
        mean_sample_s: f64,
        /// Slowest sample, seconds.
        max_sample_s: f64,
    },
    /// One lenient dataset load (quarantine accounting).
    DatasetLoad {
        /// Source path.
        path: String,
        /// Samples loaded successfully.
        loaded: usize,
        /// Lines quarantined as unparseable.
        quarantined: usize,
        /// Whether the final line looked like a torn write.
        torn_tail: bool,
    },
    /// One evaluation-summary emission (e.g. per topology).
    Eval {
        /// Grouping label (topology or dataset name).
        scope: String,
        /// Paired observations evaluated.
        n: usize,
        /// Mean absolute error, seconds.
        mae: f64,
        /// Median relative error.
        median_re: f64,
        /// 95th-percentile relative error.
        p95_re: f64,
        /// Pearson correlation between predictions and truth.
        pearson_r: f64,
    },
    /// End-of-run digest of one serving-daemon session (`routenet-serve`).
    Serve {
        /// Queries accepted into the batching queue.
        queries: u64,
        /// Responses written back to clients (success or typed error).
        responses: u64,
        /// Queries shed because the bounded queue was full.
        shed: u64,
        /// Micro-batches executed through the batched forward pass.
        batches: u64,
        /// Sustained queries per wall-clock second over the session.
        qps: f64,
        /// Median enqueue-to-response latency, seconds.
        p50_latency_s: f64,
        /// 95th-percentile enqueue-to-response latency, seconds.
        p95_latency_s: f64,
        /// Mean micro-batch size (queries per batch).
        mean_batch: f64,
        /// Largest micro-batch executed.
        max_batch: u64,
        /// Wall-clock duration of the serving session, seconds.
        wall_s: f64,
    },
    /// The bounded serve queue entered an overload episode and began
    /// shedding queries (emitted once per episode, not per shed query —
    /// the file sink rewrites the full log per event, so per-query
    /// emission under overload would be quadratic exactly when the daemon
    /// is busiest).
    QueryShed {
        /// Queue occupancy when shedding began (the configured capacity).
        queue_len: usize,
        /// Queries shed so far this session, including this one.
        shed_total: u64,
    },
    /// The run ended (always the last event in a complete log).
    RunEnd {
        /// Total wall-clock duration of the run, seconds.
        wall_s: f64,
    },
}

impl Event {
    /// The variant name — the external tag used in the JSONL encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "RunStart",
            Event::Epoch { .. } => "Epoch",
            Event::Rollback { .. } => "Rollback",
            Event::CheckpointWrite { .. } => "CheckpointWrite",
            Event::SimRun { .. } => "SimRun",
            Event::DatasetGen { .. } => "DatasetGen",
            Event::DatasetLoad { .. } => "DatasetLoad",
            Event::Eval { .. } => "Eval",
            Event::Serve { .. } => "Serve",
            Event::QueryShed { .. } => "QueryShed",
            Event::RunEnd { .. } => "RunEnd",
        }
    }
}

/// The JSONL envelope: a sequence number (strictly increasing within a run),
/// seconds since the run started, and the event payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Emission order, starting at 0.
    pub seq: u64,
    /// Seconds since the telemetry handle was created.
    pub elapsed_s: f64,
    /// The event payload.
    pub event: Event,
}

// ---------------------------------------------------------------------------
// Histogram (the LogHistogram shape from simnet::stats, plus sum/max so the
// summary table can report means without storing observations)
// ---------------------------------------------------------------------------

/// Fixed-memory log-spaced histogram for positive values (durations).
///
/// Same shape as the simulator's per-flow delay histogram: geometric bins
/// between `lo` and `hi`, edge-clamped records, log-space quantile
/// interpolation. Additionally tracks the exact sum and max so summary
/// means are not quantized by the binning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        // 1e-7 s .. 1e4 s covers sub-microsecond spans to multi-hour runs at
        // ~22% relative resolution for 128 bins.
        Histogram::new(1e-7, 1e4, 128)
    }
}

impl Histogram {
    /// Histogram over `[lo, hi]` with `bins` geometric bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo > 0.0 && hi > lo && bins >= 2);
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    /// Record a non-negative observation. Only the *bin index* clamps to
    /// `[lo, hi]`; `sum` and `max` accumulate the observation itself, so
    /// [`Histogram::mean`] and [`Histogram::max`] stay exact even when
    /// observations fall below the bucket floor (clamping them first biased
    /// the reported mean upward). Negative values clamp to zero — durations
    /// cannot be negative, but a caller bug must not corrupt the sum.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let raw = x.max(0.0);
        let clamped = raw.max(self.lo);
        let b = self.counts.len() as f64;
        let t = (clamped / self.lo).ln() / (self.hi / self.lo).ln();
        let i = ((t * b).floor().max(0.0) as usize).min(self.counts.len() - 1);
        if let Some(c) = self.counts.get_mut(i) {
            *c += 1;
        }
        self.total += 1;
        self.sum += raw;
        self.max = self.max.max(raw);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean of the observations, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum / self.total as f64)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.total > 0).then_some(self.max)
    }

    /// `q`-quantile (`0 < q <= 1`), interpolated in log space, or `None`
    /// when empty.
    ///
    /// The top bin doubles as an overflow bucket: observations above `hi`
    /// land there, and a quantile resolving in it interpolates toward the
    /// observed maximum instead of the nominal `hi` edge — previously the
    /// answer was capped at `hi` while `max()` reported the true maximum,
    /// so p95 could sit below values the histogram demonstrably saw. In
    /// every bin the result is clamped to the observed maximum, so
    /// `quantile(q) <= max()` holds for all `q`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(q > 0.0 && q <= 1.0);
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if cum + c >= target {
                let b = self.counts.len() as f64;
                let frac = if c == 0 {
                    0.5
                } else {
                    (target - cum) as f64 / c as f64
                };
                let v = if i + 1 == self.counts.len() && self.max > self.hi {
                    // Overflow fold: interpolate between the top bin's
                    // lower edge and the observed max.
                    let edge = self.lo * (self.hi / self.lo).powf(i as f64 / b);
                    edge * (self.max / edge).powf(frac)
                } else {
                    let t = (i as f64 + frac) / b;
                    self.lo * (self.hi / self.lo).powf(t)
                };
                return Some(v.min(self.max));
            }
            cum += c;
        }
        Some(self.max)
    }
}

/// Point-in-time digest of one named histogram, for tests and tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Exact mean, seconds.
    pub mean: f64,
    /// Median (log-interpolated), seconds.
    pub p50: f64,
    /// 95th percentile (log-interpolated), seconds.
    pub p95: f64,
    /// Largest observation, seconds.
    pub max: f64,
}

// ---------------------------------------------------------------------------
// Recorder internals
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Sink {
    /// Keep records in memory only (tests, probes).
    Memory,
    /// Rewrite the full JSONL log atomically on every emitted event.
    File(PathBuf),
}

#[derive(Debug, Default)]
struct State {
    seq: u64,
    records: Vec<Record>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    write_errors: u64,
    last_error: Option<String>,
    /// Current streak of failed sink writes (reset by any success).
    consecutive_failures: u64,
    /// Events not written to the sink after degradation kicked in.
    dropped_events: u64,
}

impl State {
    /// Degraded: the failure streak reached [`DEGRADE_THRESHOLD`], so sink
    /// writes are skipped and events are counted as dropped instead.
    fn degraded(&self) -> bool {
        self.consecutive_failures >= DEGRADE_THRESHOLD
    }
}

#[derive(Debug)]
struct Inner {
    bin: String,
    run: String,
    start: Instant,
    sink: Sink,
    fs: FsHandle,
    state: Mutex<State>,
}

fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    // Telemetry must never take a run down: a panic while holding the lock
    // (impossible in this module, but cheap to defend against) degrades to
    // using the state as-is rather than poisoning every later metric call.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Telemetry handle
// ---------------------------------------------------------------------------

/// A cheaply cloneable telemetry handle: either disabled (default; every
/// operation is one `Option` check) or backed by a shared recorder that
/// accumulates metrics and streams events to a sink.
///
/// Configs embed a `Telemetry` behind `#[serde(skip)]`, so the handle never
/// reaches checkpoints or dataset files, and two configs differing only in
/// telemetry wiring compare equal (see the [`PartialEq`] impl).
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

/// Telemetry destinations are wiring, not configuration: resume
/// compatibility and config round-trips must not depend on where metrics
/// go, so all handles compare equal.
impl PartialEq for Telemetry {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => write!(f, "Telemetry({}/{})", inner.bin, inner.run),
            None => f.write_str("Telemetry(disabled)"),
        }
    }
}

impl Telemetry {
    /// The no-op handle: every operation returns immediately.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle that keeps records in memory (tests, probes).
    pub fn in_memory(bin: &str, run: &str) -> Self {
        Telemetry::with_sink(bin, run, Sink::Memory, FsHandle::real())
    }

    /// An enabled handle that atomically rewrites the JSONL log at `path`
    /// on every emitted event. Emits [`Event::RunStart`] immediately, so a
    /// crashed run still leaves a parseable marker on disk. Writes go
    /// through the default IO seam (real filesystem with transient-error
    /// retry).
    pub fn to_file(bin: &str, run: &str, path: impl AsRef<Path>) -> Self {
        Telemetry::to_file_with_fs(bin, run, path, FsHandle::default())
    }

    /// [`Telemetry::to_file`] with an explicit IO seam, so chaos tests can
    /// inject sink faults and assert the observer property.
    pub fn to_file_with_fs(bin: &str, run: &str, path: impl AsRef<Path>, fs: FsHandle) -> Self {
        Telemetry::with_sink(bin, run, Sink::File(path.as_ref().to_path_buf()), fs)
    }

    fn with_sink(bin: &str, run: &str, sink: Sink, fs: FsHandle) -> Self {
        let tel = Telemetry {
            inner: Some(Arc::new(Inner {
                bin: bin.to_string(),
                run: run.to_string(),
                start: Instant::now(),
                sink,
                fs,
                state: Mutex::new(State::default()),
            })),
        };
        tel.emit(Event::RunStart {
            bin: bin.to_string(),
            run: run.to_string(),
        });
        tel
    }

    /// True when backed by a recorder. Instrumented hot loops check this
    /// once per run/epoch and aggregate locally in between.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Append one event to the log (and flush it, for file sinks).
    pub fn emit(&self, event: Event) {
        let Some(inner) = &self.inner else { return };
        let mut st = lock(&inner.state);
        let rec = Record {
            seq: st.seq,
            elapsed_s: inner.start.elapsed().as_secs_f64(),
            event,
        };
        st.seq += 1;
        st.records.push(rec);
        if let Sink::File(path) = &inner.sink {
            if st.degraded() {
                // The sink earned a time-out: stop touching the filesystem
                // and count the event as dropped. Recoverable — any later
                // successful full-log flush (e.g. in `finish()`) rewrites
                // every record, including these.
                st.dropped_events += 1;
            } else if let Err(e) = flush_jsonl(&inner.fs, path, &st.records) {
                // Telemetry failures must not fail the run; they surface
                // through `finish()` and the write-error counter instead.
                st.write_errors += 1;
                st.consecutive_failures += 1;
                st.last_error = Some(e.to_string());
            } else {
                st.consecutive_failures = 0;
            }
        }
    }

    /// Add `delta` to the named monotonic counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        let mut st = lock(&inner.state);
        *st.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set the named gauge to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        let mut st = lock(&inner.state);
        st.gauges.insert(name.to_string(), value);
    }

    /// Record a duration (seconds) into the named histogram.
    pub fn observe_s(&self, name: &str, seconds: f64) {
        let Some(inner) = &self.inner else { return };
        let mut st = lock(&inner.state);
        st.histograms
            .entry(name.to_string())
            .or_default()
            .record(seconds);
    }

    /// Start a span timer that records its elapsed seconds into the named
    /// histogram when dropped. Near-free when disabled.
    #[must_use = "a span records on drop; binding it to `_` measures nothing"]
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            tel: self.clone(),
            name,
            start: self.enabled().then(Instant::now),
        }
    }

    /// Current value of a counter (0 if never written or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        match &self.inner {
            Some(inner) => lock(&inner.state).counters.get(name).copied().unwrap_or(0),
            None => 0,
        }
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        let inner = self.inner.as_ref()?;
        let v = lock(&inner.state).gauges.get(name).copied();
        v
    }

    /// Digest of a named histogram.
    pub fn histogram_summary(&self, name: &str) -> Option<HistogramSummary> {
        let inner = self.inner.as_ref()?;
        let st = lock(&inner.state);
        let h = st.histograms.get(name)?;
        Some(HistogramSummary {
            count: h.count(),
            mean: h.mean()?,
            p50: h.quantile(0.5)?,
            p95: h.quantile(0.95)?,
            max: h.max()?,
        })
    }

    /// Snapshot of all emitted records (empty when disabled).
    pub fn records(&self) -> Vec<Record> {
        match &self.inner {
            Some(inner) => lock(&inner.state).records.clone(),
            None => Vec::new(),
        }
    }

    /// Number of failed sink writes so far.
    pub fn write_errors(&self) -> u64 {
        match &self.inner {
            Some(inner) => lock(&inner.state).write_errors,
            None => 0,
        }
    }

    /// Number of events not written to the sink because the handle
    /// degraded after [`DEGRADE_THRESHOLD`] consecutive write failures.
    /// (They remain in memory and in any later successful full-log flush.)
    pub fn dropped_events(&self) -> u64 {
        match &self.inner {
            Some(inner) => lock(&inner.state).dropped_events,
            None => 0,
        }
    }

    /// Human-readable end-of-run summary of the registry and event counts.
    /// Empty string when disabled.
    pub fn summary_table(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let st = lock(&inner.state);
        let mut out = String::new();
        out.push_str(&format!(
            "== telemetry {}/{}: {} events in {:.1}s ==\n",
            inner.bin,
            inner.run,
            st.records.len(),
            inner.start.elapsed().as_secs_f64()
        ));
        if !st.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &st.counters {
                out.push_str(&format!("  {k:<32} {v}\n"));
            }
        }
        if !st.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &st.gauges {
                out.push_str(&format!("  {k:<32} {v:.6}\n"));
            }
        }
        if !st.histograms.is_empty() {
            out.push_str(&format!(
                "timers: {:<26} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                "", "count", "mean_s", "p50_s", "p95_s", "max_s"
            ));
            for (k, h) in &st.histograms {
                out.push_str(&format!(
                    "  {k:<32} {:>8} {:>10.6} {:>10.6} {:>10.6} {:>10.6}\n",
                    h.count(),
                    h.mean().unwrap_or(0.0),
                    h.quantile(0.5).unwrap_or(0.0),
                    h.quantile(0.95).unwrap_or(0.0),
                    h.max().unwrap_or(0.0),
                ));
            }
        }
        out
    }

    /// Emit [`Event::RunEnd`], flush, and report any deferred sink failure
    /// (including how many events were dropped after degradation). Callers
    /// that can print (binaries) should surface the error; library code may
    /// route it into its own error type.
    ///
    /// A degraded file sink gets one last-gasp flush here: because each
    /// flush rewrites the full log, a success at this point recovers every
    /// dropped event on disk (the drop count is still reported).
    #[must_use = "the returned Result carries deferred telemetry write failures"]
    pub fn finish(&self) -> std::io::Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        self.emit(Event::RunEnd {
            wall_s: inner.start.elapsed().as_secs_f64(),
        });
        let mut st = lock(&inner.state);
        let mut recovered = false;
        if st.degraded() {
            if let Sink::File(path) = &inner.sink {
                recovered = flush_jsonl(&inner.fs, path, &st.records).is_ok();
            }
        }
        if recovered {
            st.consecutive_failures = 0;
        }
        match &st.last_error {
            Some(msg) => Err(std::io::Error::other(format!(
                "{} telemetry write(s) failed, {} event(s) dropped after degradation{}; last error: {msg}",
                st.write_errors,
                st.dropped_events,
                if recovered {
                    " (final flush succeeded; log on disk is complete)"
                } else {
                    ""
                },
            ))),
            None => Ok(()),
        }
    }
}

/// A drop-scoped span timer created by [`Telemetry::span`].
#[derive(Debug)]
pub struct Span {
    tel: Telemetry,
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            self.tel.observe_s(self.name, t0.elapsed().as_secs_f64());
        }
    }
}

// ---------------------------------------------------------------------------
// JSONL sink plumbing
// ---------------------------------------------------------------------------

/// Serialize the full record list and rewrite the log atomically through
/// the handle's IO seam. (The former local `atomic_write` copy is gone:
/// `routenet_faults::atomic_write_with` is the single implementation, with
/// collision-free temp names shared by checkpoints and this sink.)
fn flush_jsonl(fs: &FsHandle, path: &Path, records: &[Record]) -> std::io::Result<()> {
    let mut buf = String::new();
    for r in records {
        let line = serde_json::to_string(r).map_err(std::io::Error::other)?;
        buf.push_str(&line);
        buf.push('\n');
    }
    atomic_write_with(fs.fs(), path, buf.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.enabled());
        tel.counter_add("x", 3);
        tel.gauge_set("g", 1.0);
        tel.observe_s("h", 0.5);
        tel.emit(Event::RunEnd { wall_s: 0.0 });
        drop(tel.span("s"));
        assert_eq!(tel.counter("x"), 0);
        assert!(tel.gauge("g").is_none());
        assert!(tel.records().is_empty());
        assert!(tel.summary_table().is_empty());
        assert!(tel.finish().is_ok());
    }

    #[test]
    fn registry_accumulates() {
        let tel = Telemetry::in_memory("test", "r");
        tel.counter_add("pkts", 2);
        tel.counter_add("pkts", 3);
        tel.gauge_set("lr", 0.1);
        tel.gauge_set("lr", 0.05);
        for v in [0.1, 0.2, 0.4] {
            tel.observe_s("lat", v);
        }
        assert_eq!(tel.counter("pkts"), 5);
        assert_eq!(tel.gauge("lr"), Some(0.05));
        let h = tel.histogram_summary("lat").unwrap();
        assert_eq!(h.count, 3);
        assert!((h.mean - 0.2333).abs() < 1e-3);
        assert!(h.max >= 0.4 && h.p50 > 0.0 && h.p95 > 0.0);
        let table = tel.summary_table();
        assert!(table.contains("pkts") && table.contains("lr") && table.contains("lat"));
    }

    #[test]
    fn seq_is_strictly_increasing_and_starts_with_runstart() {
        let tel = Telemetry::in_memory("test", "r");
        tel.emit(Event::RunEnd { wall_s: 1.0 });
        let recs = tel.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].event.kind(), "RunStart");
        assert!(recs.windows(2).all(|w| w[1].seq == w[0].seq + 1));
    }

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let mut h = Histogram::default();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3); // 1ms .. 1s
        }
        let p50 = h.quantile(0.5).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        // ~22% bin resolution: generous brackets.
        assert!((0.3..0.8).contains(&p50), "p50 {p50}");
        assert!((0.7..1.3).contains(&p95), "p95 {p95}");
        assert!((h.mean().unwrap() - 0.5005).abs() < 1e-9);
        assert_eq!(h.max(), Some(1.0));
    }

    #[test]
    fn histogram_mean_and_max_use_raw_sub_lo_values() {
        let mut h = Histogram::new(1e-3, 1.0, 16);
        h.record(1e-6);
        h.record(1e-6);
        h.record(2e-3);
        // Regression: clamping to `lo` before summing reported a mean of
        // (1e-3 + 1e-3 + 2e-3)/3 here — biased upward by the bucket floor.
        let want = (1e-6 + 1e-6 + 2e-3) / 3.0;
        assert!(
            (h.mean().unwrap() - want).abs() < 1e-15,
            "mean {} want {want}",
            h.mean().unwrap()
        );
        assert_eq!(h.max(), Some(2e-3));
        // Negative observations clamp to zero instead of corrupting the sum.
        h.record(-5.0);
        assert_eq!(h.count(), 4);
        assert!((h.mean().unwrap() - want * 3.0 / 4.0).abs() < 1e-15);
    }

    #[test]
    fn histogram_quantile_folds_overflow_toward_observed_max() {
        let mut h = Histogram::new(1e-3, 1.0, 16);
        for _ in 0..100 {
            h.record(5.0); // every observation above `hi`
        }
        let p95 = h.quantile(0.95).unwrap();
        // Regression: the old edge interpolation capped this at hi = 1.0,
        // below a value the histogram saw 100 times.
        assert!(p95 > 1.0, "p95 {p95} stuck at hi");
        assert!(p95 <= 5.0, "p95 {p95} above observed max");
        // A single sub-`lo` observation: the quantile is the observation.
        let mut l = Histogram::new(1e-3, 1.0, 16);
        l.record(1e-7);
        assert_eq!(l.quantile(0.95), Some(1e-7));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn histogram_quantile_never_exceeds_max(
            n in 1usize..64,
            seed in 0u64..1_000_000,
            q in 0.01f64..=1.0,
        ) {
            let mut h = Histogram::new(1e-3, 1.0, 16);
            // Log-uniform samples spanning well below `lo` and above `hi`,
            // from an inline LCG (the vendored proptest has no vector
            // strategies).
            let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            for _ in 0..n {
                state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                let u = (state >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
                h.record(10f64.powf(-7.0 + 10.0 * u)); // 1e-7 .. 1e3
            }
            let max = h.max().unwrap();
            let v = h.quantile(q).unwrap();
            prop_assert!(v <= max, "quantile({q}) = {v} > max = {max}");
        }
    }

    #[test]
    fn span_records_elapsed_time() {
        let tel = Telemetry::in_memory("test", "r");
        {
            let _guard = tel.span("work");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let h = tel.histogram_summary("work").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.max >= 0.004, "span recorded {}", h.max);
    }

    #[test]
    fn telemetry_compares_equal_regardless_of_wiring() {
        assert_eq!(Telemetry::disabled(), Telemetry::in_memory("a", "b"));
    }

    #[test]
    fn file_sink_writes_jsonl_through_seam() {
        let dir = std::env::temp_dir().join(format!("rn-obs-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.telemetry.jsonl");
        let tel = Telemetry::to_file("test", "r", &path);
        tel.emit(Event::RunEnd { wall_s: 0.1 });
        assert_eq!(tel.write_errors(), 0);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("RunStart") && lines[1].contains("RunEnd"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sink_degrades_after_consecutive_failures_and_counts_drops() {
        use routenet_faults::{FaultKind, FaultPlan, FaultRule, OpKind};
        let dir = std::env::temp_dir().join(format!("rn-obs-degrade-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.telemetry.jsonl");
        // Every create fails with EIO: the sink can never write.
        let plan = FaultPlan::new().rule(FaultRule::every(1, FaultKind::Eio).on_op(OpKind::Create));
        let (fs, _plan) = FsHandle::faulty(plan);
        let tel = Telemetry::to_file_with_fs("test", "r", &path, fs);
        // RunStart already burned one failure; push past the threshold.
        for i in 0..5 {
            tel.emit(Event::Eval {
                scope: format!("s{i}"),
                n: 1,
                mae: 0.0,
                median_re: 0.0,
                p95_re: 0.0,
                pearson_r: 1.0,
            });
        }
        assert_eq!(tel.write_errors(), DEGRADE_THRESHOLD);
        // 6 events total, 3 failed writes, the rest dropped.
        assert_eq!(tel.dropped_events(), 6 - DEGRADE_THRESHOLD);
        // All events are still in memory: the registry is unaffected.
        assert_eq!(tel.records().len(), 6);
        let err = tel.finish().expect_err("deferred failure must surface");
        let msg = err.to_string();
        assert!(msg.contains("3 telemetry write(s) failed"), "{msg}");
        assert!(msg.contains("4 event(s) dropped"), "{msg}");
        assert!(!path.exists(), "no partial log may appear");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sink_failure_streak_resets_on_success() {
        use routenet_faults::{FaultKind, FaultPlan, FaultRule, OpKind};
        let dir = std::env::temp_dir().join(format!("rn-obs-streak-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.telemetry.jsonl");
        // Fail writes 2 and 3 only: a success in between any longer streak
        // must keep the sink out of degradation.
        let plan = FaultPlan::new()
            .rule(FaultRule::nth(2, FaultKind::Eio).on_op(OpKind::Create))
            .rule(FaultRule::nth(3, FaultKind::Eio).on_op(OpKind::Create));
        let (fs, _plan) = FsHandle::faulty(plan);
        let tel = Telemetry::to_file_with_fs("test", "r", &path, fs);
        for _ in 0..5 {
            tel.emit(Event::RunEnd { wall_s: 0.0 });
        }
        assert_eq!(tel.write_errors(), 2);
        assert_eq!(tel.dropped_events(), 0, "streak of 2 must not degrade");
        // The last successful flush rewrote the full log: nothing lost.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn degraded_sink_recovers_in_final_flush() {
        use routenet_faults::{FaultKind, FaultPlan, FaultRule, OpKind, Trigger};
        let dir = std::env::temp_dir().join(format!("rn-obs-recover-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.telemetry.jsonl");
        // Exactly three failures (the threshold), then the disk heals.
        let plan = FaultPlan::new()
            .rule(FaultRule {
                op: Some(OpKind::Create),
                path_contains: None,
                trigger: Trigger::Nth(1),
                kind: FaultKind::Eio,
            })
            .rule(FaultRule {
                op: Some(OpKind::Create),
                path_contains: None,
                trigger: Trigger::Nth(2),
                kind: FaultKind::Eio,
            })
            .rule(FaultRule {
                op: Some(OpKind::Create),
                path_contains: None,
                trigger: Trigger::Nth(3),
                kind: FaultKind::Eio,
            });
        let (fs, _plan) = FsHandle::faulty(plan);
        let tel = Telemetry::to_file_with_fs("test", "r", &path, fs);
        tel.emit(Event::RunEnd { wall_s: 0.0 }); // failure 2
        tel.emit(Event::RunEnd { wall_s: 0.0 }); // failure 3 -> degraded
        tel.emit(Event::RunEnd { wall_s: 0.0 }); // dropped
        assert_eq!(tel.dropped_events(), 1);
        let err = tel.finish().expect_err("failures still surface");
        assert!(err.to_string().contains("final flush succeeded"), "{err}");
        // The last-gasp flush recovered the complete log, drops included.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }
}
