//! Validate a `.telemetry.jsonl` event log: every line must parse as a
//! [`routenet_obs::Record`], sequence numbers must be strictly increasing,
//! and (optionally) a required set of event kinds must be present.
//!
//! ```text
//! validate-telemetry <log.jsonl> [--require RunStart,Epoch,RunEnd]
//! ```
//!
//! Exits 0 and prints a one-line digest on success; exits 1 with a
//! diagnostic on the first violation. Used by `scripts/check.sh` as the
//! telemetry smoke gate.

use routenet_obs::Record;
use std::collections::BTreeMap;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<&str> = None;
    let mut require: Vec<String> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--require" => {
                let Some(list) = argv.get(i + 1) else {
                    eprintln!("--require needs a comma-separated kind list");
                    std::process::exit(2);
                };
                require.extend(list.split(',').map(|s| s.trim().to_string()));
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}");
                std::process::exit(2);
            }
            p => {
                path = Some(p);
                i += 1;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: validate-telemetry <log.jsonl> [--require Kind1,Kind2]");
        std::process::exit(2);
    };

    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("{path}: cannot read: {e}");
        std::process::exit(1);
    });

    let mut kinds: BTreeMap<String, usize> = BTreeMap::new();
    let mut last_seq: Option<u64> = None;
    let mut n = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec: Record = serde_json::from_str(line).unwrap_or_else(|e| {
            eprintln!("{path}:{}: unparseable record: {e}", lineno + 1);
            std::process::exit(1);
        });
        if let Some(prev) = last_seq {
            if rec.seq <= prev {
                eprintln!(
                    "{path}:{}: seq {} not strictly increasing (prev {prev})",
                    lineno + 1,
                    rec.seq
                );
                std::process::exit(1);
            }
        }
        last_seq = Some(rec.seq);
        *kinds.entry(rec.event.kind().to_string()).or_insert(0) += 1;
        n += 1;
    }
    if n == 0 {
        eprintln!("{path}: no telemetry records");
        std::process::exit(1);
    }
    for k in &require {
        if !kinds.contains_key(k) {
            eprintln!(
                "{path}: missing required event kind {k} (present: {})",
                kinds.keys().cloned().collect::<Vec<_>>().join(",")
            );
            std::process::exit(1);
        }
    }
    let digest: Vec<String> = kinds.iter().map(|(k, c)| format!("{k}={c}")).collect();
    println!("ok: {path}: {n} records ({})", digest.join(" "));
}
