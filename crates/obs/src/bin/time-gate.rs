//! Run a command under a [`routenet_obs::Telemetry`] span timer and fail if
//! its wall-clock time exceeds a budget.
//!
//! ```text
//! time-gate --budget-s SECONDS [--span NAME] [--telemetry FILE] -- CMD [ARGS...]
//! ```
//!
//! The child's stdout/stderr pass through untouched. On success prints a
//! one-line digest with the measured seconds and the budget. Exit codes:
//! the child's own code if it fails, 1 if the child succeeded but blew the
//! budget, 2 on usage errors.
//!
//! `scripts/check.sh` wraps the analyzer gate with this so the static-analysis
//! pass stays fast as rule families grow: a new rule that regresses the scan
//! past the budget fails CI with a timing diagnostic instead of silently
//! taxing every pre-commit loop.

use routenet_obs::Telemetry;
use std::process::Command;

struct Args {
    budget_s: f64,
    span: String,
    telemetry: Option<String>,
    cmd: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut budget_s: Option<f64> = None;
    let mut span = "gated-command".to_string();
    let mut telemetry: Option<String> = None;
    let mut cmd: Vec<String> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--budget-s" => {
                let v = argv
                    .get(i + 1)
                    .ok_or("--budget-s needs a seconds argument")?;
                let parsed: f64 = v
                    .parse()
                    .map_err(|e| format!("--budget-s {v}: not a number: {e}"))?;
                let valid = parsed.is_finite() && parsed > 0.0;
                if !valid {
                    return Err(format!("--budget-s {v}: budget must be positive"));
                }
                budget_s = Some(parsed);
                i += 2;
            }
            "--span" => {
                span = argv
                    .get(i + 1)
                    .ok_or("--span needs a name argument")?
                    .clone();
                i += 2;
            }
            "--telemetry" => {
                telemetry = Some(
                    argv.get(i + 1)
                        .ok_or("--telemetry needs a file argument")?
                        .clone(),
                );
                i += 2;
            }
            "--" => {
                cmd.extend(argv[i + 1..].iter().cloned());
                break;
            }
            flag => {
                return Err(format!("unknown argument {flag} (command goes after --)"));
            }
        }
    }
    let budget_s = budget_s.ok_or("--budget-s is required")?;
    if cmd.is_empty() {
        return Err("no command: pass it after --".to_string());
    }
    Ok(Args {
        budget_s,
        span,
        telemetry,
        cmd,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: time-gate --budget-s SECONDS [--span NAME] [--telemetry FILE] -- CMD [ARGS...]"
            );
            std::process::exit(2);
        }
    };

    let tel = match &args.telemetry {
        Some(path) => Telemetry::to_file("time-gate", &args.span, path),
        None => Telemetry::in_memory("time-gate", &args.span),
    };

    // The span name must outlive the handle; leak the small string rather
    // than threading a lifetime through Telemetry::span's &'static contract.
    let span_name: &'static str = Box::leak(args.span.clone().into_boxed_str());
    let status = {
        let _guard = tel.span(span_name);
        Command::new(&args.cmd[0]).args(&args.cmd[1..]).status()
    };

    let elapsed_s = tel
        .histogram_summary(span_name)
        .and_then(|h| if h.count > 0 { Some(h.max) } else { None })
        .unwrap_or(0.0);
    tel.gauge_set("budget_s", args.budget_s);
    if let Err(e) = tel.finish() {
        eprintln!("time-gate: telemetry sink error (non-fatal): {e}");
    }

    let status = match status {
        Ok(s) => s,
        Err(e) => {
            eprintln!("time-gate: cannot run {}: {e}", args.cmd[0]);
            std::process::exit(2);
        }
    };
    if !status.success() {
        let code = status.code().unwrap_or(1);
        eprintln!("time-gate: {} failed with exit code {code}", args.cmd[0]);
        std::process::exit(code);
    }
    if elapsed_s > args.budget_s {
        eprintln!(
            "time-gate: {span_name} took {elapsed_s:.2}s, over the {:.2}s budget",
            args.budget_s
        );
        std::process::exit(1);
    }
    println!(
        "time-gate: {span_name} ok in {elapsed_s:.2}s (budget {:.2}s)",
        args.budget_s
    );
}
