//! RN2xx concurrency/determinism rules, built on [`crate::callgraph`].
//!
//! The repo's two load-bearing guarantees — bit-identical resume (training)
//! and byte-identical dataset generation — are exactly what naive
//! parallelism breaks: thread-order-dependent float reduction and shared RNG
//! streams produce runs that differ under identical seeds. These rules
//! police the blessed pattern instead (see DESIGN.md "Parallelism safety
//! contract"): deterministic strided work assignment, per-worker result
//! slots reduced sequentially in worker order, and per-worker RNG streams
//! derived from explicit seeds.
//!
//! | rule | id | flags |
//! |------|----|-------|
//! | `parallel-shared-mut`    | RN201 | mutation of a captured binding inside a `scope.spawn` closure without a sync primitive or indexed write-slot |
//! | `parallel-float-reduce`  | RN202 | accumulation into a shared `Mutex`/atomic inside a spawn body — reduction order then depends on scheduling |
//! | `parallel-rng`           | RN203 | RNG use inside a spawn body unless the stream is derived per-worker (`seed_from_u64` & co.), directly or through calls |
//! | `hot-loop-lock`          | RN204 | lock acquisition inside a hot loop ([`crate::ALLOC_HOT_PATHS`] files), directly or through calls |
//! | `relaxed-publish`        | RN205 | `Ordering::Relaxed` used to publish data (`store`/`compare_exchange`) rather than count (`fetch_add`/`load`) |

use crate::callgraph::{is_compound_assign, CallGraph, RNG_METHODS, RNG_SEEDERS};
use crate::lexer::{Token, TokenKind};
use crate::parse::{self, Parsed};
use crate::rules::{skip_balanced, Diagnostic, RuleSet};

/// Methods that mutate their receiver in place.
const MUTATION_METHODS: &[&str] = &[
    "push",
    "push_str",
    "insert",
    "remove",
    "extend",
    "clear",
    "append",
    "truncate",
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "shuffle",
];

/// Method calls that hand a value to a synchronization primitive: the write
/// is ordered by the primitive, not by the race.
const SYNC_METHODS: &[&str] = &[
    "send",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "lock",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
];

/// One `scope.spawn(..)` argument span: `tokens[open..close]` including the
/// parens.
struct SpawnRegion {
    open: usize,
    close: usize,
}

/// Run every enabled RN2xx pass over one file.
pub(crate) fn concurrency_rules(
    file: &str,
    tokens: &[Token],
    parsed: &Parsed,
    graph: Option<&CallGraph>,
    rules: RuleSet,
    out: &mut Vec<Diagnostic>,
) {
    if rules.concurrency {
        for region in spawn_regions(tokens) {
            let inside = declared_inside(tokens, &region);
            shared_mut_rule(file, tokens, &region, &inside, out);
            float_reduce_rule(file, tokens, &region, out);
            parallel_rng_rule(file, tokens, &region, &inside, graph, out);
        }
        relaxed_publish_rule(file, tokens, out);
    }
    if rules.hot_loop_lock {
        hot_loop_lock_rule(file, tokens, parsed, graph, out);
    }
}

/// Every `.spawn(..)` call's argument span.
fn spawn_regions(tokens: &[Token]) -> Vec<SpawnRegion> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::Ident
            && t.text == "spawn"
            && i > 0
            && tokens[i - 1].text == "."
            && matches!(tokens.get(i + 1), Some(p) if p.text == "(")
        {
            out.push(SpawnRegion {
                open: i + 1,
                close: skip_balanced(tokens, i + 1, "(", ")"),
            });
        }
    }
    out
}

/// Names bound *inside* the spawn region: closure parameters, `let`
/// patterns, and `for` loop variables. Mutating these is worker-local.
fn declared_inside(tokens: &[Token], region: &SpawnRegion) -> Vec<String> {
    let mut names = Vec::new();
    let mut push = |n: &str| {
        if !names.iter().any(|x: &String| x == n) {
            names.push(n.to_string());
        }
    };
    let mut i = region.open;
    while i < region.close.min(tokens.len()) {
        let t = &tokens[i];
        // Closure parameter list: `|a, b|` after `(`, `,`, `move`, or `=`.
        if t.text == "|" {
            let starts_closure = i
                .checked_sub(1)
                .and_then(|p| tokens.get(p))
                .is_some_and(|p| matches!(p.text.as_str(), "(" | "," | "move" | "=" | "{" | ";"));
            if starts_closure {
                let mut j = i + 1;
                while j < region.close.min(tokens.len()) && tokens[j].text != "|" {
                    if tokens[j].kind == TokenKind::Ident {
                        push(&tokens[j].text);
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
        }
        // `let <pattern> =` / `let <pattern>;` — every identifier in the
        // pattern is a local binding (type ascriptions add type names too;
        // extra names only make the rule more conservative).
        if t.kind == TokenKind::Ident && t.text == "let" {
            let mut j = i + 1;
            while j < region.close.min(tokens.len()) {
                match tokens[j].text.as_str() {
                    "=" | ";" => break,
                    _ => {
                        if tokens[j].kind == TokenKind::Ident {
                            push(&tokens[j].text);
                        }
                    }
                }
                j += 1;
            }
            i = j;
            continue;
        }
        // `for <pattern> in ..`
        if t.kind == TokenKind::Ident && t.text == "for" {
            let mut j = i + 1;
            while j < region.close.min(tokens.len()) {
                let tj = &tokens[j];
                if tj.kind == TokenKind::Ident && tj.text == "in" {
                    break;
                }
                if tj.kind == TokenKind::Ident {
                    push(&tj.text);
                }
                j += 1;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    names
}

/// Token index of the start of the statement containing `i` within the
/// region (just after the previous `;`/`{`/`}` or the region open).
fn statement_start(tokens: &[Token], region: &SpawnRegion, i: usize) -> usize {
    let mut s = i;
    while s > region.open + 1 {
        match tokens[s - 1].text.as_str() {
            ";" | "{" | "}" => break,
            _ => s -= 1,
        }
    }
    s
}

/// Token index just past the end of the statement containing `i`.
fn statement_end(tokens: &[Token], region: &SpawnRegion, i: usize) -> usize {
    let mut j = i;
    let mut depth = 0i32;
    while j < region.close.min(tokens.len()) {
        match tokens[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            ";" if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Does the statement slice call one of `methods`?
fn statement_calls(tokens: &[Token], start: usize, end: usize, methods: &[&str]) -> bool {
    tokens[start..end.min(tokens.len())].windows(3).any(|w| {
        w[0].text == "."
            && w[1].kind == TokenKind::Ident
            && methods.contains(&w[1].text.as_str())
            && w[2].text == "("
    })
}

/// Root identifier of the lvalue ending just before token `i` (an `=` or
/// compound-assign operator, or the `.` of a method call). Walks back over
/// `a.b`, `a::b`, and one `*` deref. Returns `None` when the receiver is an
/// expression (`f().x = ..`) — conservative: expression receivers are local
/// temporaries more often than captured state.
fn lvalue_root(tokens: &[Token], region: &SpawnRegion, i: usize) -> Option<String> {
    let mut j = i;
    while j > region.open + 1 {
        let p = &tokens[j - 1];
        if p.kind == TokenKind::Ident || p.text == "." || p.text == "::" {
            j -= 1;
        } else if p.text == "]" {
            // Walk back over an index expression to its opening `[`.
            let mut depth = 0i32;
            let mut k = j - 1;
            loop {
                match tokens[k].text.as_str() {
                    "]" => depth += 1,
                    "[" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if k == 0 {
                    return None;
                }
                k -= 1;
            }
            j = k;
        } else if p.text == ")" {
            return None;
        } else {
            break;
        }
    }
    tokens
        .get(j)
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.clone())
}

/// Is the assignment ending at `i` an indexed write (`root[idx] = ..`)
/// whose index mentions an inside-declared binding? That is the blessed
/// write-slot form: each worker owns a disjoint slot set keyed by its
/// worker-local index.
fn is_indexed_write_slot(
    tokens: &[Token],
    region: &SpawnRegion,
    i: usize,
    inside: &[String],
) -> bool {
    // The token just before the assignment operator must be `]`.
    if !matches!(i.checked_sub(1).and_then(|p| tokens.get(p)), Some(t) if t.text == "]") {
        return false;
    }
    // Find the matching `[` and scan the index expression.
    let mut depth = 0i32;
    let mut k = i - 1;
    loop {
        match tokens[k].text.as_str() {
            "]" => depth += 1,
            "[" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if k == region.open {
            return false;
        }
        k -= 1;
    }
    tokens[k + 1..i - 1]
        .iter()
        .any(|t| t.kind == TokenKind::Ident && inside.iter().any(|n| n == &t.text))
}

/// RN201: mutation of a captured binding inside a spawn body.
fn shared_mut_rule(
    file: &str,
    tokens: &[Token],
    region: &SpawnRegion,
    inside: &[String],
    out: &mut Vec<Diagnostic>,
) {
    let end = region.close.min(tokens.len());
    for i in region.open + 1..end {
        let t = &tokens[i];
        let is_assign = t.text == "=" || is_compound_assign(&t.text);
        let is_mut_method = t.kind == TokenKind::Ident
            && MUTATION_METHODS.contains(&t.text.as_str())
            && i > 0
            && tokens[i - 1].text == "."
            && matches!(tokens.get(i + 1), Some(p) if p.text == "(");
        if !is_assign && !is_mut_method {
            continue;
        }
        let start = statement_start(tokens, region, i);
        // `let` statements declare, they do not mutate shared state.
        if is_assign && tokens[start].text == "let" {
            continue;
        }
        let stmt_end = statement_end(tokens, region, i);
        // A statement that routes the value through a sync primitive is
        // ordered by that primitive (RN202 separately audits float
        // accumulation under locks).
        if statement_calls(tokens, start, stmt_end, SYNC_METHODS) {
            continue;
        }
        let root_at = if is_assign { i } else { i - 1 };
        let Some(root) = lvalue_root(tokens, region, root_at) else {
            continue;
        };
        if inside.iter().any(|n| n == &root) {
            continue;
        }
        if is_assign && is_indexed_write_slot(tokens, region, i, inside) {
            continue;
        }
        out.push(Diagnostic::new(
            "parallel-shared-mut",
            file,
            t.line,
            format!(
                "`{root}` is captured by a scope.spawn closure and mutated without a sync primitive or indexed write-slot — racing writes make the result schedule-dependent; return per-worker values through the join handle and reduce sequentially"
            ),
        ));
    }
}

/// RN202: order-dependent parallel float reduction — accumulating into a
/// shared `Mutex` or atomic inside a spawn body. Float addition is not
/// associative, so the reduction order (here: lock-acquisition order) must
/// not depend on thread scheduling.
fn float_reduce_rule(
    file: &str,
    tokens: &[Token],
    region: &SpawnRegion,
    out: &mut Vec<Diagnostic>,
) {
    let end = region.close.min(tokens.len());
    let mut flagged: Vec<u32> = Vec::new();
    for i in region.open + 1..end {
        let t = &tokens[i];
        if is_compound_assign(&t.text) {
            let start = statement_start(tokens, region, i);
            let stmt_end = statement_end(tokens, region, i);
            if statement_calls(tokens, start, stmt_end, &["lock"]) && !flagged.contains(&t.line) {
                flagged.push(t.line);
                out.push(Diagnostic::new(
                    "parallel-float-reduce",
                    file,
                    t.line,
                    "accumulating into a shared Mutex inside a spawn body — lock-acquisition order depends on scheduling, so float reduction is not reproducible; accumulate into per-worker slots and reduce sequentially in worker order".to_string(),
                ));
            }
        }
        // Atomic-float CAS loop: `fetch_update`/`compare_exchange` combined
        // with `to_bits`/`from_bits` — the classic shared float accumulator.
        if t.kind == TokenKind::Ident
            && (t.text == "fetch_update" || t.text.starts_with("compare_exchange"))
            && i > 0
            && tokens[i - 1].text == "."
        {
            let start = statement_start(tokens, region, i);
            let stmt_end = statement_end(tokens, region, i);
            let has_bits = tokens[start..stmt_end.min(tokens.len())]
                .iter()
                .any(|b| b.text == "to_bits" || b.text == "from_bits");
            if has_bits && !flagged.contains(&t.line) {
                flagged.push(t.line);
                out.push(Diagnostic::new(
                    "parallel-float-reduce",
                    file,
                    t.line,
                    "atomic CAS on float bits inside a spawn body — update order depends on scheduling, so float reduction is not reproducible; accumulate into per-worker slots and reduce sequentially in worker order".to_string(),
                ));
            }
        }
    }
}

/// RN203: RNG use inside a spawn body unless drawn from a per-worker
/// derived stream.
fn parallel_rng_rule(
    file: &str,
    tokens: &[Token],
    region: &SpawnRegion,
    inside: &[String],
    graph: Option<&CallGraph>,
    out: &mut Vec<Diagnostic>,
) {
    let end = region.close.min(tokens.len());
    let region_seeds = tokens[region.open..end]
        .iter()
        .any(|t| t.kind == TokenKind::Ident && RNG_SEEDERS.contains(&t.text.as_str()));
    let mut flagged: Vec<u32> = Vec::new();
    let mut flag = |line: u32, msg: String, out: &mut Vec<Diagnostic>| {
        if !flagged.contains(&line) {
            flagged.push(line);
            out.push(Diagnostic::new("parallel-rng", file, line, msg));
        }
    };
    for i in region.open + 1..end {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let is_method =
            tokens[i - 1].text == "." && matches!(tokens.get(i + 1), Some(p) if p.text == "(");
        // Direct draw: `<recv>.gen_range(..)` & co. Blessed only when the
        // receiver is a worker-local binding seeded inside the region.
        if is_method && RNG_METHODS.contains(&t.text.as_str()) {
            let root = lvalue_root(tokens, region, i - 1);
            let local_seeded =
                region_seeds && root.as_ref().is_some_and(|r| inside.iter().any(|n| n == r));
            if !local_seeded {
                flag(
                    t.line,
                    format!(
                        ".{}() inside a spawn body draws from a shared RNG stream — the draw order depends on scheduling; derive a per-worker stream with seed_from_u64 inside the closure",
                        t.text
                    ),
                    out,
                );
            }
            continue;
        }
        // Transitive draw: a call to a function whose chain reaches an RNG
        // it did not seed itself.
        if let Some(g) = graph {
            let is_call =
                matches!(tokens.get(i + 1), Some(p) if p.text == "(") && tokens[i - 1].text != "fn";
            if is_call {
                let name = if tokens[i - 1].text == "::" {
                    i.checked_sub(2)
                        .and_then(|p| tokens.get(p))
                        .filter(|q| q.kind == TokenKind::Ident)
                        .map_or_else(|| t.text.clone(), |q| format!("{}::{}", q.text, t.text))
                } else {
                    t.text.clone()
                };
                if g.rng_hazard(&name) {
                    flag(
                        t.line,
                        format!(
                            "{name}(..) draws from an RNG stream it did not derive (callgraph: transitive RNG use without seed_from_u64) — inside a spawn body the draw order depends on scheduling; pass a per-worker derived stream or seed inside the callee"
                        ),
                        out,
                    );
                }
            }
        }
    }
}

/// RN204: lock acquisition inside a hot loop — every iteration serializes
/// on the lock, and the kernel files are exactly where that throughput
/// cliff matters.
fn hot_loop_lock_rule(
    file: &str,
    tokens: &[Token],
    parsed: &Parsed,
    graph: Option<&CallGraph>,
    out: &mut Vec<Diagnostic>,
) {
    let mut flagged: Vec<u32> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || !parse::in_ranges(i, &parsed.loop_ranges) {
            continue;
        }
        let is_method = i > 0
            && tokens[i - 1].text == "."
            && matches!(tokens.get(i + 1), Some(p) if p.text == "(");
        if is_method && t.text == "lock" && !flagged.contains(&t.line) {
            flagged.push(t.line);
            out.push(Diagnostic::new(
                "hot-loop-lock",
                file,
                t.line,
                ".lock() inside a hot loop serializes every iteration — hoist the acquisition out of the loop, use per-worker state, or justify with `// lint: allow(hot-loop-lock, reason = \"...\")`".to_string(),
            ));
            continue;
        }
        // Transitive: a call whose chain acquires a lock.
        if let Some(g) = graph {
            let is_call = matches!(tokens.get(i + 1), Some(p) if p.text == "(")
                && (i == 0 || tokens[i - 1].text != "fn")
                && (i == 0 || tokens[i - 1].text != ".");
            if is_call && g.lock_effect(&t.text) && !flagged.contains(&t.line) {
                flagged.push(t.line);
                out.push(Diagnostic::new(
                    "hot-loop-lock",
                    file,
                    t.line,
                    format!(
                        "{}(..) acquires a lock (callgraph: transitive .lock()) inside a hot loop — every iteration serializes; hoist the acquisition or restructure",
                        t.text
                    ),
                ));
            }
        }
    }
}

/// RN205: `Ordering::Relaxed` on a publishing operation. Relaxed is the
/// right ordering for counters (`fetch_add`, `load`), but a relaxed
/// `store`/`compare_exchange` publishes data with no happens-before edge —
/// readers may observe the flag without the data it guards.
fn relaxed_publish_rule(file: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let publishes = t.text == "store"
            || t.text == "compare_exchange"
            || t.text == "compare_exchange_weak"
            || t.text == "fetch_update";
        if !publishes
            || i == 0
            || tokens[i - 1].text != "."
            || !matches!(tokens.get(i + 1), Some(p) if p.text == "(")
        {
            continue;
        }
        let args_end = skip_balanced(tokens, i + 1, "(", ")");
        let relaxed = tokens[i + 1..args_end.min(tokens.len())]
            .iter()
            .any(|a| a.kind == TokenKind::Ident && a.text == "Relaxed");
        if relaxed {
            out.push(Diagnostic::new(
                "relaxed-publish",
                file,
                t.line,
                format!(
                    ".{}(.., Ordering::Relaxed) publishes data without a happens-before edge — readers can observe the write out of order; use Release/Acquire (or SeqCst) for publication, Relaxed only for counters",
                    t.text
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::{analyze_source, RuleSet};

    /// RN2xx findings only — RuleSet::all() also runs the core rules, and
    /// e.g. bare indexing in a blessed write-slot snippet is `panic`-rule
    /// territory, not a concurrency regression.
    fn run(src: &str) -> Vec<(&'static str, u32)> {
        analyze_source("test.rs", src, RuleSet::all())
            .diagnostics
            .into_iter()
            .filter(|d| d.id().starts_with("RN2") || d.rule == "hot-loop-lock")
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn captured_mutation_in_spawn_flagged() {
        let src = "fn f(scope: &S, items: &[f64]) {\n\
                       let mut total = 0.0;\n\
                       scope.spawn(move |_| {\n\
                           total += 1.0;\n\
                       });\n\
                   }";
        assert_eq!(run(src), vec![("parallel-shared-mut", 4)]);
    }

    #[test]
    fn worker_local_mutation_not_flagged() {
        let src = "fn f(scope: &S, n: usize, w: usize) {\n\
                       scope.spawn(move |_| {\n\
                           let mut part = Vec::with_capacity(n);\n\
                           let mut k = w;\n\
                           while k < n {\n\
                               part.push(k);\n\
                               k += 1;\n\
                           }\n\
                           part\n\
                       });\n\
                   }";
        assert_eq!(run(src), vec![]);
    }

    #[test]
    fn indexed_write_slot_is_blessed() {
        let src = "fn f(scope: &S, slots: &mut [f64], w: usize) {\n\
                       scope.spawn(move |_| {\n\
                           let idx = w;\n\
                           slots[idx] = 1.0;\n\
                       });\n\
                   }";
        assert_eq!(run(src), vec![]);
    }

    #[test]
    fn channel_send_is_blessed() {
        let src = "fn f(scope: &S, tx: Sender<u32>, seen: &mut Vec<u32>) {\n\
                       scope.spawn(move |_| {\n\
                           tx.send(1);\n\
                       });\n\
                   }";
        assert_eq!(run(src), vec![]);
    }

    #[test]
    fn mutex_float_accumulation_flagged_as_reduce_not_shared_mut() {
        let src = "fn f(scope: &S, acc: &Mutex<f64>, x: f64) {\n\
                       scope.spawn(move |_| {\n\
                           *acc.lock() += x;\n\
                       });\n\
                   }";
        assert_eq!(run(src), vec![("parallel-float-reduce", 3)]);
    }

    #[test]
    fn captured_rng_in_spawn_flagged() {
        let src = "fn f(scope: &S, rng: &mut R) {\n\
                       scope.spawn(move |_| {\n\
                           let x = rng.gen_range(1..9);\n\
                       });\n\
                   }";
        assert_eq!(run(src), vec![("parallel-rng", 3)]);
    }

    #[test]
    fn per_worker_seeded_rng_is_blessed() {
        let src = "fn f(scope: &S, seed: u64, w: u64) {\n\
                       scope.spawn(move |_| {\n\
                           let mut rng = StdRng::seed_from_u64(seed ^ w);\n\
                           let x = rng.gen_range(1..9);\n\
                       });\n\
                   }";
        assert_eq!(run(src), vec![]);
    }

    #[test]
    fn relaxed_store_flagged_relaxed_counter_not() {
        let src = "fn f(ready: &AtomicBool, hits: &AtomicUsize) {\n\
                       hits.fetch_add(1, Ordering::Relaxed);\n\
                       ready.store(true, Ordering::Relaxed);\n\
                       ready.store(true, Ordering::SeqCst);\n\
                   }";
        assert_eq!(run(src), vec![("relaxed-publish", 3)]);
    }

    #[test]
    fn lock_in_loop_flagged() {
        let src = "fn f(items: &[f64], m: &Mutex<f64>) -> f64 {\n\
                       let mut t = 0.0;\n\
                       for x in items {\n\
                           let g = m.lock();\n\
                           t += x;\n\
                       }\n\
                       t\n\
                   }";
        assert_eq!(run(src), vec![("hot-loop-lock", 4)]);
    }

    #[test]
    fn lock_outside_loop_not_flagged() {
        let src = "fn f(items: &[f64], m: &Mutex<f64>) -> f64 {\n\
                       let g = m.lock();\n\
                       let mut t = 0.0;\n\
                       for x in items {\n\
                           t += x;\n\
                       }\n\
                       t\n\
                   }";
        assert_eq!(run(src), vec![]);
    }

    #[test]
    fn allow_directive_suppresses_rn2xx() {
        let src = "fn f(scope: &S, flags: &mut [bool]) {\n\
                       scope.spawn(move |_| {\n\
                           // lint: allow(parallel-shared-mut, reason = \"single worker owns the whole slice in this branch\")\n\
                           flags[0] = true;\n\
                       });\n\
                   }";
        assert_eq!(run(src), vec![]);
    }
}
