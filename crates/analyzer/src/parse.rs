//! Lightweight structural parse layer over the [`crate::lexer`] token stream.
//!
//! The token-level rules only need answers to structural questions — "is this
//! token inside a loop body?", "is this variable a `HashMap`?", "does this
//! `pub fn` return `Result` and carry `#[must_use]`?" — not a full AST. This
//! module answers them with a single forward pass each:
//!
//! - [`build_blocks`]: every brace-delimited block with a coarse
//!   [`BlockKind`], derived from the keyword that introduced it,
//! - [`fn_items`]: function items with visibility, attributes, and whether
//!   the return type mentions `Result`,
//! - [`hash_aliases`] / [`hash_names`]: per-file resolution of which type
//!   names and which variable/field names refer to `HashMap`/`HashSet`,
//! - [`loop_ranges`]: token ranges executed once per iteration — `for` /
//!   `while` / `loop` bodies plus the argument spans of iterator-adapter
//!   closures (`.map(..)`, `.for_each(..)`, ...).
//!
//! All results are conservative: when the heuristics cannot classify a
//! construct they fall back to "not a loop / not a hash / not an item", so
//! downstream rules under-report rather than hallucinate.

use crate::lexer::{Token, TokenKind};

/// Coarse classification of a brace-delimited block by the keyword that
/// introduced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// A function body.
    Fn,
    /// A `for` / `while` / `loop` body.
    Loop,
    /// A `match` body (the arm list; arm blocks are [`BlockKind::Other`]).
    Match,
    /// A `struct` / `enum` / `union` / `impl` / `mod` / `trait` body.
    Item,
    /// Anything else: `if` / `else` arms, bare blocks, closures, literals.
    Other,
}

/// One brace-delimited block.
#[derive(Debug, Clone, Copy)]
pub struct Block {
    /// What introduced the block.
    pub kind: BlockKind,
    /// Token index of the opening `{`.
    pub open: usize,
    /// Token index of the matching `}` (`tokens.len()` when unbalanced).
    pub close: usize,
    /// Line of the opening `{`.
    pub start_line: u32,
    /// Line of the closing `}`.
    pub end_line: u32,
}

/// A function item with the signature facts the rules need.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Declared `pub` (any visibility restriction such as `pub(crate)`
    /// counts: the analyzer audits API shape, not reachability).
    pub is_pub: bool,
    /// Carries a `#[must_use]` attribute (with or without a message).
    pub has_must_use: bool,
    /// Return type mentions `Result`.
    pub returns_result: bool,
    /// Line of the `fn` keyword.
    pub sig_line: u32,
}

/// Structural facts for one file.
#[derive(Debug)]
pub struct Parsed {
    /// Every brace block, in closing order.
    pub blocks: Vec<Block>,
    /// Every function item (including nested functions).
    pub fns: Vec<FnItem>,
    /// Type names that refer to `HashMap`/`HashSet` in this file
    /// (the bare names plus `use .. as ..` renames and `type` aliases).
    pub hash_aliases: Vec<String>,
    /// Variable, parameter, and field names with a hash-typed declaration.
    pub hash_names: Vec<String>,
    /// Token ranges `(start, end)` executed once per loop iteration.
    pub loop_ranges: Vec<(usize, usize)>,
}

/// Run every structural pass over one file's tokens.
pub fn parse(tokens: &[Token]) -> Parsed {
    let blocks = build_blocks(tokens);
    let fns = fn_items(tokens);
    let hash_aliases = hash_aliases(tokens);
    let hash_names = hash_names(tokens, &hash_aliases);
    let loop_ranges = loop_ranges(tokens, &blocks);
    Parsed {
        blocks,
        fns,
        hash_aliases,
        hash_names,
        loop_ranges,
    }
}

/// Keywords that put a block kind "on deck" for the next `{`.
fn pending_kind(text: &str) -> Option<BlockKind> {
    match text {
        "fn" => Some(BlockKind::Fn),
        "for" | "while" | "loop" => Some(BlockKind::Loop),
        "match" => Some(BlockKind::Match),
        "struct" | "enum" | "union" | "impl" | "mod" | "trait" => Some(BlockKind::Item),
        _ => None,
    }
}

/// Scan the token stream once, classifying every `{ .. }` block.
///
/// A keyword sets a pending kind which the next `{` claims; `;` clears it
/// (`struct S;`, trait method declarations). Later keywords never override an
/// earlier pending kind, so `impl Trait for T {` stays [`BlockKind::Item`]
/// and `fn f<F: for<'a> Fn(..)>() {` stays [`BlockKind::Fn`].
pub fn build_blocks(tokens: &[Token]) -> Vec<Block> {
    let mut blocks = Vec::new();
    let mut stack: Vec<(BlockKind, usize)> = Vec::new();
    let mut pending: Option<BlockKind> = None;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::Ident {
            if let Some(kind) = pending_kind(&t.text) {
                if pending.is_none() || kind == BlockKind::Fn {
                    pending = Some(kind);
                }
                continue;
            }
        }
        match t.text.as_str() {
            ";" => pending = None,
            "{" => stack.push((pending.take().unwrap_or(BlockKind::Other), i)),
            "}" => {
                if let Some((kind, open)) = stack.pop() {
                    blocks.push(Block {
                        kind,
                        open,
                        close: i,
                        start_line: tokens[open].line,
                        end_line: t.line,
                    });
                }
            }
            _ => {}
        }
    }
    // Unbalanced leftovers (lexer saw EOF first): close at end of stream.
    while let Some((kind, open)) = stack.pop() {
        blocks.push(Block {
            kind,
            open,
            close: tokens.len(),
            start_line: tokens[open].line,
            end_line: tokens.last().map_or(tokens[open].line, |t| t.line),
        });
    }
    blocks
}

/// Extract function items with visibility, `#[must_use]`, and return type.
pub fn fn_items(tokens: &[Token]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    // Attribute spans and a `pub` seen since the last non-modifier token.
    let mut pending_attrs: Vec<(usize, usize)> = Vec::new();
    let mut pending_pub = false;
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.text == "#" {
            let end = crate::rules::skip_attr(tokens, i);
            pending_attrs.push((i, end));
            i = end;
            continue;
        }
        if t.kind == TokenKind::Ident {
            match t.text.as_str() {
                "pub" => {
                    pending_pub = true;
                    i += 1;
                    if matches!(tokens.get(i), Some(n) if n.text == "(") {
                        i = crate::rules::skip_balanced(tokens, i, "(", ")");
                    }
                    continue;
                }
                // Modifiers between visibility and `fn` keep the pending state.
                "const" | "unsafe" | "async" | "extern" => {
                    i += 1;
                    if matches!(tokens.get(i), Some(n) if n.kind == TokenKind::Str) {
                        i += 1; // extern "C"
                    }
                    continue;
                }
                "fn" => {
                    if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                        let has_must_use = pending_attrs.iter().any(|&(a, b)| {
                            tokens[a..b.min(tokens.len())]
                                .iter()
                                .any(|t| t.text == "must_use")
                        });
                        fns.push(FnItem {
                            name: name.text.clone(),
                            is_pub: pending_pub,
                            has_must_use,
                            returns_result: signature_returns_result(tokens, i + 2),
                            sig_line: t.line,
                        });
                    }
                    pending_attrs.clear();
                    pending_pub = false;
                    i += 1;
                    continue;
                }
                _ => {}
            }
        }
        pending_attrs.clear();
        pending_pub = false;
        i += 1;
    }
    fns
}

/// Does the signature starting after `fn <name>` declare a `Result` return?
/// Scans `-> ..` up to the body `{`, a `;`, or a `where` clause.
fn signature_returns_result(tokens: &[Token], from: usize) -> bool {
    let mut j = from;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut in_ret = false;
    while let Some(t) = tokens.get(j) {
        match t.text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "->" if paren == 0 && bracket == 0 => in_ret = true,
            "{" | ";" if paren == 0 && bracket == 0 => return false,
            "where" if t.kind == TokenKind::Ident => return false,
            "Result" if in_ret && t.kind == TokenKind::Ident => return true,
            _ => {}
        }
        j += 1;
    }
    false
}

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Constructor names whose `Alias::ctor(..)` result is hash-typed.
const HASH_CTORS: &[&str] = &["new", "with_capacity", "default", "from", "from_iter"];

/// Type names that refer to `HashMap`/`HashSet` in this file: the bare names
/// plus `use .. as R;` renames and `type A = HashMap<..>;` aliases.
pub fn hash_aliases(tokens: &[Token]) -> Vec<String> {
    let mut aliases: Vec<String> = HASH_TYPES.iter().map(|s| (*s).to_string()).collect();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `use ..::HashMap as Map;` (also inside `{..}` groups).
        if HASH_TYPES.contains(&t.text.as_str())
            && matches!(tokens.get(i + 1), Some(a) if a.text == "as")
        {
            if let Some(r) = tokens.get(i + 2).filter(|r| r.kind == TokenKind::Ident) {
                if !aliases.contains(&r.text) {
                    aliases.push(r.text.clone());
                }
            }
        }
        // `type Alias = .. HashMap .. ;`
        if t.text == "type" {
            if let (Some(name), Some(eq)) = (tokens.get(i + 1), tokens.get(i + 2)) {
                if name.kind == TokenKind::Ident && eq.text == "=" {
                    let mut j = i + 3;
                    while let Some(t2) = tokens.get(j) {
                        if t2.text == ";" {
                            break;
                        }
                        if HASH_TYPES.contains(&t2.text.as_str()) && !aliases.contains(&name.text) {
                            aliases.push(name.text.clone());
                        }
                        j += 1;
                    }
                }
            }
        }
    }
    aliases
}

/// Identifier names declared with a hash type: `name: HashMap<..>` ascriptions
/// (locals, params, struct fields) and `let name = HashMap::new()` forms.
pub fn hash_names(tokens: &[Token], aliases: &[String]) -> Vec<String> {
    let mut names = Vec::new();
    let mut push = |n: &str| {
        if !names.iter().any(|x: &String| x == n) {
            names.push(n.to_string());
        }
    };
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || !aliases.iter().any(|a| a == &t.text) {
            continue;
        }
        // Walk backward over the type prefix: path segments, `&`, `mut`,
        // lifetimes. `Vec<HashMap<..>>` stops at `<` — the *outer* binding is
        // not hash-typed, so it is correctly skipped.
        let mut j = i;
        while j >= 2 && tokens[j - 1].text == "::" {
            j -= 2;
        }
        while j >= 1
            && (tokens[j - 1].text == "&"
                || tokens[j - 1].text == "mut"
                || tokens[j - 1].kind == TokenKind::Lifetime)
        {
            j -= 1;
        }
        if j >= 2 && tokens[j - 1].text == ":" && tokens[j - 2].kind == TokenKind::Ident {
            push(&tokens[j - 2].text);
            continue;
        }
        // `let [mut] name = [path::]Alias::ctor(..)`.
        let is_ctor = matches!(tokens.get(i + 1), Some(c) if c.text == "::")
            && matches!(tokens.get(i + 2), Some(m) if HASH_CTORS.contains(&m.text.as_str()));
        if is_ctor && j >= 2 && tokens[j - 1].text == "=" && tokens[j - 2].kind == TokenKind::Ident
        {
            let name = &tokens[j - 2].text;
            if name != "mut" && name != "let" {
                push(name);
            }
        }
    }
    names
}

/// Iterator adapters that take a closure executed once per element.
const ADAPTERS: &[&str] = &[
    "map",
    "for_each",
    "filter",
    "filter_map",
    "flat_map",
    "fold",
    "try_fold",
    "scan",
    "retain",
    "map_while",
    "inspect",
];

/// Token ranges executed once per iteration: loop bodies plus the argument
/// spans of iterator-adapter calls.
pub fn loop_ranges(tokens: &[Token], blocks: &[Block]) -> Vec<(usize, usize)> {
    let mut ranges: Vec<(usize, usize)> = blocks
        .iter()
        .filter(|b| b.kind == BlockKind::Loop)
        .map(|b| (b.open, b.close))
        .collect();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::Ident
            && ADAPTERS.contains(&t.text.as_str())
            && i > 0
            && tokens[i - 1].text == "."
            && matches!(tokens.get(i + 1), Some(p) if p.text == "(")
        {
            let end = crate::rules::skip_balanced(tokens, i + 1, "(", ")");
            ranges.push((i + 1, end));
        }
    }
    ranges.sort_unstable();
    ranges
}

/// Is token index `i` inside any of `ranges` (exclusive of the delimiters)?
pub fn in_ranges(i: usize, ranges: &[(usize, usize)]) -> bool {
    ranges.iter().any(|&(a, b)| i > a && i < b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Parsed {
        parse(&lex(src).tokens)
    }

    #[test]
    fn block_kinds_classified() {
        let p = parse_src(
            "fn f() { for x in v { match x { _ => { } } } } struct S { a: u32 } impl S { }",
        );
        let kinds: Vec<BlockKind> = {
            let mut bs = p.blocks.clone();
            bs.sort_by_key(|b| b.open);
            bs.iter().map(|b| b.kind).collect()
        };
        assert_eq!(
            kinds,
            vec![
                BlockKind::Fn,
                BlockKind::Loop,
                BlockKind::Match,
                BlockKind::Other,
                BlockKind::Item,
                BlockKind::Item,
            ]
        );
    }

    #[test]
    fn impl_trait_for_is_item_not_loop() {
        let p = parse_src("impl Display for S { fn fmt(&self) { } }");
        let mut bs = p.blocks.clone();
        bs.sort_by_key(|b| b.open);
        assert_eq!(bs[0].kind, BlockKind::Item);
        assert_eq!(bs[1].kind, BlockKind::Fn);
    }

    #[test]
    fn struct_with_semicolon_clears_pending() {
        let p = parse_src("struct S; fn f() { }");
        assert_eq!(p.blocks.len(), 1);
        assert_eq!(p.blocks[0].kind, BlockKind::Fn);
    }

    #[test]
    fn fn_items_capture_pub_must_use_result() {
        let src = "#[must_use = \"handle it\"]\npub fn a() -> Result<(), E> { }\nfn b() -> Result<u8, E>;\npub fn c() -> u32 { }";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 3);
        assert!(p.fns[0].is_pub && p.fns[0].has_must_use && p.fns[0].returns_result);
        assert!(!p.fns[1].is_pub && !p.fns[1].has_must_use && p.fns[1].returns_result);
        assert!(p.fns[2].is_pub && !p.fns[2].returns_result);
    }

    #[test]
    fn derive_attr_does_not_leak_onto_next_fn() {
        let src = "#[derive(Debug)]\nstruct S;\npub fn f() -> Result<(), E> { }";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 1);
        assert!(!p.fns[0].has_must_use);
    }

    #[test]
    fn result_in_params_is_not_a_result_return() {
        let p = parse_src("pub fn f(r: Result<u8, E>) -> u32 { 0 }");
        assert!(!p.fns[0].returns_result);
    }

    #[test]
    fn hash_aliases_resolve_renames_and_type_aliases() {
        let src =
            "use std::collections::{HashMap as Map, HashSet};\ntype Index = HashMap<u32, u32>;";
        let p = parse_src(src);
        for a in ["HashMap", "HashSet", "Map", "Index"] {
            assert!(p.hash_aliases.iter().any(|x| x == a), "missing {a}");
        }
    }

    #[test]
    fn hash_names_from_ascription_ctor_and_field() {
        let src = "struct S { edges: HashSet<(u32, u32)> }\nfn f(m: &HashMap<u32, u32>) { let mut seen = HashSet::new(); let v: Vec<HashMap<u8, u8>> = Vec::new(); }";
        let p = parse_src(src);
        for n in ["edges", "m", "seen"] {
            assert!(p.hash_names.iter().any(|x| x == n), "missing {n}");
        }
        // The Vec<HashMap<..>> binding itself is not hash-typed.
        assert!(!p.hash_names.iter().any(|x| x == "v"));
    }

    #[test]
    fn loop_ranges_cover_bodies_and_adapter_closures() {
        let src = "fn f(v: &[u32]) { for x in v { touch(x); } let s: u32 = v.iter().map(|x| x + 1).sum(); }";
        let tokens = lex(src).tokens;
        let p = parse(&tokens);
        let touch = tokens.iter().position(|t| t.text == "touch").unwrap();
        let plus = tokens.iter().position(|t| t.text == "+").unwrap();
        let sum = tokens.iter().position(|t| t.text == "sum").unwrap();
        assert!(in_ranges(touch, &p.loop_ranges));
        assert!(in_ranges(plus, &p.loop_ranges));
        assert!(!in_ranges(sum, &p.loop_ranges));
    }

    #[test]
    fn labeled_loop_is_a_loop() {
        let src = "fn f() { 'outer: while go() { step(); } }";
        let tokens = lex(src).tokens;
        let p = parse(&tokens);
        let step = tokens.iter().position(|t| t.text == "step").unwrap();
        assert!(in_ranges(step, &p.loop_ranges));
    }
}
