//! RN4xx: interprocedural numeric dataflow — unit/dimension inference and
//! NaN-taint tracking on top of the [`crate::callgraph`]/[`crate::parse`]
//! layers.
//!
//! Units are seeded from `/// unit: s | s^2 | bit/s | bits | ratio | count`
//! doc annotations on fields, functions, and `let` bindings, plus built-in
//! name heuristics (`*_s`, `*_s2`, `*_bps`, `capacity*`, `*util*`,
//! `*_prob`/`*_frac`/`*_ratio`). Units propagate through arithmetic
//! expressions (a `Dim` is a pair of time/data exponents, so `bit/s × s`
//! correctly yields `bits`) and across calls via annotated or inferred
//! function return units, with the same monotone fixed-point machinery the
//! RN2xx call-graph effects use.
//!
//! | rule             | flags |
//! |------------------|-------|
//! | `unit-mismatch`  | RN401: add/subtract/compare of operands with different known units |
//! | `unit-dimension` | RN402: a binding whose computed dimension contradicts its declared/derived unit (rate×time misuse), and `.min(1.0)`/`.clamp(0.0, 1.0)` applied to a division result (masks out-of-range ratios — the PR 4 utilization-clamp bug) |
//! | `unit-sink`      | RN403: unit-carrying values fed to intrinsically unitless transforms (`sigmoid`, `exp`, `tanh`) |
//! | `nan-div`        | RN404: divisions whose denominator is not proven nonzero by a guard, `.max(..)`, assert, or monotone counter |
//! | `nan-domain`     | RN405: `ln`/`log2`/`log10`/`sqrt`/`powf` on values not proven in-domain |
//! | `nan-sink`       | RN406: possibly-NaN values flowing into labels, features, loss, or telemetry sinks without an `is_finite` boundary |
//!
//! Everything here is deliberately conservative: a finding requires *known*
//! units or *locally evident* lack of a guard, so `Unknown` never flags.
//! Evidence scanning is function-scoped (plus constructor asserts reached by
//! name), which is a heuristic, not a dominator analysis — the escape hatch
//! is the usual `// lint: allow(<rule>, reason = "...")`.

use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};
use crate::rules::{self, Diagnostic, FnSpan};

// ---------------------------------------------------------------------------
// Units
// ---------------------------------------------------------------------------

/// A physical dimension as exponents of time (seconds) and data (bits).
/// `s` = (1, 0), `bit/s` = (-1, 1), `bits` = (0, 1), `ratio`/`count` = (0, 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Dim {
    /// Exponent of seconds.
    pub time: i8,
    /// Exponent of bits.
    pub data: i8,
}

impl Dim {
    /// Dimensionless (ratios, probabilities, counts).
    pub const RATIO: Dim = Dim { time: 0, data: 0 };
    /// Seconds.
    pub const SECONDS: Dim = Dim { time: 1, data: 0 };
    /// Seconds squared (jitter/variance of delay).
    pub const S2: Dim = Dim { time: 2, data: 0 };
    /// Bits.
    pub const BITS: Dim = Dim { time: 0, data: 1 };
    /// Bits per second.
    pub const BPS: Dim = Dim { time: -1, data: 1 };
    /// Events per second.
    pub const PER_S: Dim = Dim { time: -1, data: 0 };

    fn mul(self, o: Dim) -> Dim {
        Dim {
            time: self.time.saturating_add(o.time),
            data: self.data.saturating_add(o.data),
        }
    }

    fn div(self, o: Dim) -> Dim {
        Dim {
            time: self.time.saturating_sub(o.time),
            data: self.data.saturating_sub(o.data),
        }
    }

    fn pow(self, k: i8) -> Dim {
        Dim {
            time: self.time.saturating_mul(k),
            data: self.data.saturating_mul(k),
        }
    }

    /// Canonical display name used in diagnostics.
    pub fn name(self) -> String {
        match (self.time, self.data) {
            (0, 0) => "ratio".into(),
            (1, 0) => "s".into(),
            (2, 0) => "s^2".into(),
            (-1, 0) => "1/s".into(),
            (0, 1) => "bits".into(),
            (-1, 1) => "bit/s".into(),
            (t, d) => format!("s^{t}*bit^{d}"),
        }
    }
}

/// Inference result for one value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Unit {
    /// No information — never produces a finding.
    #[default]
    Unknown,
    /// Known dimension.
    Known(Dim),
}

impl Unit {
    fn dim(self) -> Option<Dim> {
        match self {
            Unit::Known(d) => Some(d),
            Unit::Unknown => None,
        }
    }
}

/// Parse the value of a `unit:` annotation. `None` for unknown spellings.
pub fn parse_unit_text(s: &str) -> Option<Dim> {
    match s.trim() {
        "s" => Some(Dim::SECONDS),
        "s^2" | "s2" => Some(Dim::S2),
        "bit/s" | "bps" => Some(Dim::BPS),
        "bit" | "bits" => Some(Dim::BITS),
        "ratio" | "count" => Some(Dim::RATIO),
        "1/s" | "hz" => Some(Dim::PER_S),
        _ => None,
    }
}

/// The spellings accepted by [`parse_unit_text`], for diagnostics.
pub const KNOWN_UNITS: &str = "s, s^2, bit/s, bits, ratio, count, 1/s";

/// Built-in name heuristics. `method_pos` suppresses the bare `capacity`
/// match so `Vec::capacity()` never reads as bit/s.
fn unit_from_name(name: &str, method_pos: bool) -> Unit {
    let n = name.to_ascii_lowercase();
    if n.starts_with("with_") {
        return Unit::Unknown; // Vec::with_capacity and friends
    }
    if n.ends_with("_s2") {
        return Unit::Known(Dim::S2);
    }
    if n.ends_with("_s") || n.ends_with("_delay") {
        return Unit::Known(Dim::SECONDS);
    }
    if n.ends_with("_bps") || (!method_pos && n.contains("capacity")) {
        return Unit::Known(Dim::BPS);
    }
    if n.ends_with("_bits") {
        return Unit::Known(Dim::BITS);
    }
    if n.contains("util")
        || n.ends_with("_prob")
        || n.ends_with("_frac")
        || n.ends_with("_ratio")
        || n.ends_with("intensity")
    {
        return Unit::Known(Dim::RATIO);
    }
    Unit::Unknown
}

// ---------------------------------------------------------------------------
// Workspace unit environment
// ---------------------------------------------------------------------------

/// Workspace-wide numeric environment: annotated units for fields, function
/// returns, and `let` bindings, plus the NaN-effect tables used by RN406.
/// Built once over all sources (like the call graph) so `--changed-only`
/// sees identical cross-file evidence.
#[derive(Debug, Default)]
pub struct UnitEnv {
    /// Field name -> annotated dim (`None` = conflicting annotations).
    fields: Vec<(String, Option<Dim>)>,
    /// Function name -> annotated or inferred return dim.
    fns: Vec<(String, Option<Dim>)>,
    /// Annotated `let` bindings: (file, line, name, dim).
    locals: Vec<(String, u32, String, Dim)>,
    /// `const NAME: f64 = <literal>;` values (`None` = conflicting
    /// definitions across the workspace). Lets `.max(EPS)`-style guards
    /// through named constants count as proven, not just bare literals.
    consts: Vec<(String, Option<f64>)>,
    /// Functions whose body checks `is_finite`/`is_nan` — NaN boundaries.
    finite_checkers: Vec<String>,
    /// Functions that may return NaN (direct unguarded op, or transitively
    /// via calls), cut at finite-checker boundaries.
    may_nan: Vec<String>,
}

/// One parsed file during env construction.
struct EnvFile {
    file: String,
    lexed: Lexed,
    test_spans: Vec<(u32, u32)>,
    fns: Vec<FnSpan>,
}

impl UnitEnv {
    /// Build the environment over `(relative path, source)` pairs.
    /// `#[cfg(test)]` bodies contribute nothing.
    pub fn build(files: &[(String, String)]) -> UnitEnv {
        let mut env = UnitEnv::default();
        let parsed: Vec<EnvFile> = files
            .iter()
            .map(|(file, source)| {
                let lexed = lex(source);
                let test_spans = rules::test_mod_spans(&lexed.tokens);
                let fns = rules::function_spans(&lexed.tokens);
                EnvFile {
                    file: file.clone(),
                    lexed,
                    test_spans,
                    fns,
                }
            })
            .collect();

        for f in &parsed {
            env.collect_annotations(f);
            env.collect_consts(f);
            for fspan in &f.fns {
                if rules::in_spans(fspan.sig_line, &f.test_spans) {
                    continue;
                }
                let (a, b) = fspan.body_tokens;
                let body = &f.lexed.tokens[a..b];
                if body.iter().any(|t| {
                    t.kind == TokenKind::Ident
                        && matches!(t.text.as_str(), "is_finite" | "is_nan" | "is_normal")
                }) {
                    push_name(&mut env.finite_checkers, &fspan.name);
                }
            }
        }
        env.fields.sort();
        env.fns.sort();
        env.locals.sort();
        env.consts.sort_by(|a, b| a.0.cmp(&b.0));
        env.finite_checkers.sort();

        env.infer_return_units(&parsed);
        env.propagate_nan(&parsed);
        env
    }

    fn collect_annotations(&mut self, f: &EnvFile) {
        for c in &f.lexed.comments {
            if rules::in_spans(c.line, &f.test_spans) {
                continue;
            }
            let Some(value) = unit_annotation(c) else {
                continue;
            };
            let Some(dim) = parse_unit_text(value) else {
                continue; // malformed: reported by the per-file pass
            };
            let Some(target) = annotation_target(&f.lexed.tokens, c.line) else {
                continue;
            };
            match target {
                AnnTarget::Field(name) => insert_dim(&mut self.fields, &name, dim),
                AnnTarget::Fn(name) => insert_dim(&mut self.fns, &name, dim),
                AnnTarget::Let(name, line) => {
                    self.locals.push((f.file.clone(), line, name, dim));
                }
            }
        }
    }

    /// Fixed point: infer return units for unannotated functions from their
    /// `return` and tail expressions. Units only ever go Unknown -> Known,
    /// so this terminates; conflicting inferences poison the entry.
    fn infer_return_units(&mut self, parsed: &[EnvFile]) {
        for _ in 0..8 {
            let mut changed = false;
            for f in parsed {
                for fspan in &f.fns {
                    if rules::in_spans(fspan.sig_line, &f.test_spans) {
                        continue;
                    }
                    if self.fn_unit(&fspan.name, false) != Unit::Unknown {
                        continue;
                    }
                    let ctx = FileCtx {
                        file: &f.file,
                        tokens: &f.lexed.tokens,
                        env: self,
                    };
                    let local = build_local_env(&ctx, fspan);
                    let mut inferred: Option<Dim> = None;
                    let mut ok = true;
                    for (a, b) in return_ranges(&f.lexed.tokens, fspan) {
                        let e = parse_expr(&ctx, &local, a, b, 0);
                        match (e.unit.dim(), e.all_literal) {
                            (Some(d), false) => match inferred {
                                None => inferred = Some(d),
                                Some(prev) if prev == d => {}
                                Some(_) => {
                                    ok = false;
                                }
                            },
                            _ => ok = false,
                        }
                    }
                    if ok {
                        if let Some(d) = inferred {
                            insert_dim(&mut self.fns, &fspan.name, d);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Fixed point: a function may produce NaN if its body has an unproven
    /// division/domain op (or touches `f64::NAN`), or calls a may-NaN
    /// function — unless its own body checks `is_finite`/`is_nan`, which
    /// makes it a boundary that neither originates nor propagates taint.
    fn propagate_nan(&mut self, parsed: &[EnvFile]) {
        let mut direct: Vec<(String, Vec<String>)> = Vec::new(); // (fn, callees)
        for f in parsed {
            for fspan in &f.fns {
                if rules::in_spans(fspan.sig_line, &f.test_spans) {
                    continue;
                }
                if self.checks_finite(&fspan.name) {
                    continue;
                }
                let ctx = FileCtx {
                    file: &f.file,
                    tokens: &f.lexed.tokens,
                    env: self,
                };
                let local = build_local_env(&ctx, fspan);
                let (a, b) = fspan.body_tokens;
                if range_possibly_nan(&ctx, &local, fspan, a, b) {
                    push_name(&mut self.may_nan, &fspan.name);
                }
                direct.push((fspan.name.clone(), callee_names(&f.lexed.tokens[a..b])));
            }
        }
        self.may_nan.sort();
        if std::env::var_os("RN_DEBUG_NAN").is_some() {
            eprintln!("direct may_nan: {:?}", self.may_nan);
        }
        loop {
            let mut changed = false;
            for (name, callees) in &direct {
                if self.is_may_nan(name) {
                    continue;
                }
                if callees.iter().any(|c| self.is_may_nan(c)) {
                    let i = self.may_nan.binary_search(name).unwrap_err();
                    self.may_nan.insert(i, name.clone());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        if std::env::var_os("RN_DEBUG_NAN").is_some() {
            eprintln!("may_nan: {:?}", self.may_nan);
        }
    }

    /// Record every `const NAME: f64 = <literal>;` so guard evidence can see
    /// through named epsilon/floor constants. Conflicting redefinitions
    /// across the workspace poison the name.
    fn collect_consts(&mut self, f: &EnvFile) {
        let tokens = &f.lexed.tokens;
        for i in 0..tokens.len() {
            if tokens[i].text != "const" {
                continue;
            }
            let Some(name) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
                continue;
            };
            if name.text.chars().any(|c| c.is_ascii_lowercase()) {
                continue; // SCREAMING_CASE only: locals can never shadow these
            }
            if !matches!(tokens.get(i + 2), Some(t) if t.text == ":") {
                continue;
            }
            if !matches!(tokens.get(i + 3), Some(t) if t.text == "f64" || t.text == "f32") {
                continue;
            }
            if !matches!(tokens.get(i + 4), Some(t) if t.text == "=") {
                continue;
            }
            let (vtok, neg) = match tokens.get(i + 5) {
                Some(t) if t.text == "-" => (tokens.get(i + 6), true),
                t => (t, false),
            };
            let Some(v) = vtok
                .filter(|t| matches!(t.kind, TokenKind::Int | TokenKind::Float))
                .and_then(|t| lit_value(&t.text))
            else {
                continue;
            };
            let v = if neg { -v } else { v };
            match self.consts.iter_mut().find(|(n, _)| n == &name.text) {
                Some((_, prev)) => {
                    if *prev != Some(v) {
                        *prev = None;
                    }
                }
                None => self.consts.push((name.text.clone(), Some(v))),
            }
        }
    }

    fn const_value(&self, name: &str) -> Option<f64> {
        match self.consts.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => self.consts[i].1,
            Err(_) => None,
        }
    }

    fn field_unit(&self, name: &str) -> Unit {
        match self.fields.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => self.fields[i].1.map_or(Unit::Unknown, Unit::Known),
            Err(_) => unit_from_name(name, false),
        }
    }

    fn fn_unit(&self, name: &str, method_pos: bool) -> Unit {
        match self.fns.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => self.fns[i].1.map_or(Unit::Unknown, Unit::Known),
            Err(_) => unit_from_name(name, method_pos),
        }
    }

    fn local_annotation(&self, file: &str, line: u32, name: &str) -> Option<Dim> {
        self.locals
            .iter()
            .find(|(f, l, n, _)| f == file && *l == line && n == name)
            .map(|(_, _, _, d)| *d)
    }

    /// Does any function with this name check `is_finite`/`is_nan`?
    pub fn checks_finite(&self, name: &str) -> bool {
        self.finite_checkers
            .binary_search_by(|n| n.as_str().cmp(name))
            .is_ok()
    }

    /// May a function with this name return NaN?
    pub fn is_may_nan(&self, name: &str) -> bool {
        self.may_nan
            .binary_search_by(|n| n.as_str().cmp(name))
            .is_ok()
    }
}

fn push_name(v: &mut Vec<String>, name: &str) {
    if !v.iter().any(|n| n == name) {
        v.push(name.to_string());
    }
}

fn insert_dim(v: &mut Vec<(String, Option<Dim>)>, name: &str, dim: Dim) {
    match v.iter_mut().find(|(n, _)| n == name) {
        Some((_, d)) => {
            if *d != Some(dim) {
                *d = None; // conflicting annotations poison the name
            }
        }
        None => v.push((name.to_string(), Some(dim))),
    }
}

/// `unit: <value>` comment payload, if this comment is a unit annotation.
fn unit_annotation(c: &Comment) -> Option<&str> {
    c.text
        .trim_start_matches(['/', '!'])
        .trim()
        .strip_prefix("unit:")
        .map(str::trim)
}

enum AnnTarget {
    Field(String),
    Fn(String),
    Let(String, u32),
}

/// What declaration does a unit comment on `line` attach to? Trailing
/// comments cover their own line; standalone comments cover the next line
/// holding code.
fn annotation_target(tokens: &[Token], line: u32) -> Option<AnnTarget> {
    let target_line = if tokens.iter().any(|t| t.line == line) {
        line
    } else {
        tokens.iter().map(|t| t.line).filter(|l| *l > line).min()?
    };
    let mut i = tokens.iter().position(|t| t.line == target_line)?;
    // Skip visibility and attributes.
    loop {
        match tokens.get(i).map(|t| t.text.as_str()) {
            Some("pub") => {
                i += 1;
                if matches!(tokens.get(i), Some(t) if t.text == "(") {
                    i = rules::skip_balanced(tokens, i, "(", ")");
                }
            }
            Some("#") => i = rules::skip_attr(tokens, i),
            Some("const" | "static" | "unsafe" | "async") => i += 1,
            _ => break,
        }
    }
    let t = tokens.get(i)?;
    if t.text == "fn" {
        let name = tokens.get(i + 1)?;
        return (name.kind == TokenKind::Ident).then(|| AnnTarget::Fn(name.text.clone()));
    }
    if t.text == "let" {
        let mut j = i + 1;
        if matches!(tokens.get(j), Some(t) if t.text == "mut") {
            j += 1;
        }
        let name = tokens.get(j)?;
        if name.kind == TokenKind::Ident
            && matches!(tokens.get(j + 1).map(|t| t.text.as_str()), Some(":" | "="))
        {
            return Some(AnnTarget::Let(name.text.clone(), target_line));
        }
        return None;
    }
    if t.kind == TokenKind::Ident && matches!(tokens.get(i + 1), Some(n) if n.text == ":") {
        return Some(AnnTarget::Field(t.text.clone()));
    }
    None
}

/// `return <expr>;` ranges plus the tail expression of a body.
fn return_ranges(tokens: &[Token], fspan: &FnSpan) -> Vec<(usize, usize)> {
    let (open, end) = fspan.body_tokens;
    let mut out = Vec::new();
    let mut i = open + 1;
    while i + 1 < end {
        if tokens[i].text == "return" && tokens[i].kind == TokenKind::Ident {
            let start = i + 1;
            let mut depth = 0i32;
            let mut j = start;
            while j < end {
                match tokens[j].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if j > start {
                out.push((start, j));
            }
            i = j;
        }
        i += 1;
    }
    // Tail expression: tokens after the last brace-depth-1 `;` (or the body
    // open) up to the closing `}`.
    let mut depth = 0i32;
    let mut tail = open + 1;
    for (j, t) in tokens.iter().enumerate().take(end - 1).skip(open) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth == 1 => tail = j + 1,
            _ => {}
        }
    }
    if tail < end - 1 {
        out.push((tail, end - 1));
    }
    out
}

/// Callee names in a body: idents directly followed by `(` (skipping macros
/// and control keywords), as in the RN2xx call-site scan.
fn callee_names(body: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    for (i, t) in body.iter().enumerate() {
        if t.kind != TokenKind::Ident
            || !matches!(body.get(i + 1), Some(n) if n.text == "(")
            || matches!(
                t.text.as_str(),
                "if" | "while"
                    | "for"
                    | "match"
                    | "loop"
                    | "return"
                    | "fn"
                    | "Some"
                    | "Ok"
                    | "Err"
                    | "None"
            )
        {
            continue;
        }
        if i > 0 && body[i - 1].text == "!" {
            continue;
        }
        if !out.contains(&t.text) {
            out.push(t.text.clone());
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Per-function local environment
// ---------------------------------------------------------------------------

/// Shared read-only context for one file's scans.
pub(crate) struct FileCtx<'a> {
    pub(crate) file: &'a str,
    pub(crate) tokens: &'a [Token],
    pub(crate) env: &'a UnitEnv,
}

/// Per-function facts: binding units, provably-positive bindings, aliases
/// (`let n = xs.len()` lets a guard on `xs` prove `n`), and NaN-tainted
/// bindings for RN406.
#[derive(Debug, Default)]
struct LocalEnv {
    units: Vec<(String, Unit)>,
    proven_positive: Vec<String>,
    aliases: Vec<(String, String)>,
    tainted: Vec<String>,
}

impl LocalEnv {
    fn unit(&self, name: &str) -> Unit {
        match self.units.iter().rev().find(|(n, _)| n == name) {
            Some((_, u)) if *u != Unit::Unknown => *u,
            _ => unit_from_name(name, false),
        }
    }

    fn is_positive(&self, name: &str) -> bool {
        self.proven_positive.iter().any(|n| n == name)
    }

    fn alias_of(&self, name: &str) -> Option<&str> {
        self.aliases
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.as_str())
    }
}

/// Parameter names of the function owning `fspan` (idents followed by `:`
/// at paren depth >= 1 in the signature).
fn param_names(tokens: &[Token], fspan: &FnSpan) -> Vec<String> {
    let open = fspan.body_tokens.0;
    // Walk back to the `fn` introducing this body.
    let mut fn_idx = None;
    let mut k = open;
    while k > 0 {
        k -= 1;
        if tokens[k].text == "fn" && matches!(tokens.get(k + 1), Some(n) if n.text == fspan.name) {
            fn_idx = Some(k);
            break;
        }
        if open - k > 400 {
            break;
        }
    }
    let Some(fi) = fn_idx else {
        return Vec::new();
    };
    let Some(p) = tokens[fi..open].iter().position(|t| t.text == "(") else {
        return Vec::new();
    };
    let pstart = fi + p;
    let pend = rules::skip_balanced(tokens, pstart, "(", ")").min(open);
    let mut out = Vec::new();
    let mut depth = 0i32;
    for i in pstart..pend {
        match tokens[i].text.as_str() {
            "(" => depth += 1,
            ")" => depth -= 1,
            _ => {
                if depth >= 1
                    && tokens[i].kind == TokenKind::Ident
                    && matches!(tokens.get(i + 1), Some(n) if n.text == ":")
                    && (i == pstart + 1 || matches!(tokens[i - 1].text.as_str(), "(" | "," | "mut"))
                {
                    out.push(tokens[i].text.clone());
                }
            }
        }
    }
    out
}

/// Build the local environment with a single forward pass over the body:
/// params get heuristic units; each `let` binding gets its annotated,
/// heuristic, or RHS-inferred unit plus positivity/taint/alias facts.
fn build_local_env(ctx: &FileCtx<'_>, fspan: &FnSpan) -> LocalEnv {
    let mut local = LocalEnv::default();
    for p in param_names(ctx.tokens, fspan) {
        let u = unit_from_name(&p, false);
        local.units.push((p, u));
    }
    let (open, end) = fspan.body_tokens;
    let mut i = open + 1;
    while i + 1 < end.min(ctx.tokens.len()) {
        if ctx.tokens[i].text != "let" || ctx.tokens[i].kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if matches!(ctx.tokens.get(j), Some(t) if t.text == "mut") {
            j += 1;
        }
        let Some(name_tok) = ctx.tokens.get(j) else {
            break;
        };
        if name_tok.kind != TokenKind::Ident
            || !matches!(
                ctx.tokens.get(j + 1).map(|t| t.text.as_str()),
                Some(":" | "=")
            )
        {
            i += 1;
            continue; // destructuring / `if let` patterns: skip
        }
        let name = name_tok.text.clone();
        // Find `=` then the RHS extent (up to `;` at delimiter depth 0).
        let mut eq = j + 1;
        while eq < end && ctx.tokens[eq].text != "=" && ctx.tokens[eq].text != ";" {
            eq += 1;
        }
        if eq >= end || ctx.tokens[eq].text != "=" {
            i = j;
            continue;
        }
        let rstart = eq + 1;
        let mut depth = 0i32;
        let mut rend = rstart;
        while rend < end {
            match ctx.tokens[rend].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => break,
                _ => {}
            }
            rend += 1;
        }
        let rhs = parse_expr(ctx, &local, rstart, rend, 0);
        let declared = ctx
            .env
            .local_annotation(ctx.file, name_tok.line, &name)
            .map(Unit::Known)
            .unwrap_or_else(|| unit_from_name(&name, false));
        let unit = if declared != Unit::Unknown {
            declared
        } else if rhs.all_literal {
            // A bare-literal initializer (`let mut acc = 0.0;`) is a unit
            // chameleon: the accumulator takes whatever unit is added to it
            // later, so seeding `ratio` here would flag every accumulation
            // loop. Leave it Unknown.
            Unit::Unknown
        } else {
            rhs.unit
        };
        local.units.push((name.clone(), unit));
        if rhs.proven_positive || (rhs.all_literal && rhs.lit_value.is_some_and(|v| v > 0.0)) {
            local.proven_positive.push(name.clone());
        }
        if rhs.roots.len() == 1 && !rhs.has_div {
            local.aliases.push((name.clone(), rhs.roots[0].clone()));
        }
        if rhs.may_nan_call || range_possibly_nan(ctx, &local, fspan, rstart, rend) {
            local.tainted.push(name);
        }
        i = rend;
    }
    local
}

// ---------------------------------------------------------------------------
// Expression parsing (forward) and term location (backward)
// ---------------------------------------------------------------------------

/// Facts about one parsed term/expression.
#[derive(Debug, Clone, Default)]
struct ExprInfo {
    unit: Unit,
    /// Leaf identifiers, for guard-evidence matching.
    roots: Vec<String>,
    /// Entirely literal (neutral in unit checks).
    all_literal: bool,
    lit_value: Option<f64>,
    /// Provably > 0 (positive literal, `.max(pos)`, `.exp()`, ...).
    proven_positive: bool,
    /// Provably >= 0 (`.abs()`, `.powi(even)`, nonneg literal, ...).
    proven_nonneg: bool,
    has_div: bool,
    has_muldiv: bool,
    /// Contains a call to a may-NaN function or `f64::NAN`.
    may_nan_call: bool,
    /// Index just past the parsed tokens.
    end: usize,
}

impl ExprInfo {
    fn literal(v: f64, end: usize) -> ExprInfo {
        ExprInfo {
            unit: Unit::Known(Dim::RATIO),
            all_literal: true,
            lit_value: Some(v),
            proven_positive: v > 0.0,
            proven_nonneg: v >= 0.0,
            end,
            ..ExprInfo::default()
        }
    }

    fn unknown(end: usize) -> ExprInfo {
        ExprInfo {
            end,
            ..ExprInfo::default()
        }
    }
}

fn lit_value(text: &str) -> Option<f64> {
    let t: String = text
        .chars()
        .filter(|c| *c != '_')
        .collect::<String>()
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .trim_end_matches("u64")
        .trim_end_matches("u32")
        .trim_end_matches("usize")
        .trim_end_matches("i64")
        .trim_end_matches("i32")
        .trim_end_matches("isize")
        .to_string();
    t.parse::<f64>().ok()
}

const MAX_DEPTH: u32 = 16;

/// Parse one term (primary + postfix chain) starting at `i`, stopping
/// before `stop` (use `tokens.len()` for "no limit").
fn parse_term(
    ctx: &FileCtx<'_>,
    local: &LocalEnv,
    i: usize,
    stop: usize,
    depth: u32,
) -> Option<ExprInfo> {
    if depth > MAX_DEPTH || i >= stop {
        return None;
    }
    let tokens = ctx.tokens;
    let t = tokens.get(i)?;
    let mut info = match t.kind {
        TokenKind::Int | TokenKind::Float => {
            let v = lit_value(&t.text)?;
            ExprInfo::literal(v, i + 1)
        }
        TokenKind::Str | TokenKind::Char | TokenKind::Lifetime => ExprInfo::unknown(i + 1),
        TokenKind::Punct => match t.text.as_str() {
            "-" | "!" => {
                let inner = parse_term(ctx, local, i + 1, stop, depth + 1)?;
                let mut out = inner;
                out.proven_positive = false;
                out.proven_nonneg = false;
                out.lit_value = out.lit_value.map(|v| -v);
                return Some(out);
            }
            "&" | "*" => return parse_term(ctx, local, i + 1, stop, depth + 1),
            "(" => {
                let close = rules::skip_balanced(tokens, i, "(", ")").min(stop);
                let inner_end = close.saturating_sub(1);
                let mut inner = parse_expr(ctx, local, i + 1, inner_end, depth + 1);
                if inner.end < inner_end {
                    // Unparsed remainder (closures, `&&`, ...): collect roots
                    // and division presence crudely; the unit is lost.
                    inner.unit = Unit::Unknown;
                    inner.all_literal = false;
                    inner.proven_positive = false;
                    inner.proven_nonneg = false;
                    collect_loose(tokens, inner.end, inner_end, &mut inner);
                }
                inner.end = close;
                inner
            }
            _ => return None,
        },
        TokenKind::Ident => {
            let mut name = t.text.clone();
            let mut j = i + 1;
            let mut saw_path = false;
            while matches!(tokens.get(j), Some(p) if p.text == "::") {
                saw_path = true;
                if matches!(tokens.get(j + 1), Some(p) if p.text == "<") {
                    j = skip_angles(tokens, j + 1).min(stop);
                    continue;
                }
                match tokens.get(j + 1) {
                    Some(n) if n.kind == TokenKind::Ident => {
                        name = n.text.clone();
                        j += 2;
                    }
                    _ => break,
                }
            }
            if matches!(tokens.get(j), Some(n) if n.text == "!") {
                // Macro invocation: consume its delimiter group.
                let open = j + 1;
                let e = match tokens.get(open).map(|t| t.text.as_str()) {
                    Some("(") => rules::skip_balanced(tokens, open, "(", ")"),
                    Some("[") => rules::skip_balanced(tokens, open, "[", "]"),
                    Some("{") => rules::skip_balanced(tokens, open, "{", "}"),
                    _ => open,
                };
                ExprInfo::unknown(e.min(stop))
            } else if matches!(tokens.get(j), Some(n) if n.text == "(") {
                let close = rules::skip_balanced(tokens, j, "(", ")").min(stop);
                ExprInfo {
                    unit: ctx.env.fn_unit(&name, false),
                    may_nan_call: ctx.env.is_may_nan(&name),
                    end: close,
                    ..ExprInfo::default()
                }
            } else if name == "NAN" && saw_path {
                ExprInfo {
                    may_nan_call: true,
                    end: j,
                    ..ExprInfo::default()
                }
            } else if saw_path && matches!(name.as_str(), "EPSILON" | "MIN_POSITIVE") {
                // `f64::EPSILON` / `f64::MIN_POSITIVE`: tiny positive floats.
                ExprInfo::literal(f64::MIN_POSITIVE, j)
            } else if matches!(name.as_str(), "self" | "true" | "false" | "None") {
                ExprInfo::unknown(j)
            } else if let Some(v) = ctx.env.const_value(&name) {
                ExprInfo::literal(v, j)
            } else {
                let mut e = ExprInfo {
                    unit: local.unit(&name),
                    roots: vec![name.clone()],
                    proven_positive: local.is_positive(&name),
                    may_nan_call: local.tainted.contains(&name),
                    end: j,
                    ..ExprInfo::default()
                };
                if e.unit == Unit::Unknown {
                    e.unit = unit_from_name(&name, false);
                }
                e
            }
        }
    };
    postfix(ctx, local, &mut info, stop, depth);
    Some(info)
}

/// Skip `<...>` generic arguments starting at an opening `<`.
fn skip_angles(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < tokens.len() && j < open + 64 {
        match tokens[j].text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            ";" | "{" => return j,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Crude root/division collection for token ranges the parser gave up on.
fn collect_loose(tokens: &[Token], a: usize, b: usize, info: &mut ExprInfo) {
    for k in a..b.min(tokens.len()) {
        let t = &tokens[k];
        if t.text == "/" || t.text == "/=" {
            info.has_div = true;
            info.has_muldiv = true;
        }
        if t.kind == TokenKind::Ident
            && !matches!(tokens.get(k + 1), Some(n) if n.text == "(")
            && !matches!(
                t.text.as_str(),
                "if" | "else"
                    | "let"
                    | "mut"
                    | "self"
                    | "as"
                    | "in"
                    | "for"
                    | "while"
                    | "match"
                    | "move"
                    | "return"
                    | "true"
                    | "false"
                    | "Some"
                    | "None"
                    | "Ok"
                    | "Err"
            )
            && !info.roots.contains(&t.text)
        {
            info.roots.push(t.text.clone());
        }
    }
}

/// Apply the postfix chain (`.method(..)`, `.field`, `[..]`, `as T`, `?`)
/// to `info`, advancing `info.end` but never past `stop`.
fn postfix(ctx: &FileCtx<'_>, local: &LocalEnv, info: &mut ExprInfo, stop: usize, depth: u32) {
    let tokens = ctx.tokens;
    loop {
        let p = info.end;
        if p >= stop {
            return;
        }
        match tokens[p].text.as_str() {
            "." if matches!(tokens.get(p + 1), Some(n) if n.kind == TokenKind::Ident) => {
                let m = tokens[p + 1].text.clone();
                // Turbofish on methods: `.sum::<f64>()`.
                let mut call_at = p + 2;
                if matches!(tokens.get(call_at), Some(t) if t.text == "::")
                    && matches!(tokens.get(call_at + 1), Some(t) if t.text == "<")
                {
                    call_at = skip_angles(tokens, call_at + 1);
                }
                if matches!(tokens.get(call_at), Some(t) if t.text == "(") {
                    let close = rules::skip_balanced(tokens, call_at, "(", ")").min(stop);
                    apply_method(
                        ctx,
                        local,
                        info,
                        &m,
                        call_at + 1,
                        close.saturating_sub(1),
                        depth,
                    );
                    info.end = close;
                } else {
                    // Field access: last segment decides unit and root.
                    info.unit = ctx.env.field_unit(&m);
                    info.roots = vec![m];
                    info.all_literal = false;
                    info.lit_value = None;
                    info.proven_positive = false;
                    info.proven_nonneg = false;
                    info.end = p + 2;
                }
            }
            "[" => {
                // Indexing keeps the collection's (element) unit and roots.
                info.end = rules::skip_balanced(tokens, p, "[", "]").min(stop);
                info.all_literal = false;
                info.lit_value = None;
            }
            "?" => info.end = p + 1,
            "as" if tokens[p].kind == TokenKind::Ident => {
                // `x as f64`: unit and roots unchanged; consume the type path.
                let mut j = p + 1;
                while matches!(tokens.get(j), Some(t) if t.kind == TokenKind::Ident)
                    || matches!(tokens.get(j), Some(t) if t.text == "::")
                {
                    j += 1;
                }
                info.end = j.min(stop);
                info.lit_value = None;
            }
            _ => return,
        }
    }
}

/// Method-call effects on an in-flight term.
fn apply_method(
    ctx: &FileCtx<'_>,
    local: &LocalEnv,
    info: &mut ExprInfo,
    m: &str,
    args_a: usize,
    args_b: usize,
    depth: u32,
) {
    let arg = || -> Option<ExprInfo> {
        if args_a < args_b && depth < MAX_DEPTH {
            Some(parse_expr(ctx, local, args_a, args_b, depth + 1))
        } else {
            None
        }
    };
    info.all_literal = false;
    info.lit_value = None;
    match m {
        "max" => {
            if let Some(a) = arg() {
                if a.proven_positive {
                    info.proven_positive = true;
                }
                if a.proven_nonneg {
                    info.proven_nonneg = true;
                }
                if info.unit == Unit::Unknown && !a.all_literal {
                    info.unit = a.unit;
                }
                info.roots.extend(a.roots);
            }
        }
        "min" => {
            if let Some(a) = arg() {
                info.proven_positive &= a.proven_positive;
                info.proven_nonneg &= a.proven_nonneg;
                info.roots.extend(a.roots);
            }
        }
        "clamp" => {
            if let Some(a) = arg() {
                // `clamp(lo, hi)` bounds below by `lo`.
                info.proven_positive = a.proven_positive;
                info.proven_nonneg = a.proven_nonneg;
            }
        }
        "abs" => info.proven_nonneg = true,
        "exp" | "exp2" => {
            info.unit = Unit::Unknown;
            info.proven_positive = true;
            info.proven_nonneg = true;
        }
        "sqrt" => {
            info.unit = match info.unit.dim() {
                Some(d) if d.time % 2 == 0 && d.data % 2 == 0 => Unit::Known(Dim {
                    time: d.time / 2,
                    data: d.data / 2,
                }),
                _ => Unit::Unknown,
            };
            info.proven_positive = false;
        }
        "powi" => {
            // lint: allow(cast, reason = "exponent literals are tiny; saturation via Dim::pow caps the dimension anyway")
            let k = arg().and_then(|a| a.lit_value).map(|v| v as i8);
            info.unit = match (info.unit.dim(), k) {
                (Some(d), Some(k)) => Unit::Known(d.pow(k)),
                _ => Unit::Unknown,
            };
            if k.is_some_and(|k| k % 2 == 0) {
                info.proven_nonneg = true;
            }
        }
        "powf" | "ln" | "log2" | "log10" | "ln_1p" => {
            info.unit = Unit::Unknown;
            info.proven_positive = false;
            info.proven_nonneg = false;
        }
        "recip" => {
            info.unit = match info.unit.dim() {
                Some(d) => Unit::Known(Dim::RATIO.div(d)),
                None => Unit::Unknown,
            };
        }
        "len" | "count" => {
            info.unit = Unit::Known(Dim::RATIO);
            info.proven_nonneg = true;
            info.proven_positive = false;
        }
        "unwrap_or" => {
            if let Some(a) = arg() {
                if info.unit == Unit::Unknown {
                    info.unit = a.unit;
                }
                info.proven_positive &= a.proven_positive;
                info.proven_nonneg &= a.proven_nonneg;
            }
        }
        "unwrap" | "expect" | "unwrap_or_default" | "clone" | "copied" | "cloned" | "to_owned"
        | "floor" | "ceil" | "round" | "trunc" => {
            info.proven_positive = false; // floor(0.5) == 0
        }
        _ => {
            // Unknown method: adopt an annotated/heuristic return unit if
            // any (method position suppresses the bare-`capacity` match).
            info.unit = ctx.env.fn_unit(m, true);
            info.proven_positive = false;
            info.proven_nonneg = false;
            info.may_nan_call |= ctx.env.is_may_nan(m);
        }
    }
}

/// Parse a multiplicative chain (`a * b / c % d`) of terms.
fn parse_chain(
    ctx: &FileCtx<'_>,
    local: &LocalEnv,
    i: usize,
    stop: usize,
    depth: u32,
) -> Option<ExprInfo> {
    let mut acc = parse_term(ctx, local, i, stop, depth)?;
    loop {
        let op = match ctx.tokens.get(acc.end) {
            Some(t) if acc.end < stop && matches!(t.text.as_str(), "*" | "/" | "%") => {
                t.text.clone()
            }
            _ => return Some(acc),
        };
        let rhs = parse_term(ctx, local, acc.end + 1, stop, depth)?;
        acc.has_muldiv = true;
        if op == "/" {
            acc.has_div = true;
        }
        acc.unit = match (op.as_str(), acc.unit.dim(), rhs.unit.dim()) {
            ("%", l, _) => l.map_or(Unit::Unknown, Unit::Known),
            ("*", Some(l), Some(r)) => Unit::Known(l.mul(r)),
            ("/", Some(l), Some(r)) => Unit::Known(l.div(r)),
            _ => Unit::Unknown,
        };
        acc.all_literal &= rhs.all_literal;
        acc.lit_value = None;
        acc.proven_positive &= rhs.proven_positive;
        acc.proven_nonneg &= rhs.proven_nonneg && op != "%";
        acc.roots.extend(rhs.roots);
        acc.may_nan_call |= rhs.may_nan_call;
        acc.has_div |= rhs.has_div;
        acc.has_muldiv |= rhs.has_muldiv;
        acc.end = rhs.end;
    }
}

/// Parse a full expression (`chain (+|-|cmp) chain ...`) in `[i, limit)`.
/// Mixed-unit addends make the result Unknown (RN401 reports them from its
/// own operator scan); comparisons yield a unitless bool.
fn parse_expr(ctx: &FileCtx<'_>, local: &LocalEnv, i: usize, limit: usize, depth: u32) -> ExprInfo {
    let Some(mut acc) = parse_chain(ctx, local, i, limit, depth) else {
        let mut e = ExprInfo::unknown(i);
        collect_loose(ctx.tokens, i, limit, &mut e);
        e.end = limit;
        return e;
    };
    loop {
        let op = match ctx.tokens.get(acc.end) {
            Some(t)
                if acc.end < limit
                    && matches!(
                        t.text.as_str(),
                        "+" | "-" | "==" | "!=" | "<" | ">" | "<=" | ">="
                    ) =>
            {
                t.text.clone()
            }
            _ => return acc,
        };
        let Some(rhs) = parse_chain(ctx, local, acc.end + 1, limit, depth) else {
            acc.unit = Unit::Unknown;
            return acc;
        };
        let cmp = !matches!(op.as_str(), "+" | "-");
        acc.unit = if cmp {
            Unit::Unknown
        } else {
            match (
                acc.unit.dim(),
                acc.all_literal,
                rhs.unit.dim(),
                rhs.all_literal,
            ) {
                (Some(l), false, _, true) => Unit::Known(l),
                (_, true, Some(r), false) => Unit::Known(r),
                (Some(l), _, Some(r), _) if l == r => Unit::Known(l),
                _ => Unit::Unknown,
            }
        };
        acc.proven_positive = !cmp && op == "+" && acc.proven_positive && rhs.proven_nonneg
            || !cmp && op == "+" && acc.proven_nonneg && rhs.proven_positive;
        acc.proven_nonneg =
            !cmp && op == "+" && acc.proven_nonneg && rhs.proven_nonneg || acc.proven_positive;
        acc.all_literal &= rhs.all_literal;
        acc.lit_value = None;
        acc.roots.extend(rhs.roots);
        acc.may_nan_call |= rhs.may_nan_call;
        acc.has_div |= rhs.has_div;
        acc.has_muldiv |= rhs.has_muldiv;
        acc.end = rhs.end;
    }
}

/// Backward scan: the start index of the term ending just before `end`.
fn term_start(tokens: &[Token], end: usize) -> Option<usize> {
    let mut k = end.checked_sub(1)?;
    loop {
        // Consume trailing delimiter groups of this segment.
        let mut had_group = false;
        while matches!(tokens[k].text.as_str(), ")" | "]") {
            had_group = true;
            let open = open_of(tokens, k)?;
            if open == 0 {
                return Some(0);
            }
            k = open - 1;
        }
        if matches!(
            tokens[k].kind,
            TokenKind::Ident | TokenKind::Int | TokenKind::Float | TokenKind::Str
        ) && !matches!(tokens[k].text.as_str(), "as" | "in" | "return" | "else")
        {
            // Segment head (ident, call name, or literal); fall through.
        } else if had_group {
            // Pure parenthesized/indexed group: it starts right after `k`.
            return Some(k + 1);
        } else {
            return None;
        }
        if k >= 2 && matches!(tokens[k - 1].text.as_str(), "." | "::") {
            k -= 2;
            continue;
        }
        return Some(k);
    }
}

/// Backward-matching open delimiter for the close at `close_idx`.
fn open_of(tokens: &[Token], close_idx: usize) -> Option<usize> {
    let close = tokens[close_idx].text.as_str();
    let open = match close {
        ")" => "(",
        "]" => "[",
        "}" => "{",
        _ => return None,
    };
    let mut depth = 0i32;
    let mut k = close_idx;
    loop {
        if tokens[k].text == close {
            depth += 1;
        } else if tokens[k].text == open {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
        k = k.checked_sub(1)?;
    }
}

/// Start of the multiplicative chain whose last term ends just before `op`.
fn chain_start(tokens: &[Token], op: usize) -> Option<usize> {
    let mut start = term_start(tokens, op)?;
    while start >= 2 && matches!(tokens[start - 1].text.as_str(), "*" | "/" | "%") {
        start = term_start(tokens, start - 1)?;
    }
    Some(start)
}

// ---------------------------------------------------------------------------
// Guard evidence
// ---------------------------------------------------------------------------

/// Is there function-local evidence that `root` is nonzero/positive? Looks
/// for zero comparisons, emptiness checks, assert-macro mentions, monotone
/// `+= 1` counters, and `.max(positive)` rebinds, following `let a = b` /
/// `let n = xs.len()` aliases.
fn has_evidence(
    ctx: &FileCtx<'_>,
    local: &LocalEnv,
    fspan: &FnSpan,
    root: &str,
    hops: u32,
) -> bool {
    if local.is_positive(root) {
        return true;
    }
    let (a, b) = fspan.body_tokens;
    let tokens = ctx.tokens;
    let asserts = assert_spans(tokens, a, b);
    for k in a..b.min(tokens.len()) {
        if tokens[k].kind != TokenKind::Ident || tokens[k].text != root {
            continue;
        }
        if asserts.iter().any(|&(s, e)| (s..e).contains(&k)) {
            return true;
        }
        // `root <cmp> 0` / `root > <pos>` (and the mirrored `0 < root` is
        // caught when the scan lands on the literal side's comparison).
        if let (Some(op), Some(lit)) = (tokens.get(k + 1), tokens.get(k + 2)) {
            let v = lit_value(&lit.text);
            let zero_cmp =
                matches!(op.text.as_str(), "==" | "!=" | "<" | ">" | "<=" | ">=") && v == Some(0.0);
            let pos_cmp = matches!(op.text.as_str(), ">" | ">=") && v.is_some_and(|v| v > 0.0);
            let counter = op.text == "+=" && v.is_some_and(|v| v > 0.0);
            if zero_cmp || pos_cmp || counter {
                return true;
            }
        }
        if k >= 2 {
            let (lit, op) = (&tokens[k - 2], &tokens[k - 1]);
            if matches!(op.text.as_str(), "==" | "!=" | "<" | ">" | "<=" | ">=")
                && lit_value(&lit.text) == Some(0.0)
            {
                return true;
            }
        }
        // `root.is_empty()` / `root.max(pos)`.
        if matches!(tokens.get(k + 1), Some(t) if t.text == ".") {
            match tokens.get(k + 2).map(|t| t.text.as_str()) {
                Some("is_empty") => return true,
                Some("max")
                    if matches!(tokens.get(k + 3), Some(t) if t.text == "(")
                        && tokens
                            .get(k + 4)
                            .and_then(|t| lit_value(&t.text))
                            .is_some_and(|v| v > 0.0) =>
                {
                    return true;
                }
                _ => {}
            }
        }
    }
    if hops < 4 {
        if let Some(src) = local.alias_of(root) {
            if src != root && has_evidence(ctx, local, fspan, src, hops + 1) {
                return true;
            }
        }
    }
    false
}

/// Token spans of `assert!`/`debug_assert!`-family macro invocations.
fn assert_spans(tokens: &[Token], a: usize, b: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for k in a..b.min(tokens.len()) {
        if tokens[k].kind == TokenKind::Ident
            && matches!(
                tokens[k].text.as_str(),
                "assert"
                    | "debug_assert"
                    | "assert_eq"
                    | "assert_ne"
                    | "debug_assert_eq"
                    | "debug_assert_ne"
            )
            && matches!(tokens.get(k + 1), Some(t) if t.text == "!")
            && matches!(tokens.get(k + 2), Some(t) if t.text == "(")
        {
            out.push((k, rules::skip_balanced(tokens, k + 2, "(", ")")));
        }
    }
    out
}

/// Does `[a, b)` contain an unproven division/domain op, a `f64::NAN`, or a
/// call to a may-NaN function? Used for taint seeding and RN406 arguments.
fn range_possibly_nan(
    ctx: &FileCtx<'_>,
    local: &LocalEnv,
    fspan: &FnSpan,
    a: usize,
    b: usize,
) -> bool {
    let tokens = ctx.tokens;
    let b = b.min(tokens.len());
    for k in a..b {
        let t = &tokens[k];
        if t.kind == TokenKind::Ident {
            if t.text == "NAN" {
                return true;
            }
            if ctx.env.is_may_nan(&t.text) && matches!(tokens.get(k + 1), Some(n) if n.text == "(")
            {
                return true;
            }
            if local.tainted.contains(&t.text) {
                return true;
            }
        }
        if (t.text == "/" || t.text == "/=") && is_binary_pos(tokens, k) {
            if let Some(d) = parse_term(ctx, local, k + 1, b, 0) {
                if !div_proven(ctx, local, fspan, &d) {
                    return true;
                }
            } else {
                return true;
            }
        }
        if t.text == "."
            && matches!(
                tokens.get(k + 1).map(|t| t.text.as_str()),
                Some("ln" | "log2" | "log10" | "sqrt" | "powf")
            )
            && matches!(tokens.get(k + 2), Some(t) if t.text == "(")
        {
            if let Some((recv, op)) = receiver_of(ctx, local, k) {
                if !domain_proven(ctx, local, fspan, &recv, op) {
                    return true;
                }
            } else {
                return true;
            }
        }
    }
    false
}

/// Is the token at `k` in binary-operator position?
fn is_binary_pos(tokens: &[Token], k: usize) -> bool {
    k > 0
        && (matches!(
            tokens[k - 1].kind,
            TokenKind::Ident | TokenKind::Int | TokenKind::Float
        ) || matches!(tokens[k - 1].text.as_str(), ")" | "]" | "?"))
}

/// Is the denominator term proven nonzero?
fn div_proven(ctx: &FileCtx<'_>, local: &LocalEnv, fspan: &FnSpan, d: &ExprInfo) -> bool {
    if d.all_literal {
        // lint: allow(float-eq, reason = "exact-zero test on a source literal: `x / 0.0` is the one value we must reject")
        return d.lit_value.is_some_and(|v| v != 0.0);
    }
    if d.proven_positive {
        return true;
    }
    !d.roots.is_empty()
        && d.roots
            .iter()
            .all(|r| has_evidence(ctx, local, fspan, r, 0))
}

/// Is the receiver of `ln`/`sqrt`/`powf`-family in-domain?
fn domain_proven(
    ctx: &FileCtx<'_>,
    local: &LocalEnv,
    fspan: &FnSpan,
    recv: &ExprInfo,
    op: &str,
) -> bool {
    if recv.proven_positive {
        return true;
    }
    if op == "sqrt" && recv.proven_nonneg {
        return true;
    }
    if recv.all_literal {
        let min_ok = if op == "sqrt" { 0.0 } else { f64::MIN_POSITIVE };
        return recv.lit_value.is_some_and(|v| v >= min_ok);
    }
    !recv.roots.is_empty()
        && recv
            .roots
            .iter()
            .all(|r| has_evidence(ctx, local, fspan, r, 0))
}

/// Parse the receiver term of a `.method(` at dot index `k`; returns the
/// receiver info and the method name.
fn receiver_of<'a>(ctx: &FileCtx<'a>, local: &LocalEnv, k: usize) -> Option<(ExprInfo, &'a str)> {
    let start = term_start(ctx.tokens, k)?;
    let recv = parse_term(ctx, local, start, k, 0)?;
    if recv.end != k {
        return None;
    }
    Some((recv, ctx.tokens[k + 1].text.as_str()))
}

// ---------------------------------------------------------------------------
// The rule pass
// ---------------------------------------------------------------------------

/// Telemetry/loss/feature/label sinks for RN403/RN406. Methods whose callee
/// checks `is_finite` itself (e.g. an accumulator's `record`) are exempt at
/// the call site — the boundary lives in the callee.
const NAN_SINK_METHODS: &[&str] = &["emit", "observe_s", "gauge_set", "record", "set", "mse"];
/// Struct literals that carry labels (the poisoned-tape sink list's
/// source-side counterpart).
const NAN_SINK_STRUCTS: &[&str] = &["TargetKpi", "Prediction"];
/// Intrinsically unitless transforms (RN403).
const UNITLESS_FNS: &[&str] = &["sigmoid", "softplus", "logistic"];
const UNITLESS_METHODS: &[&str] = &["exp", "exp2", "tanh"];

/// Run the RN401–RN406 passes over one file. `env` is the workspace
/// environment; pass a single-file env for isolated analysis.
pub(crate) fn numeric_rules(
    file: &str,
    lexed: &Lexed,
    fns: &[FnSpan],
    env: &UnitEnv,
    out: &mut Vec<Diagnostic>,
) {
    let ctx = FileCtx {
        file,
        tokens: &lexed.tokens,
        env,
    };
    let test_spans = rules::test_mod_spans(&lexed.tokens);

    // Malformed `unit:` annotations are a lint-syntax error: a typo'd unit
    // would otherwise silently disable inference.
    for c in &lexed.comments {
        if rules::in_spans(c.line, &test_spans) {
            continue;
        }
        if let Some(value) = unit_annotation(c) {
            if parse_unit_text(value).is_none() {
                out.push(Diagnostic::new(
                    "lint-syntax",
                    file,
                    c.line,
                    format!("unknown unit `{value}` in annotation (known: {KNOWN_UNITS})"),
                ));
            }
        }
    }

    let locals: Vec<LocalEnv> = fns.iter().map(|f| build_local_env(&ctx, f)).collect();
    let innermost = |idx: usize| -> Option<usize> {
        fns.iter()
            .enumerate()
            .filter(|(_, f)| f.body_tokens.0 < idx && idx < f.body_tokens.1)
            .min_by_key(|(_, f)| f.body_tokens.1 - f.body_tokens.0)
            .map(|(i, _)| i)
    };
    let mut flagged: Vec<(u32, &'static str)> = Vec::new();
    let flag = |out: &mut Vec<Diagnostic>,
                flagged: &mut Vec<(u32, &'static str)>,
                rule: &'static str,
                line: u32,
                msg: String| {
        if !flagged.contains(&(line, rule)) {
            flagged.push((line, rule));
            out.push(Diagnostic::new(rule, file, line, msg));
        }
    };

    let tokens = &lexed.tokens;
    for i in 0..tokens.len() {
        let t = &tokens[i];
        let Some(fi) = innermost(i) else { continue };
        let (fspan, local) = (&fns[fi], &locals[fi]);

        // RN401: mixed-unit add/sub/compare (and unit-changing `*=`/`/=`).
        if t.kind == TokenKind::Punct
            && matches!(
                t.text.as_str(),
                "+" | "-" | "==" | "!=" | "<" | ">" | "<=" | ">=" | "+=" | "-="
            )
            && is_binary_pos(tokens, i)
            && tokens[i - 1].text != "::"
        {
            if let Some((l, r)) = operand_pair(&ctx, local, i) {
                if let (Some(ld), Some(rd)) = (l.unit.dim(), r.unit.dim()) {
                    if ld != rd && !l.all_literal && !r.all_literal {
                        flag(
                            out,
                            &mut flagged,
                            "unit-mismatch",
                            t.line,
                            format!(
                                "mixed units: `{}` {} `{}` — these quantities have different dimensions",
                                ld.name(),
                                t.text,
                                rd.name()
                            ),
                        );
                    }
                }
            }
        }
        if t.kind == TokenKind::Punct && matches!(t.text.as_str(), "*=" | "/=") {
            if let Some((l, r)) = operand_pair(&ctx, local, i) {
                if let (Some(ld), Some(rd)) = (l.unit.dim(), r.unit.dim()) {
                    if rd != Dim::RATIO && !r.all_literal {
                        let res = if t.text == "*=" {
                            ld.mul(rd)
                        } else {
                            ld.div(rd)
                        };
                        flag(
                            out,
                            &mut flagged,
                            "unit-dimension",
                            t.line,
                            format!(
                                "`{}` by a `{}` value changes the dimension to `{}` but the binding carries `{}`",
                                t.text,
                                rd.name(),
                                res.name(),
                                ld.name()
                            ),
                        );
                    }
                }
            }
        }

        // RN402: binding whose RHS dimension contradicts the declared unit.
        if t.kind == TokenKind::Ident && t.text == "let" {
            if let Some((name, line, decl, rhs)) = let_binding(&ctx, local, fspan, i) {
                if let (Some(dd), Some(rd)) = (decl.dim(), rhs.unit.dim()) {
                    if dd != rd && !rhs.all_literal {
                        let kind = if rhs.has_muldiv {
                            "the arithmetic produces"
                        } else {
                            "the value carries"
                        };
                        flag(
                            out,
                            &mut flagged,
                            "unit-dimension",
                            line,
                            format!(
                                "`{name}` is declared/derived as `{}` but {kind} `{}`",
                                dd.name(),
                                rd.name()
                            ),
                        );
                    }
                }
            }
        }

        // RN402 (clamp-mask): `.min(1.0)` / `.clamp(0.0, 1.0)` applied to a
        // division result — the PR 4 utilization-clamp bug shape. A ratio
        // above 1 means the numerator over-counts; clamping hides it.
        if t.text == "."
            && matches!(
                tokens.get(i + 1).map(|x| x.text.as_str()),
                Some("min" | "clamp")
            )
            && matches!(tokens.get(i + 2), Some(x) if x.text == "(")
        {
            let is_ratio_clamp = match tokens[i + 1].text.as_str() {
                "min" => {
                    tokens.get(i + 3).and_then(|x| lit_value(&x.text)) == Some(1.0)
                        && matches!(tokens.get(i + 4), Some(x) if x.text == ")")
                }
                _ => {
                    tokens.get(i + 3).and_then(|x| lit_value(&x.text)) == Some(0.0)
                        && matches!(tokens.get(i + 4), Some(x) if x.text == ",")
                        && tokens.get(i + 5).and_then(|x| lit_value(&x.text)) == Some(1.0)
                }
            };
            if is_ratio_clamp {
                if let Some(start) = term_start(tokens, i) {
                    if tokens[start..i].iter().any(|x| x.text == "/") {
                        flag(
                            out,
                            &mut flagged,
                            "unit-dimension",
                            t.line,
                            format!(
                                "`.{}(..)` caps a division result into a ratio range — a value above 1 means the numerator over-counts; fix the measurement instead of clamping",
                                tokens[i + 1].text
                            ),
                        );
                    }
                }
            }
        }

        // RN403: unit-carrying values into unitless transforms.
        if t.kind == TokenKind::Ident
            && UNITLESS_FNS.contains(&t.text.as_str())
            && matches!(tokens.get(i + 1), Some(x) if x.text == "(")
            && (i == 0 || tokens[i - 1].text != "fn")
        {
            let close = rules::skip_balanced(tokens, i + 1, "(", ")");
            for (a, b) in split_args(tokens, i + 2, close.saturating_sub(1)) {
                let e = parse_expr(&ctx, local, a, b, 0);
                if let Some(d) = e.unit.dim() {
                    if d != Dim::RATIO && !e.all_literal {
                        flag(
                            out,
                            &mut flagged,
                            "unit-sink",
                            t.line,
                            format!(
                                "`{}` takes a unitless ratio but the argument carries `{}` — normalize first",
                                t.text,
                                d.name()
                            ),
                        );
                    }
                }
            }
        }
        if t.text == "."
            && matches!(tokens.get(i + 1), Some(x) if x.kind == TokenKind::Ident && UNITLESS_METHODS.contains(&x.text.as_str()))
            && matches!(tokens.get(i + 2), Some(x) if x.text == "(")
        {
            if let Some((recv, m)) = receiver_of(&ctx, local, i) {
                if let Some(d) = recv.unit.dim() {
                    if d != Dim::RATIO && !recv.all_literal {
                        flag(
                            out,
                            &mut flagged,
                            "unit-sink",
                            t.line,
                            format!(
                                "`.{m}()` is unitless but its receiver carries `{}` — normalize first",
                                d.name()
                            ),
                        );
                    }
                }
            }
        }

        // RN404: division with an unproven denominator.
        if t.kind == TokenKind::Punct
            && (t.text == "/" || t.text == "/=")
            && is_binary_pos(tokens, i)
        {
            match parse_term(&ctx, local, i + 1, tokens.len(), 0) {
                Some(d) if !div_proven(&ctx, local, fspan, &d) => {
                    let denom = tokens[i + 1..d.end.min(i + 7)]
                        .iter()
                        .map(|x| x.text.as_str())
                        .collect::<Vec<_>>()
                        .join("");
                    flag(
                        out,
                        &mut flagged,
                        "nan-div",
                        t.line,
                        format!(
                            "denominator `{denom}` is not proven nonzero — guard with a zero check, `.max(..)`, or an assert"
                        ),
                    );
                }
                _ => {}
            }
        }

        // RN405: domain ops on values not proven in-domain.
        if t.text == "."
            && matches!(
                tokens.get(i + 1).map(|x| x.text.as_str()),
                Some("ln" | "log2" | "log10" | "sqrt" | "powf")
            )
            && matches!(tokens.get(i + 2), Some(x) if x.text == "(")
        {
            let proven = match receiver_of(&ctx, local, i) {
                Some((recv, op)) => domain_proven(&ctx, local, fspan, &recv, op),
                None => false,
            };
            if !proven {
                let need = if tokens[i + 1].text == "sqrt" {
                    "nonnegative"
                } else {
                    "positive"
                };
                flag(
                    out,
                    &mut flagged,
                    "nan-domain",
                    t.line,
                    format!(
                        "`.{}()` on a value not proven {need} — NaN would poison every consumer; guard with `.max(..)` or an assert",
                        tokens[i + 1].text
                    ),
                );
            }
        }

        // RN406: possibly-NaN values into label/feature/loss/telemetry sinks.
        let sink_method = t.text == "."
            && matches!(tokens.get(i + 1), Some(x) if x.kind == TokenKind::Ident && NAN_SINK_METHODS.contains(&x.text.as_str()))
            && matches!(tokens.get(i + 2), Some(x) if x.text == "(");
        let sink_struct = t.kind == TokenKind::Ident
            && NAN_SINK_STRUCTS.contains(&t.text.as_str())
            && matches!(tokens.get(i + 1), Some(x) if x.text == "{");
        if sink_method || sink_struct {
            let fn_checks = {
                let (a, b) = fspan.body_tokens;
                tokens[a..b.min(tokens.len())].iter().any(|x| {
                    x.kind == TokenKind::Ident
                        && matches!(x.text.as_str(), "is_finite" | "is_nan" | "is_normal")
                })
            };
            let (name, a, b) = if sink_method {
                let close = rules::skip_balanced(tokens, i + 2, "(", ")");
                (tokens[i + 1].text.as_str(), i + 3, close.saturating_sub(1))
            } else {
                let close = rules::skip_balanced(tokens, i + 1, "{", "}");
                (t.text.as_str(), i + 2, close.saturating_sub(1))
            };
            let callee_checks = sink_method && env.checks_finite(name);
            if !fn_checks && !callee_checks && range_possibly_nan(&ctx, local, fspan, a, b) {
                flag(
                    out,
                    &mut flagged,
                    "nan-sink",
                    t.line,
                    format!(
                        "possibly-NaN value flows into `{name}` without an `is_finite` check — NaN in labels/features/telemetry poisons downstream consumers silently"
                    ),
                );
            }
        }
    }
}

/// Left and right operand chains around the operator at `i`.
fn operand_pair(ctx: &FileCtx<'_>, local: &LocalEnv, i: usize) -> Option<(ExprInfo, ExprInfo)> {
    let lstart = chain_start(ctx.tokens, i)?;
    let left = parse_chain(ctx, local, lstart, i, 0)?;
    if left.end != i {
        return None;
    }
    let right = parse_chain(ctx, local, i + 1, ctx.tokens.len(), 0)?;
    Some((left, right))
}

/// Parse the binding introduced by the `let` at `i`; returns
/// `(name, line, declared unit, RHS info)`.
fn let_binding(
    ctx: &FileCtx<'_>,
    local: &LocalEnv,
    fspan: &FnSpan,
    i: usize,
) -> Option<(String, u32, Unit, ExprInfo)> {
    let tokens = ctx.tokens;
    let mut j = i + 1;
    if matches!(tokens.get(j), Some(t) if t.text == "mut") {
        j += 1;
    }
    let name_tok = tokens.get(j)?;
    if name_tok.kind != TokenKind::Ident
        || !matches!(tokens.get(j + 1).map(|t| t.text.as_str()), Some(":" | "="))
    {
        return None;
    }
    let mut eq = j + 1;
    let end = fspan.body_tokens.1;
    while eq < end && tokens[eq].text != "=" && tokens[eq].text != ";" {
        eq += 1;
    }
    if eq >= end || tokens[eq].text != "=" {
        return None;
    }
    let mut depth = 0i32;
    let mut rend = eq + 1;
    while rend < end {
        match tokens[rend].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth == 0 => break,
            _ => {}
        }
        rend += 1;
    }
    let rhs = parse_expr(ctx, local, eq + 1, rend, 0);
    let decl = ctx
        .env
        .local_annotation(ctx.file, name_tok.line, &name_tok.text)
        .map(Unit::Known)
        .unwrap_or_else(|| unit_from_name(&name_tok.text, false));
    Some((name_tok.text.clone(), name_tok.line, decl, rhs))
}

/// Split `[a, b)` at depth-0 commas.
fn split_args(tokens: &[Token], a: usize, b: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = a;
    for (k, tok) in tokens.iter().enumerate().take(b.min(tokens.len())).skip(a) {
        match tok.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => {
                if k > start {
                    out.push((start, k));
                }
                start = k + 1;
            }
            _ => {}
        }
    }
    if b > start {
        out.push((start, b));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(source: &str) -> Vec<Diagnostic> {
        let env = UnitEnv::build(&[("t.rs".to_string(), source.to_string())]);
        let lexed = lex(source);
        let fns = rules::function_spans(&lexed.tokens);
        let mut out = Vec::new();
        numeric_rules("t.rs", &lexed, &fns, &env, &mut out);
        out
    }

    fn rules_of(ds: &[Diagnostic]) -> Vec<&str> {
        ds.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn dim_algebra() {
        assert_eq!(Dim::BPS.mul(Dim::SECONDS), Dim::BITS);
        assert_eq!(Dim::BITS.div(Dim::SECONDS), Dim::BPS);
        assert_eq!(Dim::SECONDS.name(), "s");
        assert_eq!(Dim::BPS.name(), "bit/s");
        assert_eq!(parse_unit_text("bit/s"), Some(Dim::BPS));
        assert_eq!(parse_unit_text("furlongs"), None);
    }

    #[test]
    fn name_heuristics() {
        assert_eq!(
            unit_from_name("mean_delay_s", false),
            Unit::Known(Dim::SECONDS)
        );
        assert_eq!(unit_from_name("jitter_s2", false), Unit::Known(Dim::S2));
        assert_eq!(unit_from_name("offered_bps", false), Unit::Known(Dim::BPS));
        assert_eq!(unit_from_name("capacity", false), Unit::Known(Dim::BPS));
        assert_eq!(unit_from_name("capacity", true), Unit::Unknown);
        assert_eq!(unit_from_name("with_capacity", false), Unit::Unknown);
        assert_eq!(
            unit_from_name("link_utilization", false),
            Unit::Known(Dim::RATIO)
        );
        assert_eq!(unit_from_name("total", false), Unit::Unknown);
    }

    #[test]
    fn rn401_mixed_add_and_compare() {
        let ds =
            run("fn f(mean_delay_s: f64, offered_bps: f64) -> f64 { mean_delay_s + offered_bps }");
        assert_eq!(rules_of(&ds), ["unit-mismatch"]);
        let ds = run("fn f(a_s: f64, b_bps: f64) -> bool { a_s < b_bps }");
        assert_eq!(rules_of(&ds), ["unit-mismatch"]);
        // Same unit, literals, and unknowns stay silent.
        assert!(run("fn f(a_s: f64, b_s: f64) -> f64 { a_s + b_s }").is_empty());
        assert!(run("fn f(a_s: f64) -> f64 { a_s + 1.0 }").is_empty());
        assert!(run("fn f(a_s: f64, x: f64) -> f64 { a_s + x }").is_empty());
    }

    #[test]
    fn rn401_sees_through_products() {
        // bit/s * s = bits; bits + s mismatches.
        let ds =
            run("fn f(rate_bps: f64, dt_s: f64, lag_s: f64) -> f64 { rate_bps * dt_s + lag_s }");
        assert_eq!(rules_of(&ds), ["unit-mismatch"]);
        // bit/s * s + bits is consistent.
        assert!(run("fn f(rate_bps: f64, dt_s: f64, backlog_bits: f64) -> f64 { rate_bps * dt_s + backlog_bits }").is_empty());
    }

    #[test]
    fn rn402_binding_dimension() {
        let ds = run("fn f(a_s: f64, b_s: f64) -> f64 { let x_s = a_s / b_s.max(1e-9); x_s }");
        assert_eq!(rules_of(&ds), ["unit-dimension"]);
        assert!(run(
            "fn f(bits: f64, dt_s: f64) -> f64 { let rate_bps = bits / dt_s.max(1e-9); rate_bps }"
        )
        .is_empty());
    }

    #[test]
    fn rn402_ratio_clamp_mask() {
        let ds =
            run("fn f(busy_s: f64, win_s: f64) -> f64 { (busy_s / win_s.max(1e-9)).min(1.0) }");
        assert_eq!(rules_of(&ds), ["unit-dimension"]);
        let ds = run(
            "fn f(busy_s: f64, win_s: f64) -> f64 { (busy_s / win_s.max(1e-9)).clamp(0.0, 1.0) }",
        );
        assert_eq!(rules_of(&ds), ["unit-dimension"]);
        // `.min` on a non-division is fine.
        assert!(run("fn f(a: f64) -> f64 { a.min(1.0) }").is_empty());
    }

    #[test]
    fn rn403_unit_into_unitless() {
        let ds = run("fn f(delay_s: f64) -> f64 { sigmoid(delay_s) }\nfn sigmoid(x: f64) -> f64 { x.max(1.0) }");
        assert_eq!(rules_of(&ds), ["unit-sink"]);
        let ds = run("fn f(delay_s: f64) -> f64 { (delay_s).exp() }");
        assert_eq!(rules_of(&ds), ["unit-sink"]);
        assert!(run("fn f(u_ratio: f64) -> f64 { sigmoid(u_ratio) }\nfn sigmoid(x: f64) -> f64 { x.max(1.0) }").is_empty());
    }

    #[test]
    fn rn404_unguarded_division() {
        let ds = run("fn f(a: f64, n: f64) -> f64 { a / n }");
        assert_eq!(rules_of(&ds), ["nan-div"]);
        // Guards: max, zero-compare, assert, monotone counter, literal.
        assert!(run("fn f(a: f64, n: f64) -> f64 { a / n.max(1e-9) }").is_empty());
        assert!(
            run("fn f(a: f64, n: f64) -> f64 { if n == 0.0 { return 0.0; } a / n }").is_empty()
        );
        assert!(run("fn f(a: f64, n: f64) -> f64 { debug_assert!(n > 0.0); a / n }").is_empty());
        assert!(run("fn f(a: f64) -> f64 { let mut c = 0u32; c += 1; a / c as f64 }").is_empty());
        assert!(run("fn f(a: f64) -> f64 { a / 2.0 }").is_empty());
    }

    #[test]
    fn rn404_alias_through_len() {
        assert!(run(
            "fn f(xs: &[f64]) -> f64 { assert!(!xs.is_empty()); let n = xs.len(); xs[0] / n as f64 }"
        )
        .is_empty());
        let ds = run("fn f(xs: &[f64]) -> f64 { let n = xs.len(); xs[0] / n as f64 }");
        assert_eq!(rules_of(&ds), ["nan-div"]);
    }

    #[test]
    fn rn405_domain_ops() {
        let ds = run("fn f(x: f64) -> f64 { x.ln() }");
        assert_eq!(rules_of(&ds), ["nan-domain"]);
        let ds = run("fn f(x: f64) -> f64 { x.sqrt() }");
        assert_eq!(rules_of(&ds), ["nan-domain"]);
        assert!(run("fn f(x: f64) -> f64 { x.max(1e-12).ln() }").is_empty());
        assert!(run("fn f(x: f64) -> f64 { x.max(0.0).sqrt() }").is_empty());
        assert!(run("fn f(x: f64) -> f64 { debug_assert!(x > 0.0); x.ln() }").is_empty());
        assert!(run("fn f(x: f64) -> f64 { x.abs().sqrt() }").is_empty());
        assert!(run("fn f(x: f64) -> f64 { x.powi(2) }").is_empty());
    }

    #[test]
    fn rn406_taint_into_sink() {
        // Unproven division taints `v`, which reaches telemetry.
        let ds = run("fn f(tel: &T, a: f64, n: f64) { let v = a / n; tel.gauge_set(\"x\", v); }");
        assert!(rules_of(&ds).contains(&"nan-sink"));
        // An is_finite boundary in the function suppresses the sink finding.
        assert!(!rules_of(&run(
            "fn f(tel: &T, a: f64, n: f64) { let v = a / n; if v.is_finite() { tel.gauge_set(\"x\", v); } }"
        ))
        .contains(&"nan-sink"));
        // A guarded division is not tainted.
        assert!(!rules_of(&run(
            "fn f(tel: &T, a: f64, n: f64) { let v = a / n.max(1e-9); tel.gauge_set(\"x\", v); }"
        ))
        .contains(&"nan-sink"));
    }

    #[test]
    fn rn406_callee_boundary_and_transitive() {
        // The callee checks is_finite: call sites are exempt.
        let src = "\
fn record(x: f64) { debug_assert!(x.is_finite()); }\n\
fn f(acc: &mut A, a: f64, n: f64) { let v = a / n; acc.record(v); }";
        assert!(!rules_of(&run(src)).contains(&"nan-sink"));
        // may-NaN propagates through calls into a sink.
        let src = "\
fn ratio(a: f64, n: f64) -> f64 { a / n }\n\
fn f(tel: &T, a: f64, n: f64) { tel.gauge_set(\"x\", ratio(a, n)); }";
        assert!(rules_of(&run(src)).contains(&"nan-sink"));
    }

    #[test]
    fn annotations_seed_units() {
        // A field annotation overrides heuristics; mixing then flags.
        let src = "\
struct S {\n    /// unit: bit/s\n    pub load: f64,\n}\n\
fn f(s: &S, d_s: f64) -> f64 { s.load + d_s }";
        assert_eq!(rules_of(&run(src)), ["unit-mismatch"]);
        // Fn annotation gives calls a return unit.
        let src = "\
/// unit: s\nfn lag(x: f64) -> f64 { x.max(1e-9) }\n\
fn f(rate_bps: f64, y: f64) -> f64 { lag(y) + rate_bps }";
        assert_eq!(rules_of(&run(src)), ["unit-mismatch"]);
    }

    #[test]
    fn malformed_annotation_is_lint_syntax() {
        let src = "/// unit: furlongs\nfn f(x: f64) -> f64 { x.max(1.0) }";
        let ds = run(src);
        assert_eq!(rules_of(&ds), ["lint-syntax"]);
        assert!(ds[0].message.contains("furlongs"));
    }

    #[test]
    fn return_unit_inference_crosses_calls() {
        // `half` returns s (inferred from its body), so `f` mixing it with
        // bit/s flags even with no annotation anywhere.
        let src = "\
fn half(d_s: f64) -> f64 { d_s / 2.0 }\n\
fn f(rate_bps: f64, y: f64) -> f64 { half(y) + rate_bps }";
        assert_eq!(rules_of(&run(src)), ["unit-mismatch"]);
    }

    #[test]
    fn tests_are_exempt() {
        let src = "\
#[cfg(test)]\nmod tests {\n    fn f(a: f64, n: f64) -> f64 { a / n }\n}";
        // Raw findings are produced but the caller (analyze_source_with)
        // filters test spans; numeric_rules itself reports them.
        let env = UnitEnv::build(&[("t.rs".to_string(), src.to_string())]);
        assert!(env.may_nan.is_empty()); // env build skips test bodies
    }
}
