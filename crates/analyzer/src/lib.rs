//! # routenet-analyzer
//!
//! Dependency-free static-analysis gate for the RouteNet workspace. The
//! offline toolchain rules out `syn`-based tooling, so this crate carries its
//! own minimal Rust lexer ([`lexer`]) and a set of token-level rules
//! ([`rules`]) tuned to the failure modes that would invalidate the paper's
//! generalization results: hidden panics in hot paths, NaN-unsound float
//! handling, silently truncating casts, and undocumented invariants.
//!
//! Entry points: [`analyze_workspace`] (what `scripts/check.sh` and CI run)
//! and [`analyze_paths`] (explicit files, all rules on — used by the fixture
//! tests). Both produce a [`Report`] with `file:line` diagnostics and a
//! machine-readable JSON rendering.

pub mod lexer;
pub mod rules;

use rules::{AllowEntry, Diagnostic, InvariantEntry, RuleSet};
use std::fs;
use std::path::{Path, PathBuf};

/// Files whose library code gets the full panic audit including the bare
/// slice-indexing check (the paper-critical hot paths).
pub const HOT_PATHS: &[&str] = &[
    "crates/nn/src/tape.rs",
    "crates/simnet/src/sim.rs",
    "crates/core/src/model.rs",
    "crates/core/src/trainer.rs",
];

/// Directory components that exclude a file from analysis entirely.
const SKIP_DIRS: &[&str] = &[
    "tests", "benches", "examples", "fixtures", "target", "vendor",
];

/// Aggregated analysis result over a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, ordered by file then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Index of every `// INVARIANT:` annotation found.
    pub invariants: Vec<InvariantEntry>,
    /// Every `// lint: allow(..)` justification in force.
    pub allows: Vec<AllowEntry>,
}

impl Report {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Order diagnostics by `(file, line, rule)` so reports are stable
    /// across filesystem iteration order.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.invariants
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        self.allows
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    }

    /// Human-readable diagnostics, one `file:line: [rule] message` per line.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                d.file, d.line, d.rule, d.message
            ));
        }
        out.push_str(&format!(
            "{} file(s) scanned, {} diagnostic(s), {} invariant(s) indexed ({} checked), {} allow justification(s)\n",
            self.files_scanned,
            self.diagnostics.len(),
            self.invariants.len(),
            self.invariants.iter().filter(|i| i.checked).count(),
            self.allows.len(),
        ));
        out
    }

    /// Machine-readable JSON rendering (hand-rolled: this crate is
    /// dependency-free so it can never be broken by the code it audits).
    pub fn json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"version\": 1,\n  \"files_scanned\": {},\n",
            self.files_scanned
        ));
        out.push_str("  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}{}\n",
                json_str(d.rule),
                json_str(&d.file),
                d.line,
                json_str(&d.message),
                comma(i, self.diagnostics.len()),
            ));
        }
        out.push_str("  ],\n  \"invariants\": [\n");
        for (i, v) in self.invariants.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"function\": {}, \"text\": {}, \"checked\": {}}}{}\n",
                json_str(&v.file),
                v.line,
                json_str(&v.function),
                json_str(&v.text),
                v.checked,
                comma(i, self.invariants.len()),
            ));
        }
        out.push_str("  ],\n  \"allows\": [\n");
        for (i, a) in self.allows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"reason\": {}}}{}\n",
                json_str(&a.file),
                a.line,
                json_str(&a.rule),
                json_str(&a.reason),
                comma(i, self.allows.len()),
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 == len {
        ""
    } else {
        ","
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Errors from the filesystem walk.
#[derive(Debug)]
pub struct AnalyzeError {
    /// What went wrong, with the offending path.
    pub message: String,
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for AnalyzeError {}

/// Analyze the whole workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml`). Scans `src/` and `crates/*/src/`; `tests/`,
/// `benches/`, `examples/`, `fixtures/`, and `vendor/` are exempt, and
/// `src/bin/` is exempt from the panic audit only.
pub fn analyze_workspace(root: &Path) -> Result<Report, AnalyzeError> {
    let mut files = Vec::new();
    for base in ["src", "crates"] {
        let dir = root.join(base);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut report = Report::default();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let rules = rules_for(&rel);
        analyze_one(path, &rel, rules, &mut report)?;
    }
    report.sort();
    Ok(report)
}

/// Analyze explicit paths with every rule enabled (fixture mode).
pub fn analyze_paths(paths: &[PathBuf]) -> Result<Report, AnalyzeError> {
    let mut report = Report::default();
    for path in paths {
        let rel = path.to_string_lossy().replace('\\', "/");
        analyze_one(path, &rel, RuleSet::all(), &mut report)?;
    }
    report.sort();
    Ok(report)
}

fn analyze_one(
    path: &Path,
    rel: &str,
    rules: RuleSet,
    report: &mut Report,
) -> Result<(), AnalyzeError> {
    let source = fs::read_to_string(path).map_err(|e| AnalyzeError {
        message: format!("cannot read {}: {e}", path.display()),
    })?;
    let file = rules::analyze_source(rel, &source, rules);
    report.files_scanned += 1;
    report.diagnostics.extend(file.diagnostics);
    report.invariants.extend(file.invariants);
    report.allows.extend(file.allows);
    Ok(())
}

/// Rule selection by path: hot paths get the full audit, `src/bin/` binaries
/// keep numeric rules but may panic, everything else is ordinary library code.
fn rules_for(rel: &str) -> RuleSet {
    if HOT_PATHS.iter().any(|h| rel.ends_with(h)) {
        RuleSet::all()
    } else if rel.contains("/bin/") || rel.ends_with("main.rs") {
        RuleSet::binary()
    } else {
        RuleSet::library()
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), AnalyzeError> {
    let entries = fs::read_dir(dir).map_err(|e| AnalyzeError {
        message: format!("cannot read dir {}: {e}", dir.display()),
    })?;
    for entry in entries {
        let entry = entry.map_err(|e| AnalyzeError {
            message: format!("cannot read dir entry under {}: {e}", dir.display()),
        })?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) && !name.starts_with('.') {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locate the workspace root: walk up from `start` until a `Cargo.toml`
/// containing a `[workspace]` table is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn rules_for_classifies_paths() {
        assert!(rules_for("crates/nn/src/tape.rs").panic_indexing);
        assert!(!rules_for("crates/nn/src/tensor.rs").panic_indexing);
        assert!(rules_for("crates/nn/src/tensor.rs").panic_calls);
        assert!(!rules_for("crates/bench/src/bin/fig2.rs").panic_calls);
        assert!(rules_for("crates/bench/src/bin/fig2.rs").float_eq);
    }

    #[test]
    fn report_json_is_parseable_shape() {
        let mut r = Report {
            files_scanned: 1,
            ..Report::default()
        };
        r.diagnostics.push(rules::Diagnostic {
            rule: "panic",
            file: "x.rs".into(),
            line: 3,
            message: "msg with \"quotes\"".into(),
        });
        let j = r.json();
        assert!(j.contains("\"files_scanned\": 1"));
        assert!(j.contains("\\\"quotes\\\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
