//! # routenet-analyzer
//!
//! Dependency-free static-analysis gate for the RouteNet workspace. The
//! offline toolchain rules out `syn`-based tooling, so this crate carries its
//! own minimal Rust lexer ([`lexer`]) and a set of token-level rules
//! ([`rules`]) tuned to the failure modes that would invalidate the paper's
//! generalization results: hidden panics in hot paths, NaN-unsound float
//! handling, silently truncating casts, and undocumented invariants.
//!
//! Entry points: [`analyze_workspace`] (what `scripts/check.sh` and CI run)
//! and [`analyze_paths`] (explicit files, all rules on — used by the fixture
//! tests). Both produce a [`Report`] with `file:line` diagnostics and a
//! machine-readable JSON rendering.

pub mod callgraph;
pub mod concurrency;
pub mod lexer;
pub mod numeric;
pub mod parse;
pub mod rules;

use rules::{AllowEntry, Diagnostic, InvariantEntry, RuleSet, Severity};
use std::fs;
use std::path::{Path, PathBuf};

/// Files whose library code gets the full panic audit including the bare
/// slice-indexing check (the paper-critical hot paths).
pub const HOT_PATHS: &[&str] = &[
    "crates/nn/src/tape.rs",
    "crates/simnet/src/sim.rs",
    "crates/core/src/model.rs",
    "crates/core/src/trainer.rs",
];

/// Files whose loops are hot enough that per-iteration allocation is a
/// finding: the autodiff tape/tensor kernels, the training loop, and the
/// simulator event loop.
pub const ALLOC_HOT_PATHS: &[&str] = &[
    "crates/nn/src/tape.rs",
    "crates/nn/src/tensor.rs",
    "crates/nn/src/plan.rs",
    "crates/core/src/trainer.rs",
    "crates/core/src/batch.rs",
    "crates/simnet/src/sim.rs",
];

/// Crates whose iteration order feeds labels, features, or training order —
/// nondeterministic hash iteration there breaks run-to-run reproducibility.
const DETERMINISM_CRATES: &[&str] = &[
    "crates/netgraph/",
    "crates/nn/",
    "crates/simnet/",
    "crates/dataset/",
    "crates/core/",
    "crates/analyzer/",
    "crates/obs/",
    "crates/faults/",
    "crates/serve/",
];

/// Crates whose `Result`-returning public APIs must carry `#[must_use]`.
const MUST_USE_CRATES: &[&str] = &[
    "crates/core/",
    "crates/dataset/",
    "crates/analyzer/",
    "crates/obs/",
    "crates/faults/",
    "crates/serve/",
];

/// Crates whose library code must route all filesystem access through the
/// `routenet-faults` IO seam — direct `std::fs` use there escapes fault
/// injection, retry, and the chaos tests (RN301). Binaries are exempt
/// (they wire the seam up), as is `routenet-faults` itself (it *is* the
/// seam).
const IO_SEAM_CRATES: &[&str] = &[
    "crates/core/",
    "crates/dataset/",
    "crates/obs/",
    "crates/serve/",
];

/// Files under the RN4xx numeric-dataflow audit: the measurement and kernel
/// code where a seconds-vs-bits/s slip or an unguarded division corrupts
/// labels, features, or the loss (see `numeric` module docs). Unit
/// annotations and the NaN-taint fixed point are still collected
/// workspace-wide; this list only scopes where findings are *reported*.
pub const NUMERIC_PATHS: &[&str] = &[
    "crates/simnet/src/stats.rs",
    "crates/simnet/src/sim.rs",
    "crates/simnet/src/queueing.rs",
    "crates/core/src/metrics.rs",
    "crates/core/src/eval.rs",
    "crates/core/src/features.rs",
    "crates/core/src/sample.rs",
    "crates/core/src/baseline.rs",
    "crates/dataset/src/gen.rs",
    "crates/nn/src/tape.rs",
    "crates/netgraph/src/traffic.rs",
];

/// Directory components that exclude a file from analysis entirely.
const SKIP_DIRS: &[&str] = &[
    "tests", "benches", "examples", "fixtures", "target", "vendor",
];

/// Aggregated analysis result over a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, ordered by file then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Index of every `// INVARIANT:` annotation found.
    pub invariants: Vec<InvariantEntry>,
    /// Every `// lint: allow(..)` justification in force.
    pub allows: Vec<AllowEntry>,
    /// Findings suppressed by the committed baseline file.
    pub baselined: usize,
}

impl Report {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of deny-level findings (the CI-failing kind).
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Number of warn-level findings.
    pub fn warn_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// Apply `--deny RULE` / `--warn RULE` overrides on top of the registry
    /// defaults.
    pub fn apply_severity_overrides(&mut self, overrides: &[(String, Severity)]) {
        for d in &mut self.diagnostics {
            for (rule, sev) in overrides {
                if d.rule == rule {
                    d.severity = *sev;
                }
            }
        }
    }

    /// Order diagnostics by `(file, line, rule)` so reports are stable
    /// across filesystem iteration order.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.invariants
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        self.allows
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    }

    /// Human-readable diagnostics, one
    /// `file:line: [rule] ID severity: message` per line.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}:{}: [{}] {} {}: {}\n",
                d.file,
                d.line,
                d.rule,
                d.id(),
                d.severity.as_str(),
                d.message
            ));
        }
        let baseline_note = if self.baselined > 0 {
            format!(", {} baselined", self.baselined)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{} file(s) scanned, {} diagnostic(s) ({} deny, {} warn{}), {} invariant(s) indexed ({} checked), {} allow justification(s)\n",
            self.files_scanned,
            self.diagnostics.len(),
            self.deny_count(),
            self.warn_count(),
            baseline_note,
            self.invariants.len(),
            self.invariants.iter().filter(|i| i.checked).count(),
            self.allows.len(),
        ));
        out
    }

    /// Machine-readable JSON rendering (hand-rolled: this crate is
    /// dependency-free so it can never be broken by the code it audits).
    /// Schema: `analyzer-report v4` — adds a severity breakdown
    /// (`summary.by_severity`, deny/warn keys always present) over v3,
    /// which added a per-rule count breakdown (`summary.by_rule`, registry
    /// order, nonzero rules only) over v2, which added stable rule IDs,
    /// severities, and a summary block over v1.
    pub fn json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"schema\": \"analyzer-report\",\n  \"version\": 4,\n  \"files_scanned\": {},\n",
            self.files_scanned
        ));
        let by_rule: Vec<(&str, usize)> = rules::RULE_NAMES
            .iter()
            .map(|r| (*r, self.diagnostics.iter().filter(|d| d.rule == *r).count()))
            .filter(|(_, n)| *n > 0)
            .collect();
        let by_rule_json = by_rule
            .iter()
            .map(|(r, n)| format!("{}: {n}", json_str(r)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "  \"summary\": {{\"diagnostics\": {}, \"deny\": {}, \"warn\": {}, \"baselined\": {}, \"by_severity\": {{\"deny\": {}, \"warn\": {}}}, \"by_rule\": {{{by_rule_json}}}}},\n",
            self.diagnostics.len(),
            self.deny_count(),
            self.warn_count(),
            self.baselined,
            self.deny_count(),
            self.warn_count(),
        ));
        out.push_str("  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": {}, \"rule\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}{}\n",
                json_str(d.id()),
                json_str(d.rule),
                json_str(d.severity.as_str()),
                json_str(&d.file),
                d.line,
                json_str(&d.message),
                comma(i, self.diagnostics.len()),
            ));
        }
        out.push_str("  ],\n  \"invariants\": [\n");
        for (i, v) in self.invariants.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"function\": {}, \"text\": {}, \"checked\": {}}}{}\n",
                json_str(&v.file),
                v.line,
                json_str(&v.function),
                json_str(&v.text),
                v.checked,
                comma(i, self.invariants.len()),
            ));
        }
        out.push_str("  ],\n  \"allows\": [\n");
        for (i, a) in self.allows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"reason\": {}}}{}\n",
                json_str(&a.file),
                a.line,
                json_str(&a.rule),
                json_str(&a.reason),
                comma(i, self.allows.len()),
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 == len {
        ""
    } else {
        ","
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Errors from the filesystem walk.
#[derive(Debug)]
pub struct AnalyzeError {
    /// What went wrong, with the offending path.
    pub message: String,
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for AnalyzeError {}

/// A committed ratchet of known findings: `rule<TAB>count<TAB>file` lines
/// under a `# analyzer-baseline v1` header. New findings beyond the recorded
/// count fail the gate; fixed findings require shrinking the baseline so it
/// only ever ratchets downward.
#[derive(Debug, Default)]
pub struct Baseline {
    /// `(rule, file) -> allowed finding count`.
    entries: Vec<(String, String, usize)>,
}

impl Baseline {
    /// Parse a baseline file. Blank lines and `#` comments are ignored.
    #[must_use = "a dropped baseline means the ratchet is not applied"]
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut b = Baseline::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let (rule, count, file) = match (parts.next(), parts.next(), parts.next()) {
                (Some(r), Some(c), Some(f)) if parts.next().is_none() => (r, c, f),
                _ => {
                    return Err(format!(
                        "baseline line {}: expected `rule<TAB>count<TAB>file`, got `{line}`",
                        lineno + 1
                    ));
                }
            };
            if !rules::RULE_NAMES.contains(&rule) {
                return Err(format!(
                    "baseline line {}: unknown rule `{rule}`",
                    lineno + 1
                ));
            }
            let count: usize = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{count}`", lineno + 1))?;
            b.entries.push((rule.to_string(), file.to_string(), count));
        }
        Ok(b)
    }

    /// Render a report's current findings as a baseline file.
    pub fn render(report: &Report) -> String {
        let mut counts: Vec<(String, String, usize)> = Vec::new();
        for d in &report.diagnostics {
            match counts
                .iter_mut()
                .find(|(r, f, _)| r == d.rule && f == &d.file)
            {
                Some((_, _, n)) => *n += 1,
                None => counts.push((d.rule.to_string(), d.file.clone(), 1)),
            }
        }
        counts.sort();
        let mut out = String::from(
            "# analyzer-baseline v1\n\
             # One `rule<TAB>count<TAB>file` entry per known finding group.\n\
             # This file only ratchets down: fixing a finding requires removing\n\
             # its entry; new findings are never added here without review.\n",
        );
        for (rule, file, n) in counts {
            out.push_str(&format!("{rule}\t{n}\t{file}\n"));
        }
        out
    }

    /// Remove up to the baselined count of findings per `(rule, file)` group
    /// from `report` (bumping `report.baselined`), and return a list of stale
    /// entries — groups whose recorded count exceeds what the analyzer now
    /// finds. Stale entries are an error: the baseline must shrink with the
    /// code so the ratchet can never mask a regression.
    pub fn apply(&self, report: &mut Report) -> Vec<String> {
        let mut stale = Vec::new();
        for (rule, file, count) in &self.entries {
            let mut removed = 0usize;
            report.diagnostics.retain(|d| {
                if removed < *count && d.rule == rule && &d.file == file {
                    removed += 1;
                    false
                } else {
                    true
                }
            });
            report.baselined += removed;
            if removed < *count {
                stale.push(format!(
                    "baseline records {count} `{rule}` finding(s) in {file} but only {removed} remain — shrink the baseline"
                ));
            }
        }
        stale
    }

    /// Keep only the entries whose file is in `files`. Used by
    /// `--changed-only`: entries for unscanned files would otherwise all
    /// read as stale.
    pub fn retain_files(&mut self, files: &[String]) {
        self.entries
            .retain(|(_, f, _)| files.iter().any(|x| x == f));
    }
}

/// Analyze the whole workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml`). Scans `src/` and `crates/*/src/`; `tests/`,
/// `benches/`, `examples/`, `fixtures/`, and `vendor/` are exempt, and
/// `src/bin/` is exempt from the panic audit only.
#[must_use = "the report carries the findings; dropping it skips the gate"]
pub fn analyze_workspace(root: &Path) -> Result<Report, AnalyzeError> {
    analyze_workspace_filtered(root, None)
}

/// Like [`analyze_workspace`], but when `only` is given, rule passes (and
/// `files_scanned`) are restricted to the listed workspace-relative paths.
/// The call graph is still built over the *whole* workspace so transitive
/// RN2xx evidence does not depend on the filter (`--changed-only` must never
/// see fewer hazards than a full run).
#[must_use = "the report carries the findings; dropping it skips the gate"]
pub fn analyze_workspace_filtered(
    root: &Path,
    only: Option<&[String]>,
) -> Result<Report, AnalyzeError> {
    let sources = load_workspace_sources(root)?;
    let graph = callgraph::CallGraph::build(&sources);
    let units = numeric::UnitEnv::build(&sources);
    let mut report = Report::default();
    for (rel, source) in &sources {
        if let Some(filter) = only {
            if !filter.iter().any(|f| f == rel) {
                continue;
            }
        }
        let rules = rules_for(rel);
        let file = rules::analyze_source_with(rel, source, rules, Some(&graph), Some(&units));
        report.files_scanned += 1;
        report.diagnostics.extend(file.diagnostics);
        report.invariants.extend(file.invariants);
        report.allows.extend(file.allows);
    }
    report.sort();
    Ok(report)
}

/// Read every analyzable `.rs` file under `root` as
/// `(workspace-relative path, source text)` pairs, sorted by path.
fn load_workspace_sources(root: &Path) -> Result<Vec<(String, String)>, AnalyzeError> {
    let mut files = Vec::new();
    for base in ["src", "crates"] {
        let dir = root.join(base);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(path).map_err(|e| AnalyzeError {
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        sources.push((rel, source));
    }
    Ok(sources)
}

/// Expand a changed-file list with every file that transitively *calls* a
/// function defined in one of the changed files. Interprocedural rules
/// (RN2xx lock/RNG evidence, RN4xx unit and NaN propagation) report at the
/// call site, so editing only a callee's body must re-surface findings in
/// its unchanged callers — `--changed-only` scans this closure, not the raw
/// diff. Resolution is by name (simple and `Type::name`), matching the call
/// graph's own semantics; the returned list is sorted and deduplicated.
#[must_use = "the expanded closure drives which files are scanned and baselined"]
pub fn expand_changed_files(root: &Path, changed: &[String]) -> Result<Vec<String>, AnalyzeError> {
    let sources = load_workspace_sources(root)?;
    let graph = callgraph::CallGraph::build(&sources);
    let mut included: Vec<String> = changed.to_vec();
    included.sort();
    included.dedup();
    loop {
        let mut grew = false;
        for node in graph.nodes() {
            if included.binary_search(&node.file).is_ok() {
                continue;
            }
            let pulls_changed_callee = node.calls.iter().any(|callee| {
                graph.nodes().iter().any(|def| {
                    (def.name == *callee || def.qualified.as_deref() == Some(callee.as_str()))
                        && included.binary_search(&def.file).is_ok()
                })
            });
            if pulls_changed_callee {
                if let Err(i) = included.binary_search(&node.file) {
                    included.insert(i, node.file.clone());
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    Ok(included)
}

/// Analyze explicit paths with every rule enabled (fixture mode). The call
/// graph spans exactly the given files.
#[must_use = "the report carries the findings; dropping it skips the gate"]
pub fn analyze_paths(paths: &[PathBuf]) -> Result<Report, AnalyzeError> {
    let mut sources: Vec<(String, String)> = Vec::with_capacity(paths.len());
    for path in paths {
        let rel = path.to_string_lossy().replace('\\', "/");
        let source = fs::read_to_string(path).map_err(|e| AnalyzeError {
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        sources.push((rel, source));
    }
    let graph = callgraph::CallGraph::build(&sources);
    let units = numeric::UnitEnv::build(&sources);
    let mut report = Report::default();
    for (rel, source) in &sources {
        let file =
            rules::analyze_source_with(rel, source, RuleSet::all(), Some(&graph), Some(&units));
        report.files_scanned += 1;
        report.diagnostics.extend(file.diagnostics);
        report.invariants.extend(file.invariants);
        report.allows.extend(file.allows);
    }
    report.sort();
    Ok(report)
}

/// Rule selection by path: hot paths get the full audit, `src/bin/` binaries
/// keep numeric rules but may panic, everything else is ordinary library code.
/// The semantic families are then scoped on top: determinism in the crates
/// that feed labels/features/training order, hot-loop allocation in the
/// [`ALLOC_HOT_PATHS`] kernels, `#[must_use]` in core/dataset library code.
fn rules_for(rel: &str) -> RuleSet {
    let is_bin = rel.contains("/bin/") || rel.ends_with("main.rs");
    let mut rules = if HOT_PATHS.iter().any(|h| rel.ends_with(h)) {
        RuleSet::all()
    } else if is_bin {
        RuleSet::binary()
    } else {
        RuleSet::library()
    };
    rules.determinism = DETERMINISM_CRATES.iter().any(|c| rel.starts_with(c));
    rules.hot_loop_alloc = ALLOC_HOT_PATHS.iter().any(|h| rel.ends_with(h));
    rules.hot_loop_lock = ALLOC_HOT_PATHS.iter().any(|h| rel.ends_with(h));
    rules.must_use = !is_bin && MUST_USE_CRATES.iter().any(|c| rel.starts_with(c));
    rules.error_discard = !is_bin;
    rules.io_seam = !is_bin && IO_SEAM_CRATES.iter().any(|c| rel.starts_with(c));
    rules.numeric = NUMERIC_PATHS.iter().any(|h| rel.ends_with(h));
    rules
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), AnalyzeError> {
    let entries = fs::read_dir(dir).map_err(|e| AnalyzeError {
        message: format!("cannot read dir {}: {e}", dir.display()),
    })?;
    for entry in entries {
        let entry = entry.map_err(|e| AnalyzeError {
            message: format!("cannot read dir entry under {}: {e}", dir.display()),
        })?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) && !name.starts_with('.') {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locate the workspace root: walk up from `start` until a `Cargo.toml`
/// containing a `[workspace]` table is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn rules_for_classifies_paths() {
        assert!(rules_for("crates/nn/src/tape.rs").panic_indexing);
        assert!(!rules_for("crates/nn/src/tensor.rs").panic_indexing);
        assert!(rules_for("crates/nn/src/tensor.rs").panic_calls);
        assert!(!rules_for("crates/bench/src/bin/fig2.rs").panic_calls);
        assert!(rules_for("crates/bench/src/bin/fig2.rs").float_eq);
    }

    #[test]
    fn rules_for_scopes_semantic_families() {
        // Determinism: label/feature/training-order crates only.
        assert!(rules_for("crates/netgraph/src/routing.rs").determinism);
        assert!(rules_for("crates/dataset/src/gen.rs").determinism);
        // nn is determinism-scoped: segment/index-plan iteration order feeds
        // gradient accumulation order, which feeds the training curve.
        assert!(rules_for("crates/nn/src/tensor.rs").determinism);
        assert!(!rules_for("crates/bench/src/bin/fig2.rs").determinism);
        // Hot-loop allocation: the kernel files only.
        assert!(rules_for("crates/nn/src/tensor.rs").hot_loop_alloc);
        assert!(rules_for("crates/nn/src/plan.rs").hot_loop_alloc);
        assert!(rules_for("crates/core/src/trainer.rs").hot_loop_alloc);
        assert!(rules_for("crates/core/src/batch.rs").hot_loop_alloc);
        assert!(!rules_for("crates/core/src/model.rs").hot_loop_alloc);
        // must_use: core/dataset library code, never binaries.
        assert!(rules_for("crates/core/src/checkpoint.rs").must_use);
        assert!(rules_for("crates/dataset/src/io.rs").must_use);
        assert!(!rules_for("crates/netgraph/src/graph.rs").must_use);
        assert!(!rules_for("crates/core/src/bin/train.rs").must_use);
        // error-discard: everywhere except binaries.
        assert!(rules_for("crates/nn/src/tensor.rs").error_discard);
        assert!(!rules_for("crates/bench/src/bin/fig2.rs").error_discard);
        // io-seam: the seam crates' library code only — never binaries,
        // never the faults crate itself.
        assert!(rules_for("crates/core/src/checkpoint.rs").io_seam);
        assert!(rules_for("crates/dataset/src/io.rs").io_seam);
        assert!(rules_for("crates/obs/src/lib.rs").io_seam);
        assert!(!rules_for("crates/obs/src/bin/validate-telemetry.rs").io_seam);
        assert!(!rules_for("crates/faults/src/fs.rs").io_seam);
        assert!(!rules_for("crates/nn/src/tensor.rs").io_seam);
        // numeric: the measurement/kernel files only.
        assert!(rules_for("crates/simnet/src/sim.rs").numeric);
        assert!(rules_for("crates/core/src/metrics.rs").numeric);
        assert!(rules_for("crates/nn/src/tape.rs").numeric);
        assert!(!rules_for("crates/core/src/model.rs").numeric);
        assert!(!rules_for("crates/obs/src/lib.rs").numeric);
    }

    #[test]
    fn report_json_is_parseable_shape() {
        let mut r = Report {
            files_scanned: 1,
            ..Report::default()
        };
        r.diagnostics.push(rules::Diagnostic::new(
            "panic",
            "x.rs",
            3,
            "msg with \"quotes\"".into(),
        ));
        let j = r.json();
        assert!(j.contains("\"schema\": \"analyzer-report\""));
        assert!(j.contains("\"version\": 4"));
        assert!(j.contains("\"files_scanned\": 1"));
        assert!(j.contains("\"by_severity\": {\"deny\": 1, \"warn\": 0}"));
        assert!(j.contains("\"by_rule\": {\"panic\": 1}"));
        assert!(j.contains("\"id\": \"RN001\""));
        assert!(j.contains("\"severity\": \"deny\""));
        assert!(j.contains("\\\"quotes\\\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn baseline_roundtrip_and_ratchet() {
        let mut r = Report {
            files_scanned: 1,
            ..Report::default()
        };
        r.diagnostics.push(rules::Diagnostic::new(
            "hot-loop-alloc",
            "a.rs",
            3,
            "x".into(),
        ));
        r.diagnostics.push(rules::Diagnostic::new(
            "hot-loop-alloc",
            "a.rs",
            9,
            "y".into(),
        ));
        r.diagnostics
            .push(rules::Diagnostic::new("panic", "b.rs", 1, "z".into()));
        let text = Baseline::render(&r);
        assert!(text.starts_with("# analyzer-baseline v1"));
        assert!(text.contains("hot-loop-alloc\t2\ta.rs"));
        assert!(text.contains("panic\t1\tb.rs"));

        // Applying the freshly written baseline removes everything, no stale.
        let b = Baseline::parse(&text).unwrap();
        let stale = b.apply(&mut r);
        assert!(stale.is_empty());
        assert!(r.diagnostics.is_empty());
        assert_eq!(r.baselined, 3);

        // A baseline over-recording findings is stale: the ratchet must shrink.
        let mut r2 = Report::default();
        r2.diagnostics.push(rules::Diagnostic::new(
            "hot-loop-alloc",
            "a.rs",
            3,
            "x".into(),
        ));
        let stale = b.apply(&mut r2);
        assert_eq!(stale.len(), 2); // hot-loop-alloc count short + panic gone
        assert!(stale[0].contains("shrink the baseline"));
    }

    #[test]
    fn baseline_rejects_garbage() {
        assert!(Baseline::parse("no-tabs-here").is_err());
        assert!(Baseline::parse("not-a-rule\t1\ta.rs").is_err());
        assert!(Baseline::parse("panic\tmany\ta.rs").is_err());
        assert!(Baseline::parse("# comment\n\npanic\t1\ta.rs").is_ok());
    }

    #[test]
    fn severity_overrides_apply() {
        let mut r = Report::default();
        r.diagnostics.push(rules::Diagnostic::new(
            "hot-loop-alloc",
            "a.rs",
            3,
            "x".into(),
        ));
        assert_eq!(r.warn_count(), 1);
        r.apply_severity_overrides(&[("hot-loop-alloc".to_string(), Severity::Deny)]);
        assert_eq!(r.deny_count(), 1);
        assert_eq!(r.warn_count(), 0);
    }
}
