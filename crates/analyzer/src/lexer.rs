//! A minimal Rust lexer: just enough structure for line-accurate pattern
//! rules. Comments are captured separately (they carry `// lint: allow(..)`
//! and `// INVARIANT:` directives); strings, chars, lifetimes, and numeric
//! literals are collapsed to single tokens so rules never match inside them.

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal.
    Int,
    /// Float literal (has `.`, exponent, or an `f32`/`f64` suffix).
    Float,
    /// String / raw-string / byte-string literal.
    Str,
    /// Character literal.
    Char,
    /// Lifetime such as `'a`.
    Lifetime,
    /// Operator or delimiter (maximal munch for multi-char operators).
    Punct,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A `//` line comment (text excludes the `//`), or one line of a block
/// comment.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment appears on.
    pub line: u32,
    /// Comment body, trimmed.
    pub text: String,
}

/// Lexer output: the token stream plus the comment stream.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All line comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-char operators recognized by maximal munch. Longest first.
const PUNCTS: &[&str] = &[
    "..=", "...", "<<=", ">>=", "->", "=>", "::", "..", "==", "!=", "<=", ">=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Tokenize Rust source. Unterminated literals end the token at EOF rather
/// than erroring: the analyzer must never panic on weird input.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut pos = 0usize;
    let mut line = 1u32;

    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b'\n' => {
                line += 1;
                pos += 1;
            }
            b' ' | b'\t' | b'\r' => pos += 1,
            b'/' if bytes.get(pos + 1) == Some(&b'/') => {
                let start = pos + 2;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'\n' {
                    end += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: source[start..end].trim().to_string(),
                });
                pos = end;
            }
            b'/' if bytes.get(pos + 1) == Some(&b'*') => {
                pos = skip_block_comment(source, pos, &mut line, &mut out);
            }
            b'"' => {
                let (end, newlines) = scan_string(bytes, pos + 1);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: source[pos..end].to_string(),
                    line,
                });
                line += newlines;
                pos = end;
            }
            b'r' | b'b' if starts_raw_or_byte_string(bytes, pos) => {
                let (end, newlines) = scan_raw_or_byte_string(bytes, pos);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: source[pos..end].to_string(),
                    line,
                });
                line += newlines;
                pos = end;
            }
            b'\'' => {
                let (kind, end) = scan_char_or_lifetime(bytes, pos);
                out.tokens.push(Token {
                    kind,
                    text: source[pos..end].to_string(),
                    line,
                });
                pos = end;
            }
            b'0'..=b'9' => {
                let (kind, end) = scan_number(bytes, pos);
                out.tokens.push(Token {
                    kind,
                    text: source[pos..end].to_string(),
                    line,
                });
                pos = end;
            }
            _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => {
                let mut end = pos + 1;
                while end < bytes.len() && is_ident_continue(bytes[end]) {
                    end += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: source[pos..end].to_string(),
                    line,
                });
                pos = end;
            }
            _ => {
                let rest = &source[pos..];
                let munch = PUNCTS.iter().find(|p| rest.starts_with(**p));
                let text = match munch {
                    Some(p) => (*p).to_string(),
                    None => (b as char).to_string(),
                };
                let len = text.len();
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text,
                    line,
                });
                pos += len;
            }
        }
    }
    out
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80
}

/// Skip a (possibly nested) block comment, pushing one `Comment` per line so
/// directive parsing treats `/* .. */` and `// ..` uniformly.
fn skip_block_comment(source: &str, start: usize, line: &mut u32, out: &mut Lexed) -> usize {
    let bytes = source.as_bytes();
    let mut depth = 1usize;
    let mut pos = start + 2;
    let mut seg_start = pos;
    while pos < bytes.len() && depth > 0 {
        if bytes[pos] == b'/' && bytes.get(pos + 1) == Some(&b'*') {
            depth += 1;
            pos += 2;
        } else if bytes[pos] == b'*' && bytes.get(pos + 1) == Some(&b'/') {
            depth -= 1;
            pos += 2;
        } else {
            if bytes[pos] == b'\n' {
                out.comments.push(Comment {
                    line: *line,
                    text: source[seg_start..pos]
                        .trim_matches(['*', ' ', '\t'])
                        .to_string(),
                });
                *line += 1;
                seg_start = pos + 1;
            }
            pos += 1;
        }
    }
    let seg_end = pos.saturating_sub(2).max(seg_start);
    out.comments.push(Comment {
        line: *line,
        text: source[seg_start..seg_end]
            .trim_matches(['*', ' ', '\t', '/'])
            .to_string(),
    });
    pos
}

/// Scan past a normal string body starting *after* the opening quote.
/// Returns (end index past the closing quote, newline count inside).
fn scan_string(bytes: &[u8], mut pos: usize) -> (usize, u32) {
    let mut newlines = 0u32;
    while pos < bytes.len() {
        match bytes[pos] {
            b'\\' => pos += 2,
            b'"' => return (pos + 1, newlines),
            b'\n' => {
                newlines += 1;
                pos += 1;
            }
            _ => pos += 1,
        }
    }
    (bytes.len(), newlines)
}

fn starts_raw_or_byte_string(bytes: &[u8], pos: usize) -> bool {
    // r"  r#"  b"  br"  br#"  rb is not a thing; b'..' is a byte char (handled
    // poorly as ident + char, acceptable: the char scanner still isolates it).
    let mut i = pos;
    if bytes[i] == b'b' {
        i += 1;
    }
    if bytes.get(i) == Some(&b'r') {
        i += 1;
    } else if i == pos {
        return false; // plain ident starting with r/b but no string follows
    }
    while bytes.get(i) == Some(&b'#') {
        i += 1;
    }
    bytes.get(i) == Some(&b'"') && (bytes[pos] == b'r' || bytes.get(pos + 1) != Some(&b'\''))
}

fn scan_raw_or_byte_string(bytes: &[u8], pos: usize) -> (usize, u32) {
    let mut i = pos;
    if bytes[i] == b'b' {
        i += 1;
    }
    let raw = bytes.get(i) == Some(&b'r');
    if raw {
        i += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    let mut newlines = 0u32;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if !raw => i += 2,
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            b'"' => {
                let mut j = i + 1;
                let mut seen = 0usize;
                while seen < hashes && bytes.get(j) == Some(&b'#') {
                    seen += 1;
                    j += 1;
                }
                if seen == hashes {
                    return (j, newlines);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    (bytes.len(), newlines)
}

/// Distinguish `'a'` (char) from `'a` (lifetime). Returns (kind, end).
fn scan_char_or_lifetime(bytes: &[u8], pos: usize) -> (TokenKind, usize) {
    let next = bytes.get(pos + 1).copied();
    match next {
        Some(b'\\') => {
            // Escaped char literal: find closing quote.
            let mut i = pos + 2;
            if i < bytes.len() {
                i += 1; // the escaped character
            }
            // \u{...} form
            if bytes.get(pos + 2) == Some(&b'u') {
                while i < bytes.len() && bytes[i] != b'\'' {
                    i += 1;
                }
            }
            while i < bytes.len() && bytes[i] != b'\'' {
                i += 1;
            }
            (TokenKind::Char, (i + 1).min(bytes.len()))
        }
        Some(c) if c == b'_' || c.is_ascii_alphabetic() => {
            if bytes.get(pos + 2) == Some(&b'\'') && !is_ident_continue_at(bytes, pos + 3) {
                // 'x' single-char literal
                (TokenKind::Char, pos + 3)
            } else {
                // lifetime 'ident
                let mut i = pos + 2;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                (TokenKind::Lifetime, i)
            }
        }
        Some(_) => {
            // Non-alphabetic char literal like '.', '0', or even '\''.
            let mut i = pos + 2;
            while i < bytes.len() && bytes[i] != b'\'' {
                i += 1;
            }
            (TokenKind::Char, (i + 1).min(bytes.len()))
        }
        None => (TokenKind::Punct, pos + 1),
    }
}

fn is_ident_continue_at(bytes: &[u8], pos: usize) -> bool {
    bytes.get(pos).is_some_and(|&b| is_ident_continue(b))
}

/// Scan a numeric literal starting at a digit. Returns (Int|Float, end).
fn scan_number(bytes: &[u8], pos: usize) -> (TokenKind, usize) {
    let mut i = pos;
    let mut is_float = false;
    // Radix prefixes are integer-only.
    if bytes[i] == b'0'
        && matches!(
            bytes.get(i + 1),
            Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B')
        )
    {
        i += 2;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        return (TokenKind::Int, i);
    }
    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
        i += 1;
    }
    // Fractional part: `.` followed by a digit (or end-of-number `1.`), but
    // not `..` (range) and not `.ident` (method call / tuple field).
    if bytes.get(i) == Some(&b'.')
        && bytes.get(i + 1) != Some(&b'.')
        && !is_ident_start_at(bytes, i + 1)
    {
        is_float = true;
        i += 1;
        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
            i += 1;
        }
    }
    // Exponent.
    if matches!(bytes.get(i), Some(b'e' | b'E')) {
        let mut j = i + 1;
        if matches!(bytes.get(j), Some(b'+' | b'-')) {
            j += 1;
        }
        if bytes.get(j).is_some_and(u8::is_ascii_digit) {
            is_float = true;
            i = j;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                i += 1;
            }
        }
    }
    // Type suffix (u32, i64, f64, usize, ...).
    let suffix_start = i;
    while i < bytes.len() && is_ident_continue(bytes[i]) {
        i += 1;
    }
    if bytes.get(suffix_start) == Some(&b'f') {
        is_float = true;
    }
    (
        if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        },
        i,
    )
}

fn is_ident_start_at(bytes: &[u8], pos: usize) -> bool {
    bytes
        .get(pos)
        .is_some_and(|&b| b == b'_' || b.is_ascii_alphabetic())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn numbers_classified() {
        let toks = kinds("1 1.0 1. 1e5 1_000 0xff 2f64 3u32 1..5 x.0");
        let float = |s: &str| (TokenKind::Float, s.to_string());
        let int = |s: &str| (TokenKind::Int, s.to_string());
        assert_eq!(toks[0], int("1"));
        assert_eq!(toks[1], float("1.0"));
        assert_eq!(toks[2], float("1."));
        assert_eq!(toks[3], float("1e5"));
        assert_eq!(toks[4], int("1_000"));
        assert_eq!(toks[5], int("0xff"));
        assert_eq!(toks[6], float("2f64"));
        assert_eq!(toks[7], int("3u32"));
        // 1..5 is Int, Punct(..), Int
        assert_eq!(toks[8], int("1"));
        assert_eq!(toks[9], (TokenKind::Punct, "..".to_string()));
        assert_eq!(toks[10], int("5"));
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let lexed = lex("let s = \"a.unwrap() == 0.0\"; // x.unwrap()\nlet t = 1;");
        assert!(!lexed.tokens.iter().any(|t| t.text == "unwrap"));
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].text, "x.unwrap()");
        // Line tracking survives the comment.
        let t_tok = lexed.tokens.iter().find(|t| t.text == "t").expect("t");
        assert_eq!(t_tok.line, 2);
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let lexed = lex("fn f<'a>(x: &'a str) { let r = r#\"unwrap()\"#; let c = 'x'; }");
        assert!(!lexed.tokens.iter().any(|t| t.text == "unwrap"));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "'x'"));
    }

    #[test]
    fn multiline_string_advances_line_counter() {
        let lexed = lex("let s = \"a\nb\nc\";\nlet z = 9;");
        let z = lexed.tokens.iter().find(|t| t.text == "z").expect("z");
        assert_eq!(z.line, 4);
    }

    #[test]
    fn multichar_operators_are_single_tokens() {
        let toks = kinds("a == b != c && d..=e -> f");
        let texts: Vec<&str> = toks.iter().map(|(_, s)| s.as_str()).collect();
        assert!(texts.contains(&"=="));
        assert!(texts.contains(&"!="));
        assert!(texts.contains(&"&&"));
        assert!(texts.contains(&"..="));
        assert!(texts.contains(&"->"));
    }

    #[test]
    fn block_comments_recorded() {
        let lexed = lex("/* one\n * two */ let x = 1;");
        assert!(lexed.comments.len() >= 2);
        let x = lexed.tokens.iter().find(|t| t.text == "x").expect("x");
        assert_eq!(x.line, 2);
    }
}
