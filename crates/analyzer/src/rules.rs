//! Rule passes over the token/comment streams produced by [`crate::lexer`].
//!
//! Five rules, each identified by the name used in `// lint: allow(..)`
//! directives:
//!
//! | rule        | flags |
//! |-------------|-------|
//! | `panic`     | `.unwrap()` / `.expect(..)` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` in library code; bare slice indexing in hot-path files |
//! | `float-eq`  | `==` / `!=` where an operand is a float literal |
//! | `nan`       | `.partial_cmp(..)` chained into `unwrap*`/`expect` (NaN panics or is silently misordered); division by a literal zero |
//! | `cast`      | narrowing integer casts; `as usize`-family casts inside index brackets; float-literal → integer casts |
//! | `invariant` | `// INVARIANT:` comments whose function has no `debug_assert!` |
//!
//! Suppression: `// lint: allow(<rule>, reason = "...")` on the same line or
//! the line directly above. The reason is mandatory — an allow without one is
//! itself reported (rule `lint-syntax`).

use crate::lexer::{Comment, Lexed, Token, TokenKind};

/// All rule names, in report order.
pub const RULE_NAMES: &[&str] = &[
    "panic",
    "float-eq",
    "nan",
    "cast",
    "invariant",
    "lint-syntax",
];

/// One finding, pointing at `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// An `// INVARIANT:` annotation and whether its function checks it.
#[derive(Debug, Clone)]
pub struct InvariantEntry {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// Name of the function the invariant is attached to (empty if unattached).
    pub function: String,
    /// Invariant text (after `INVARIANT:`).
    pub text: String,
    /// Whether the function body contains a `debug_assert!` family call.
    pub checked: bool,
}

/// A parsed `// lint: allow(..)` directive.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the directive comment.
    pub line: u32,
    /// Rule being allowed.
    pub rule: String,
    /// Justification text.
    pub reason: String,
}

/// Which rules run on a given file.
#[derive(Debug, Clone, Copy)]
pub struct RuleSet {
    /// Flag `.unwrap()`/`.expect()`/`panic!`-family in library code.
    pub panic_calls: bool,
    /// Flag bare slice indexing (hot-path files only).
    pub panic_indexing: bool,
    /// Flag float-literal `==`/`!=`.
    pub float_eq: bool,
    /// Flag NaN-unsound patterns.
    pub nan: bool,
    /// Flag lossy casts.
    pub cast: bool,
    /// Check `// INVARIANT:` annotations.
    pub invariant: bool,
}

impl RuleSet {
    /// Everything on — used for fixtures and hot-path files.
    pub fn all() -> Self {
        RuleSet {
            panic_calls: true,
            panic_indexing: true,
            float_eq: true,
            nan: true,
            cast: true,
            invariant: true,
        }
    }

    /// Default for ordinary library code: all rules except the
    /// indexing audit, which is reserved for hot-path files.
    pub fn library() -> Self {
        RuleSet {
            panic_indexing: false,
            ..RuleSet::all()
        }
    }

    /// Binaries (`src/bin/`) may panic: CLI tools fail loudly by design.
    /// Numeric discipline still applies.
    pub fn binary() -> Self {
        RuleSet {
            panic_calls: false,
            panic_indexing: false,
            ..RuleSet::all()
        }
    }
}

/// Full single-file analysis result.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings after allow-directive and test-span filtering.
    pub diagnostics: Vec<Diagnostic>,
    /// Invariant index entries (including checked ones).
    pub invariants: Vec<InvariantEntry>,
    /// Allow directives that suppressed at least the syntax check.
    pub allows: Vec<AllowEntry>,
}

/// Analyze one file's source text.
pub fn analyze_source(file: &str, source: &str, rules: RuleSet) -> FileReport {
    let lexed = crate::lexer::lex(source);
    let test_spans = test_mod_spans(&lexed.tokens);
    let fns = function_spans(&lexed.tokens);
    let directives = parse_directives(file, &lexed, &test_spans);

    let mut raw: Vec<Diagnostic> = directives.syntax_errors.clone();
    if rules.panic_calls || rules.panic_indexing {
        panic_rule(file, &lexed.tokens, rules, &mut raw);
    }
    if rules.float_eq {
        float_eq_rule(file, &lexed.tokens, &mut raw);
    }
    if rules.nan {
        nan_rule(file, &lexed.tokens, &mut raw);
    }
    if rules.cast {
        cast_rule(file, &lexed.tokens, &mut raw);
    }

    let mut invariants = Vec::new();
    if rules.invariant {
        invariant_rule(file, &lexed, &fns, &directives, &mut raw, &mut invariants);
    }

    let diagnostics = raw
        .into_iter()
        .filter(|d| !in_spans(d.line, &test_spans))
        .filter(|d| !directives.is_allowed(d.rule, d.line))
        .collect();

    FileReport {
        diagnostics,
        invariants,
        allows: directives.allows,
    }
}

// ---------------------------------------------------------------------------
// Directives: `lint: allow(..)` and `INVARIANT:` comments
// ---------------------------------------------------------------------------

struct Directives {
    /// (rule, directive line, effective code line)
    allow_lines: Vec<(String, u32, u32)>,
    allows: Vec<AllowEntry>,
    invariant_comments: Vec<Comment>,
    syntax_errors: Vec<Diagnostic>,
}

impl Directives {
    fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allow_lines
            .iter()
            .any(|(r, dl, el)| r == rule && (line == *dl || line == *el))
    }
}

fn parse_directives(file: &str, lexed: &Lexed, test_spans: &[(u32, u32)]) -> Directives {
    let mut d = Directives {
        allow_lines: Vec::new(),
        allows: Vec::new(),
        invariant_comments: Vec::new(),
        syntax_errors: Vec::new(),
    };
    for c in &lexed.comments {
        // Strip doc-comment leaders (`///`, `//!` arrive as `/`, `!`).
        let text = c.text.trim_start_matches(['/', '!']).trim();
        if let Some(rest) = text.strip_prefix("INVARIANT:") {
            d.invariant_comments.push(Comment {
                line: c.line,
                text: rest.trim().to_string(),
            });
            continue;
        }
        let Some(rest) = text.strip_prefix("lint:") else {
            continue;
        };
        match parse_allow(rest.trim()) {
            Ok((rule, reason)) => {
                let effective = lexed
                    .tokens
                    .iter()
                    .map(|t| t.line)
                    .find(|&l| l > c.line)
                    .unwrap_or(c.line);
                d.allow_lines.push((rule.clone(), c.line, effective));
                d.allows.push(AllowEntry {
                    file: file.to_string(),
                    line: c.line,
                    rule,
                    reason,
                });
            }
            Err(msg) if !in_spans(c.line, test_spans) => {
                d.syntax_errors.push(Diagnostic {
                    rule: "lint-syntax",
                    file: file.to_string(),
                    line: c.line,
                    message: msg,
                });
            }
            Err(_) => {}
        }
    }
    d
}

/// Parse `allow(<rule>, reason = "...")`. The reason is mandatory.
fn parse_allow(text: &str) -> Result<(String, String), String> {
    let Some(inner) = text
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('('))
        .and_then(|t| t.strip_suffix(')'))
    else {
        return Err(format!("malformed lint directive `lint: {text}` — expected `lint: allow(<rule>, reason = \"...\")`"));
    };
    let Some((rule, rest)) = inner.split_once(',') else {
        return Err(
            "lint allow is missing a reason — write `lint: allow(<rule>, reason = \"...\")`"
                .to_string(),
        );
    };
    let rule = rule.trim().to_string();
    if !RULE_NAMES.contains(&rule.as_str()) {
        return Err(format!(
            "unknown lint rule `{rule}` (known: panic, float-eq, nan, cast, invariant)"
        ));
    }
    let reason = rest
        .trim()
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('='))
        .map(str::trim)
        .map(|t| t.trim_matches('"').trim())
        .unwrap_or("");
    if reason.is_empty() {
        return Err(format!(
            "lint allow({rule}) has an empty reason — justify the exception"
        ));
    }
    Ok((rule, reason.to_string()))
}

// ---------------------------------------------------------------------------
// Structural scans: `#[cfg(test)] mod` spans and function spans
// ---------------------------------------------------------------------------

fn in_spans(line: u32, spans: &[(u32, u32)]) -> bool {
    spans.iter().any(|&(a, b)| (a..=b).contains(&line))
}

/// Line spans of `#[cfg(test)] mod .. { .. }` bodies.
fn test_mod_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // Skip this attribute, any further attributes, and visibility.
            let mut j = skip_attr(tokens, i);
            loop {
                if matches!(tokens.get(j), Some(t) if t.text == "#") {
                    j = skip_attr(tokens, j);
                } else if matches!(tokens.get(j), Some(t) if t.text == "pub") {
                    j += 1;
                    if matches!(tokens.get(j), Some(t) if t.text == "(") {
                        j = skip_balanced(tokens, j, "(", ")");
                    }
                } else {
                    break;
                }
            }
            if matches!(tokens.get(j), Some(t) if t.text == "mod") {
                // mod <name> { ... }
                if let Some(open) = tokens[j..].iter().position(|t| t.text == "{") {
                    let start_idx = j + open;
                    let end_idx = skip_balanced(tokens, start_idx, "{", "}");
                    let start = tokens[start_idx].line;
                    let end = tokens
                        .get(end_idx.saturating_sub(1))
                        .map_or(start, |t| t.line);
                    spans.push((tokens[i].line, end));
                    i = end_idx;
                    continue;
                }
            }
        }
        i += 1;
    }
    spans
}

/// Does `tokens[i..]` start `#[cfg(test)]`?
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let texts: Vec<&str> = tokens[i..]
        .iter()
        .take(7)
        .map(|t| t.text.as_str())
        .collect();
    matches!(texts.as_slice(), ["#", "[", "cfg", "(", "test", ")", "]"])
}

/// Given `tokens[i] == "#"`, return the index just past the attribute.
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if matches!(tokens.get(j), Some(t) if t.text == "!") {
        j += 1;
    }
    if matches!(tokens.get(j), Some(t) if t.text == "[") {
        skip_balanced(tokens, j, "[", "]")
    } else {
        j
    }
}

/// Given `tokens[open]` is the opening delimiter, return the index just past
/// its matching close (or `tokens.len()` when unbalanced).
fn skip_balanced(tokens: &[Token], open: usize, open_t: &str, close_t: &str) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].text == open_t {
            depth += 1;
        } else if tokens[j].text == close_t {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

/// A function item: name, signature line, and body token/line extent.
#[derive(Debug)]
struct FnSpan {
    name: String,
    sig_line: u32,
    body_start_line: u32,
    body_end_line: u32,
    body_tokens: (usize, usize),
}

fn function_spans(tokens: &[Token]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Ident && tokens[i].text == "fn" {
            let name_tok = tokens.get(i + 1);
            // `fn(` is a function-pointer type, `Fn(..)` never lexes as `fn`.
            if let Some(name) = name_tok.filter(|t| t.kind == TokenKind::Ident) {
                // Find the body `{`: first brace outside parens/brackets.
                let mut j = i + 2;
                let mut paren = 0i32;
                let mut bracket = 0i32;
                let mut body = None;
                while let Some(t) = tokens.get(j) {
                    match t.text.as_str() {
                        "(" => paren += 1,
                        ")" => paren -= 1,
                        "[" => bracket += 1,
                        "]" => bracket -= 1,
                        "{" if paren == 0 && bracket == 0 => {
                            body = Some(j);
                            break;
                        }
                        ";" if paren == 0 && bracket == 0 => break, // trait decl
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(open) = body {
                    let end = skip_balanced(tokens, open, "{", "}");
                    fns.push(FnSpan {
                        name: name.text.clone(),
                        sig_line: tokens[i].line,
                        body_start_line: tokens[open].line,
                        body_end_line: tokens
                            .get(end.saturating_sub(1))
                            .map_or(tokens[open].line, |t| t.line),
                        body_tokens: (open, end),
                    });
                    // Continue scanning *inside* the body too (nested fns):
                    // advance past `fn name` only.
                }
            }
        }
        i += 1;
    }
    fns
}

// ---------------------------------------------------------------------------
// Rule: panic
// ---------------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that may directly precede `[` without forming an index
/// expression (slice patterns, array types after `as`, ...).
const NON_INDEX_PREFIX: &[&str] = &[
    "let", "mut", "ref", "in", "return", "match", "if", "else", "as", "dyn", "impl", "box",
];

fn panic_rule(file: &str, tokens: &[Token], rules: RuleSet, out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if rules.panic_calls && t.kind == TokenKind::Ident {
            let prev = i.checked_sub(1).and_then(|p| tokens.get(p));
            let next = tokens.get(i + 1);
            let is_method =
                prev.is_some_and(|p| p.text == ".") && next.is_some_and(|n| n.text == "(");
            if is_method && (t.text == "unwrap" || t.text == "expect") {
                out.push(Diagnostic {
                    rule: "panic",
                    file: file.to_string(),
                    line: t.line,
                    message: format!(
                        ".{}() in library code — return a typed error or justify with `// lint: allow(panic, reason = \"...\")`",
                        t.text
                    ),
                });
            }
            let is_macro = next.is_some_and(|n| n.text == "!")
                && !prev.is_some_and(|p| p.text == "." || p.text == "fn");
            if is_macro && PANIC_MACROS.contains(&t.text.as_str()) {
                out.push(Diagnostic {
                    rule: "panic",
                    file: file.to_string(),
                    line: t.line,
                    message: format!(
                        "{}! in library code — return a typed error or justify with `// lint: allow(panic, reason = \"...\")`",
                        t.text
                    ),
                });
            }
        }
        if rules.panic_indexing && t.text == "[" {
            if let Some(prev) = i.checked_sub(1).and_then(|p| tokens.get(p)) {
                let indexable = (prev.kind == TokenKind::Ident
                    && !NON_INDEX_PREFIX.contains(&prev.text.as_str()))
                    || prev.text == "]"
                    || prev.text == ")";
                if indexable && !is_full_range_index(tokens, i) {
                    out.push(Diagnostic {
                        rule: "panic",
                        file: file.to_string(),
                        line: t.line,
                        message: "bare slice indexing in hot-path code — use .get()/.get_mut(), prove the bound with a debug_assert! + allow, or restructure".to_string(),
                    });
                }
            }
        }
    }
}

/// `x[..]` — the only indexing form that cannot panic.
fn is_full_range_index(tokens: &[Token], open: usize) -> bool {
    matches!(tokens.get(open + 1), Some(t) if t.text == "..")
        && matches!(tokens.get(open + 2), Some(t) if t.text == "]")
}

// ---------------------------------------------------------------------------
// Rule: float-eq
// ---------------------------------------------------------------------------

fn float_eq_rule(file: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.text != "==" && t.text != "!=" {
            continue;
        }
        let lhs_float = i
            .checked_sub(1)
            .and_then(|p| tokens.get(p))
            .is_some_and(|p| p.kind == TokenKind::Float);
        let rhs = tokens.get(i + 1);
        let rhs_float = match rhs {
            Some(r) if r.kind == TokenKind::Float => true,
            Some(r) if r.text == "-" => {
                matches!(tokens.get(i + 2), Some(n) if n.kind == TokenKind::Float)
            }
            _ => false,
        };
        if lhs_float || rhs_float {
            out.push(Diagnostic {
                rule: "float-eq",
                file: file.to_string(),
                line: t.line,
                message: format!(
                    "exact float comparison `{}` with a float literal — compare against an epsilon or justify with `// lint: allow(float-eq, reason = \"...\")`",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: nan
// ---------------------------------------------------------------------------

const NAN_SINKS: &[&str] = &["unwrap", "expect", "unwrap_or", "unwrap_or_else"];

fn nan_rule(file: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        // `.partial_cmp(..).unwrap*` — panics on NaN or silently misorders it.
        if t.kind == TokenKind::Ident
            && t.text == "partial_cmp"
            && i.checked_sub(1)
                .and_then(|p| tokens.get(p))
                .is_some_and(|p| p.text == ".")
            && matches!(tokens.get(i + 1), Some(n) if n.text == "(")
        {
            let after_args = skip_balanced(tokens, i + 1, "(", ")");
            let chained = matches!(tokens.get(after_args), Some(d) if d.text == ".")
                && matches!(
                    tokens.get(after_args + 1),
                    Some(m) if NAN_SINKS.contains(&m.text.as_str())
                );
            if chained {
                let sink = &tokens[after_args + 1].text;
                out.push(Diagnostic {
                    rule: "nan",
                    file: file.to_string(),
                    line: t.line,
                    message: format!(
                        ".partial_cmp(..).{sink}(..) mishandles NaN — use f64::total_cmp or handle the None case"
                    ),
                });
            }
        }
        // Division by a literal zero always produces inf/NaN.
        if t.text == "/"
            && matches!(
                tokens.get(i + 1),
                Some(z) if z.kind == TokenKind::Float && is_zero_float_literal(&z.text)
            )
        {
            out.push(Diagnostic {
                rule: "nan",
                file: file.to_string(),
                line: t.line,
                message: "division by literal 0.0 produces inf/NaN".to_string(),
            });
        }
    }
}

/// True for `0.0`, `0.`, `0.000f64`, ... — every digit is zero.
fn is_zero_float_literal(text: &str) -> bool {
    let core = text
        .strip_suffix("f64")
        .or_else(|| text.strip_suffix("f32"))
        .unwrap_or(text);
    core.chars().all(|c| matches!(c, '0' | '.' | '_')) && core.contains('0')
}

// ---------------------------------------------------------------------------
// Rule: cast
// ---------------------------------------------------------------------------

const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];
const INDEX_TARGETS: &[&str] = &["usize", "isize", "u64", "i64", "u128", "i128"];

fn cast_rule(file: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    // Track whether each `[`/`]` nesting level is an *index* bracket.
    let mut index_stack: Vec<bool> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        match t.text.as_str() {
            "[" => {
                let prev = i.checked_sub(1).and_then(|p| tokens.get(p));
                let is_index = prev.is_some_and(|p| {
                    (p.kind == TokenKind::Ident && !NON_INDEX_PREFIX.contains(&p.text.as_str()))
                        || p.text == "]"
                        || p.text == ")"
                });
                index_stack.push(is_index);
            }
            "]" => {
                index_stack.pop();
            }
            "as" if t.kind == TokenKind::Ident => {
                let Some(target) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) else {
                    continue;
                };
                let prev_float = i
                    .checked_sub(1)
                    .and_then(|p| tokens.get(p))
                    .is_some_and(|p| p.kind == TokenKind::Float);
                let in_index = index_stack.last().copied().unwrap_or(false);
                if NARROW_TARGETS.contains(&target.text.as_str()) {
                    out.push(Diagnostic {
                        rule: "cast",
                        file: file.to_string(),
                        line: t.line,
                        message: format!(
                            "potentially lossy `as {}` — use From/TryFrom or justify with `// lint: allow(cast, reason = \"...\")`",
                            target.text
                        ),
                    });
                } else if INDEX_TARGETS.contains(&target.text.as_str()) && (in_index || prev_float)
                {
                    out.push(Diagnostic {
                        rule: "cast",
                        file: file.to_string(),
                        line: t.line,
                        message: format!(
                            "lossy `as {}` in indexing position — truncation silently redirects the access; bound-check first or justify with `// lint: allow(cast, reason = \"...\")`",
                            target.text
                        ),
                    });
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: invariant
// ---------------------------------------------------------------------------

fn invariant_rule(
    file: &str,
    lexed: &Lexed,
    fns: &[FnSpan],
    directives: &Directives,
    out: &mut Vec<Diagnostic>,
    index: &mut Vec<InvariantEntry>,
) {
    for c in &directives.invariant_comments {
        // Innermost function whose body contains the comment line, else the
        // next function declared at or below it (attrs/docs may intervene).
        let owner = fns
            .iter()
            .filter(|f| (f.body_start_line..=f.body_end_line).contains(&c.line))
            .min_by_key(|f| f.body_end_line - f.body_start_line)
            .or_else(|| {
                fns.iter()
                    .filter(|f| f.sig_line >= c.line)
                    .min_by_key(|f| f.sig_line)
            });
        match owner {
            None => {
                out.push(Diagnostic {
                    rule: "invariant",
                    file: file.to_string(),
                    line: c.line,
                    message: "INVARIANT comment is not attached to any function".to_string(),
                });
                index.push(InvariantEntry {
                    file: file.to_string(),
                    line: c.line,
                    function: String::new(),
                    text: c.text.clone(),
                    checked: false,
                });
            }
            Some(f) => {
                let (a, b) = f.body_tokens;
                let checked = lexed.tokens[a..b.min(lexed.tokens.len())]
                    .windows(2)
                    .any(|w| {
                        w[0].kind == TokenKind::Ident
                            && w[0].text.starts_with("debug_assert")
                            && w[1].text == "!"
                    });
                if !checked {
                    out.push(Diagnostic {
                        rule: "invariant",
                        file: file.to_string(),
                        line: c.line,
                        message: format!(
                            "fn {} declares an INVARIANT but contains no debug_assert! backing it",
                            f.name
                        ),
                    });
                }
                index.push(InvariantEntry {
                    file: file.to_string(),
                    line: c.line,
                    function: f.name.clone(),
                    text: c.text.clone(),
                    checked,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> FileReport {
        analyze_source("test.rs", src, RuleSet::all())
    }

    #[test]
    fn unwrap_and_expect_flagged() {
        let r = run("fn f(x: Option<u32>) -> u32 { x.unwrap() + x.expect(\"y\") }");
        assert_eq!(
            r.diagnostics.iter().filter(|d| d.rule == "panic").count(),
            2
        );
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let r = run("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }");
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn panic_macros_flagged_but_not_in_tests() {
        let src =
            "fn f() { panic!(\"x\"); }\n#[cfg(test)]\nmod tests {\n fn g() { panic!(\"ok\"); }\n}";
        let r = run(src);
        let panics: Vec<_> = r.diagnostics.iter().filter(|d| d.rule == "panic").collect();
        assert_eq!(panics.len(), 1);
        assert_eq!(panics[0].line, 1);
    }

    #[test]
    fn allow_comment_suppresses_same_line_and_above() {
        let same = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint: allow(panic, reason = \"checked\")";
        assert!(run(same).diagnostics.is_empty());
        let above = "// lint: allow(panic, reason = \"checked\")\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(run(above).diagnostics.is_empty());
    }

    #[test]
    fn allow_without_reason_is_reported() {
        let r = run("// lint: allow(panic)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }");
        assert!(r.diagnostics.iter().any(|d| d.rule == "lint-syntax"));
    }

    #[test]
    fn unknown_rule_name_is_reported() {
        let r = run("// lint: allow(bogus, reason = \"x\")\nfn f() {}");
        assert!(r.diagnostics.iter().any(|d| d.rule == "lint-syntax"));
    }

    #[test]
    fn float_eq_flagged_only_for_float_operands() {
        let r = run("fn f(x: f64, n: usize) -> bool { x == 0.0 && n == 0 }");
        assert_eq!(
            r.diagnostics
                .iter()
                .filter(|d| d.rule == "float-eq")
                .count(),
            1
        );
    }

    #[test]
    fn partial_cmp_chain_flagged() {
        let src = "fn f(a: f64, b: f64) -> std::cmp::Ordering { a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal) }";
        let r = run(src);
        assert_eq!(r.diagnostics.iter().filter(|d| d.rule == "nan").count(), 1);
        // panic rule does not double-count unwrap_or
        assert!(r.diagnostics.iter().all(|d| d.rule != "panic"));
    }

    #[test]
    fn narrowing_and_index_casts_flagged() {
        let r = run("fn f(x: u64, t: f64, v: &[u8]) -> u8 { let _ = v[t as usize]; x as u8 }");
        let casts: Vec<_> = r.diagnostics.iter().filter(|d| d.rule == "cast").collect();
        assert_eq!(casts.len(), 2);
    }

    #[test]
    fn plain_usize_cast_outside_indexing_not_flagged() {
        let r = analyze_source(
            "t.rs",
            "fn f(x: u32) -> usize { x as usize }",
            RuleSet::library(),
        );
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn bare_indexing_flagged_in_hot_path_mode_only() {
        let src = "fn f(v: &[u8], i: usize) -> u8 { v[i] }";
        assert_eq!(
            run(src)
                .diagnostics
                .iter()
                .filter(|d| d.rule == "panic")
                .count(),
            1
        );
        let lib = analyze_source("t.rs", src, RuleSet::library());
        assert!(lib.diagnostics.is_empty());
    }

    #[test]
    fn full_range_index_not_flagged() {
        let src = "fn f(v: &[u8]) -> &[u8] { &v[..] }";
        assert!(run(src).diagnostics.is_empty());
    }

    #[test]
    fn invariant_without_debug_assert_flagged() {
        let src = "/// INVARIANT: x is finite\nfn f(x: f64) -> f64 { x * 2.0 }";
        let r = run(src);
        assert_eq!(
            r.diagnostics
                .iter()
                .filter(|d| d.rule == "invariant")
                .count(),
            1
        );
        assert_eq!(r.invariants.len(), 1);
        assert!(!r.invariants[0].checked);
        assert_eq!(r.invariants[0].function, "f");
    }

    #[test]
    fn invariant_with_debug_assert_indexed_as_checked() {
        let src = "// INVARIANT: x is finite\nfn f(x: f64) -> f64 { debug_assert!(x.is_finite()); x * 2.0 }";
        let r = run(src);
        assert!(r.diagnostics.is_empty());
        assert_eq!(r.invariants.len(), 1);
        assert!(r.invariants[0].checked);
    }

    #[test]
    fn invariant_inside_fn_body_attaches_to_that_fn() {
        let src = "fn outer(x: f64) -> f64 {\n    // INVARIANT: gradient is finite\n    debug_assert!(x.is_finite());\n    x\n}";
        let r = run(src);
        assert!(r.diagnostics.is_empty());
        assert_eq!(r.invariants[0].function, "outer");
    }

    #[test]
    fn attribute_brackets_not_treated_as_indexing() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f() -> S { S }";
        assert!(run(src).diagnostics.is_empty());
    }

    #[test]
    fn strings_do_not_trigger_rules() {
        let src = "fn f() -> &'static str { \"call .unwrap() == 0.0\" }";
        assert!(run(src).diagnostics.is_empty());
    }
}
