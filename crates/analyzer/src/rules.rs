//! Rule passes over the token/comment streams produced by [`crate::lexer`],
//! with structural context from [`crate::parse`].
//!
//! Token-level rules:
//!
//! | rule        | flags |
//! |-------------|-------|
//! | `panic`     | `.unwrap()` / `.expect(..)` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` in library code; bare slice indexing in hot-path files |
//! | `float-eq`  | `==` / `!=` where an operand is a float literal |
//! | `nan`       | `.partial_cmp(..)` chained into `unwrap*`/`expect` (NaN panics or is silently misordered); division by a literal zero |
//! | `cast`      | narrowing integer casts; `as usize`-family casts inside index brackets; float-literal → integer casts |
//! | `invariant` | `// INVARIANT:` comments whose function has no `debug_assert!` |
//!
//! Semantic rule families (need the parse layer):
//!
//! | rule             | flags |
//! |------------------|-------|
//! | `determinism`    | iteration over `HashMap`/`HashSet` (hash order feeds labels/features/training order) unless the statement sorts the result or collects into an ordered type |
//! | `error-discard`  | `let _ = <call>;`, bare `.ok();`, and `pub fn .. -> Result` without `#[must_use]` in the crates whose errors gate correctness |
//! | `hot-loop-alloc` | `Vec::new` / `vec!` / `.clone()` / `.to_vec()` / `format!` / `.to_string()` / `.to_owned()` inside loop bodies or iterator-adapter closures of hot-path files |
//! | `io-seam`        | direct `std::fs` / `File::create` / `OpenOptions` use in the IO-seam crates (core/dataset/obs library code must route filesystem access through the `routenet-faults` seam so fault injection and retry apply) |
//!
//! Suppression: `// lint: allow(<rule>, reason = "...")`. A trailing
//! directive covers its own line; a standalone directive covers the next
//! statement — and, when that statement opens a block, the whole block/item.
//! The reason is mandatory — an allow without one is itself reported (rule
//! `lint-syntax`), and an allow that suppresses nothing is reported as
//! `lint-stale`.

use crate::lexer::{Comment, Lexed, Token, TokenKind};
use crate::parse::{self, Parsed};

/// Severity of a finding. `Deny` findings fail the gate; `Warn` findings are
/// reported but do not affect the exit code. Defaults come from [`RULES`] and
/// can be overridden per rule with `--deny` / `--warn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the gate.
    Deny,
    /// Reported only.
    Warn,
}

impl Severity {
    /// Lowercase name used in reports and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// Static registry entry for one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule name, as used in `lint: allow(..)` and CLI flags.
    pub name: &'static str,
    /// Stable ID carried in the JSON report (`RN0xx` core, `RN1xx` semantic).
    pub id: &'static str,
    /// Severity when no CLI override is given.
    pub default_severity: Severity,
}

/// The rule registry. IDs are append-only: a retired rule's ID is never
/// reused, so report consumers can rely on them across versions.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "panic",
        id: "RN001",
        default_severity: Severity::Deny,
    },
    RuleInfo {
        name: "float-eq",
        id: "RN002",
        default_severity: Severity::Deny,
    },
    RuleInfo {
        name: "nan",
        id: "RN003",
        default_severity: Severity::Deny,
    },
    RuleInfo {
        name: "cast",
        id: "RN004",
        default_severity: Severity::Deny,
    },
    RuleInfo {
        name: "invariant",
        id: "RN005",
        default_severity: Severity::Deny,
    },
    RuleInfo {
        name: "lint-syntax",
        id: "RN006",
        default_severity: Severity::Deny,
    },
    RuleInfo {
        name: "lint-stale",
        id: "RN007",
        default_severity: Severity::Warn,
    },
    RuleInfo {
        name: "determinism",
        id: "RN101",
        default_severity: Severity::Deny,
    },
    RuleInfo {
        name: "error-discard",
        id: "RN102",
        default_severity: Severity::Deny,
    },
    RuleInfo {
        name: "hot-loop-alloc",
        id: "RN103",
        default_severity: Severity::Warn,
    },
    RuleInfo {
        name: "parallel-shared-mut",
        id: "RN201",
        default_severity: Severity::Deny,
    },
    RuleInfo {
        name: "parallel-float-reduce",
        id: "RN202",
        default_severity: Severity::Deny,
    },
    RuleInfo {
        name: "parallel-rng",
        id: "RN203",
        default_severity: Severity::Deny,
    },
    RuleInfo {
        name: "hot-loop-lock",
        id: "RN204",
        default_severity: Severity::Warn,
    },
    RuleInfo {
        name: "relaxed-publish",
        id: "RN205",
        default_severity: Severity::Deny,
    },
    RuleInfo {
        name: "io-seam",
        id: "RN301",
        default_severity: Severity::Deny,
    },
    RuleInfo {
        name: "unit-mismatch",
        id: "RN401",
        default_severity: Severity::Deny,
    },
    RuleInfo {
        name: "unit-dimension",
        id: "RN402",
        default_severity: Severity::Deny,
    },
    RuleInfo {
        name: "unit-sink",
        id: "RN403",
        default_severity: Severity::Deny,
    },
    RuleInfo {
        name: "nan-div",
        id: "RN404",
        default_severity: Severity::Deny,
    },
    RuleInfo {
        name: "nan-domain",
        id: "RN405",
        default_severity: Severity::Deny,
    },
    RuleInfo {
        name: "nan-sink",
        id: "RN406",
        default_severity: Severity::Deny,
    },
];

/// All rule names, in registry order.
pub const RULE_NAMES: &[&str] = &[
    "panic",
    "float-eq",
    "nan",
    "cast",
    "invariant",
    "lint-syntax",
    "lint-stale",
    "determinism",
    "error-discard",
    "hot-loop-alloc",
    "parallel-shared-mut",
    "parallel-float-reduce",
    "parallel-rng",
    "hot-loop-lock",
    "relaxed-publish",
    "io-seam",
    "unit-mismatch",
    "unit-dimension",
    "unit-sink",
    "nan-div",
    "nan-domain",
    "nan-sink",
];

/// Registry entry for `rule` (`None` for unknown names).
pub fn rule_info(rule: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == rule)
}

/// Stable ID for `rule` (`"RN000"` for unknown names, which never leave the
/// analyzer's own tests).
pub fn rule_id(rule: &str) -> &'static str {
    rule_info(rule).map_or("RN000", |r| r.id)
}

/// One finding, pointing at `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Effective severity (default from [`RULES`], may be overridden).
    pub severity: Severity,
}

impl Diagnostic {
    /// Construct with the rule's default severity.
    pub fn new(rule: &'static str, file: &str, line: u32, message: String) -> Self {
        Diagnostic {
            rule,
            file: file.to_string(),
            line,
            message,
            severity: rule_info(rule).map_or(Severity::Deny, |r| r.default_severity),
        }
    }

    /// Stable ID of this finding's rule.
    pub fn id(&self) -> &'static str {
        rule_id(self.rule)
    }
}

/// An `// INVARIANT:` annotation and whether its function checks it.
#[derive(Debug, Clone)]
pub struct InvariantEntry {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// Name of the function the invariant is attached to (empty if unattached).
    pub function: String,
    /// Invariant text (after `INVARIANT:`).
    pub text: String,
    /// Whether the function body contains a `debug_assert!` family call.
    pub checked: bool,
}

/// A parsed `// lint: allow(..)` directive.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the directive comment.
    pub line: u32,
    /// Rule being allowed.
    pub rule: String,
    /// Justification text.
    pub reason: String,
}

/// Which rules run on a given file.
#[derive(Debug, Clone, Copy)]
pub struct RuleSet {
    /// Flag `.unwrap()`/`.expect()`/`panic!`-family in library code.
    pub panic_calls: bool,
    /// Flag bare slice indexing (hot-path files only).
    pub panic_indexing: bool,
    /// Flag float-literal `==`/`!=`.
    pub float_eq: bool,
    /// Flag NaN-unsound patterns.
    pub nan: bool,
    /// Flag lossy casts.
    pub cast: bool,
    /// Check `// INVARIANT:` annotations.
    pub invariant: bool,
    /// Flag unsorted `HashMap`/`HashSet` iteration (label/feature/training
    /// order crates only).
    pub determinism: bool,
    /// Flag `let _ = <call>;` and bare `.ok();` discards.
    pub error_discard: bool,
    /// Flag `pub fn .. -> Result` without `#[must_use]` (core/dataset APIs).
    pub must_use: bool,
    /// Flag allocation in loop bodies (allocation-hot files only).
    pub hot_loop_alloc: bool,
    /// RN201/202/203/205: parallel-region determinism audits (spawn-body
    /// shared mutation, shared float reduction, shared RNG streams, relaxed
    /// publication).
    pub concurrency: bool,
    /// RN204: flag lock acquisition in loop bodies (allocation-hot files
    /// only, same scope as `hot_loop_alloc`).
    pub hot_loop_lock: bool,
    /// RN301: flag direct `std::fs` / `File` / `OpenOptions` use in the
    /// IO-seam crates — their library code must go through `routenet-faults`.
    pub io_seam: bool,
    /// RN401–RN406: numeric dataflow (unit/dimension inference and
    /// NaN-taint) in the measurement and kernel files.
    pub numeric: bool,
}

impl RuleSet {
    /// Everything on — used for fixtures and the analyzer's own tests.
    pub fn all() -> Self {
        RuleSet {
            panic_calls: true,
            panic_indexing: true,
            float_eq: true,
            nan: true,
            cast: true,
            invariant: true,
            determinism: true,
            error_discard: true,
            must_use: true,
            hot_loop_alloc: true,
            concurrency: true,
            hot_loop_lock: true,
            io_seam: true,
            numeric: true,
        }
    }

    /// Default for ordinary library code: the path-scoped audits
    /// (indexing, determinism, must-use, hot-loop allocation) are off and
    /// opted in per path by `rules_for`.
    pub fn library() -> Self {
        RuleSet {
            panic_indexing: false,
            determinism: false,
            must_use: false,
            hot_loop_alloc: false,
            hot_loop_lock: false,
            io_seam: false,
            numeric: false,
            ..RuleSet::all()
        }
    }

    /// Binaries (`src/bin/`) may panic and discard errors: CLI tools fail
    /// loudly by design. Numeric discipline still applies.
    pub fn binary() -> Self {
        RuleSet {
            panic_calls: false,
            error_discard: false,
            ..RuleSet::library()
        }
    }

    /// Is `rule` enabled under this set? Used by stale-allow detection so a
    /// directive for a rule that never runs here is not reported as stale.
    pub fn enables(&self, rule: &str) -> bool {
        match rule {
            "panic" => self.panic_calls || self.panic_indexing,
            "float-eq" => self.float_eq,
            "nan" => self.nan,
            "cast" => self.cast,
            "invariant" => self.invariant,
            "determinism" => self.determinism,
            "error-discard" => self.error_discard || self.must_use,
            "hot-loop-alloc" => self.hot_loop_alloc,
            "parallel-shared-mut"
            | "parallel-float-reduce"
            | "parallel-rng"
            | "relaxed-publish" => self.concurrency,
            "hot-loop-lock" => self.hot_loop_lock,
            "io-seam" => self.io_seam,
            "unit-mismatch" | "unit-dimension" | "unit-sink" | "nan-div" | "nan-domain"
            | "nan-sink" => self.numeric,
            "lint-syntax" | "lint-stale" => true,
            _ => false,
        }
    }
}

/// Full single-file analysis result.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings after allow-directive and test-span filtering.
    pub diagnostics: Vec<Diagnostic>,
    /// Invariant index entries (including checked ones).
    pub invariants: Vec<InvariantEntry>,
    /// Allow directives that suppressed at least the syntax check.
    pub allows: Vec<AllowEntry>,
}

/// Analyze one file's source text (no call-graph context: the RN203/RN204
/// transitive checks fall back to direct evidence only).
pub fn analyze_source(file: &str, source: &str, rules: RuleSet) -> FileReport {
    analyze_source_with(file, source, rules, None, None)
}

/// Analyze one file's source text with optional workspace call-graph
/// context for the transitive RN2xx checks and optional workspace unit
/// environment for the RN4xx numeric-dataflow checks. When `units` is
/// `None` and the numeric family is enabled, a single-file environment is
/// built from this source alone (cross-call inference degrades to
/// same-file calls only).
pub fn analyze_source_with(
    file: &str,
    source: &str,
    rules: RuleSet,
    graph: Option<&crate::callgraph::CallGraph>,
    units: Option<&crate::numeric::UnitEnv>,
) -> FileReport {
    let lexed = crate::lexer::lex(source);
    let test_spans = test_mod_spans(&lexed.tokens);
    let fns = function_spans(&lexed.tokens);
    let parsed = parse::parse(&lexed.tokens);
    let directives = parse_directives(file, &lexed, &test_spans);

    let mut raw: Vec<Diagnostic> = directives.syntax_errors.clone();
    if rules.panic_calls || rules.panic_indexing {
        panic_rule(file, &lexed.tokens, rules, &mut raw);
    }
    if rules.float_eq {
        float_eq_rule(file, &lexed.tokens, &mut raw);
    }
    if rules.nan {
        nan_rule(file, &lexed.tokens, &mut raw);
    }
    if rules.cast {
        cast_rule(file, &lexed.tokens, &mut raw);
    }
    if rules.determinism {
        determinism_rule(file, &lexed.tokens, &parsed, &mut raw);
    }
    if rules.error_discard {
        error_discard_rule(file, &lexed.tokens, &mut raw);
    }
    if rules.must_use {
        must_use_rule(file, &parsed, &mut raw);
    }
    if rules.hot_loop_alloc {
        hot_loop_alloc_rule(file, &lexed.tokens, &parsed, &mut raw);
    }
    if rules.io_seam {
        io_seam_rule(file, &lexed.tokens, &mut raw);
    }
    if rules.concurrency || rules.hot_loop_lock {
        crate::concurrency::concurrency_rules(file, &lexed.tokens, &parsed, graph, rules, &mut raw);
    }
    if rules.numeric {
        match units {
            Some(env) => crate::numeric::numeric_rules(file, &lexed, &fns, env, &mut raw),
            None => {
                let env = crate::numeric::UnitEnv::build(&[(file.to_string(), source.to_string())]);
                crate::numeric::numeric_rules(file, &lexed, &fns, &env, &mut raw);
            }
        }
    }

    let mut invariants = Vec::new();
    if rules.invariant {
        invariant_rule(file, &lexed, &fns, &directives, &mut raw, &mut invariants);
    }

    // Stale-allow detection against the *raw* findings (before test-span
    // filtering, so an allow inside test code is never reported as stale).
    let mut stale: Vec<Diagnostic> = Vec::new();
    for span in &directives.allow_spans {
        let matched = raw
            .iter()
            .any(|d| d.rule == span.rule && span.covers(d.line));
        if !matched && rules.enables(&span.rule) && !in_spans(span.directive_line, &test_spans) {
            stale.push(Diagnostic::new(
                "lint-stale",
                file,
                span.directive_line,
                format!(
                    "lint: allow({}) suppressed nothing — remove the stale directive",
                    span.rule
                ),
            ));
        }
    }
    raw.extend(stale);

    let diagnostics = raw
        .into_iter()
        .filter(|d| !in_spans(d.line, &test_spans))
        .filter(|d| !directives.is_allowed(d.rule, d.line))
        .collect();

    FileReport {
        diagnostics,
        invariants,
        allows: directives.allows,
    }
}

// ---------------------------------------------------------------------------
// Directives: `lint: allow(..)` and `INVARIANT:` comments
// ---------------------------------------------------------------------------

/// Line coverage of one `lint: allow(..)` directive.
#[derive(Debug)]
struct AllowSpan {
    rule: String,
    /// Line of the directive comment (always covered, so trailing allows
    /// keep working).
    directive_line: u32,
    /// First covered code line.
    start: u32,
    /// Last covered code line: equal to `start` for trailing directives,
    /// extended to the end of the next statement — or of the block/item it
    /// opens — for standalone directives.
    end: u32,
}

impl AllowSpan {
    fn covers(&self, line: u32) -> bool {
        line == self.directive_line || (self.start..=self.end).contains(&line)
    }
}

struct Directives {
    allow_spans: Vec<AllowSpan>,
    allows: Vec<AllowEntry>,
    invariant_comments: Vec<Comment>,
    syntax_errors: Vec<Diagnostic>,
}

impl Directives {
    fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allow_spans
            .iter()
            .any(|s| s.rule == rule && s.covers(line))
    }
}

fn parse_directives(file: &str, lexed: &Lexed, test_spans: &[(u32, u32)]) -> Directives {
    let mut d = Directives {
        allow_spans: Vec::new(),
        allows: Vec::new(),
        invariant_comments: Vec::new(),
        syntax_errors: Vec::new(),
    };
    for c in &lexed.comments {
        // Strip doc-comment leaders (`///`, `//!` arrive as `/`, `!`).
        let text = c.text.trim_start_matches(['/', '!']).trim();
        if let Some(rest) = text.strip_prefix("INVARIANT:") {
            d.invariant_comments.push(Comment {
                line: c.line,
                text: rest.trim().to_string(),
            });
            continue;
        }
        let Some(rest) = text.strip_prefix("lint:") else {
            continue;
        };
        match parse_allow(rest.trim()) {
            Ok((rule, reason)) => {
                d.allow_spans.push(allow_span(&rule, c.line, &lexed.tokens));
                d.allows.push(AllowEntry {
                    file: file.to_string(),
                    line: c.line,
                    rule,
                    reason,
                });
            }
            Err(msg) if !in_spans(c.line, test_spans) => {
                d.syntax_errors
                    .push(Diagnostic::new("lint-syntax", file, c.line, msg));
            }
            Err(_) => {}
        }
    }
    d
}

/// Compute the line span a directive at `line` suppresses.
///
/// A trailing directive (code on the same line) covers its line plus the
/// next code line, matching the historical behavior. A standalone directive
/// covers the statement that follows it; when that statement opens a block
/// (`fn`, `impl`, `for`, ...) the whole block/item is covered, and coverage
/// stops at the block's closing brace — it never leaks to the next item.
fn allow_span(rule: &str, line: u32, tokens: &[Token]) -> AllowSpan {
    let trailing = tokens.iter().any(|t| t.line == line);
    let Some(idx) = tokens.iter().position(|t| t.line > line) else {
        return AllowSpan {
            rule: rule.to_string(),
            directive_line: line,
            start: line,
            end: line,
        };
    };
    let start = tokens[idx].line;
    if trailing {
        return AllowSpan {
            rule: rule.to_string(),
            directive_line: line,
            start,
            end: start,
        };
    }
    let mut end = start;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut j = idx;
    while let Some(t) = tokens.get(j) {
        match t.text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" if paren == 0 && bracket == 0 => {
                let close = skip_balanced(tokens, j, "{", "}");
                end = tokens
                    .get(close.saturating_sub(1))
                    .map_or(t.line, |t| t.line);
                break;
            }
            ";" | "," if paren == 0 && bracket == 0 => {
                end = t.line;
                break;
            }
            "}" => {
                // Closing the enclosing block: the covered statement was a
                // tail expression.
                end = t.line;
                break;
            }
            _ => {}
        }
        end = t.line;
        j += 1;
    }
    AllowSpan {
        rule: rule.to_string(),
        directive_line: line,
        start,
        end,
    }
}

/// Parse `allow(<rule>, reason = "...")`. The reason is mandatory.
fn parse_allow(text: &str) -> Result<(String, String), String> {
    let Some(inner) = text
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('('))
        .and_then(|t| t.strip_suffix(')'))
    else {
        return Err(format!("malformed lint directive `lint: {text}` — expected `lint: allow(<rule>, reason = \"...\")`"));
    };
    let Some((rule, rest)) = inner.split_once(',') else {
        return Err(
            "lint allow is missing a reason — write `lint: allow(<rule>, reason = \"...\")`"
                .to_string(),
        );
    };
    let rule = rule.trim().to_string();
    if !RULE_NAMES.contains(&rule.as_str()) {
        return Err(format!(
            "unknown lint rule `{rule}` (known: panic, float-eq, nan, cast, invariant, determinism, error-discard, hot-loop-alloc, parallel-shared-mut, parallel-float-reduce, parallel-rng, hot-loop-lock, relaxed-publish, io-seam, unit-mismatch, unit-dimension, unit-sink, nan-div, nan-domain, nan-sink)"
        ));
    }
    let reason = rest
        .trim()
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('='))
        .map(str::trim)
        .map(|t| t.trim_matches('"').trim())
        .unwrap_or("");
    if reason.is_empty() {
        return Err(format!(
            "lint allow({rule}) has an empty reason — justify the exception"
        ));
    }
    Ok((rule, reason.to_string()))
}

// ---------------------------------------------------------------------------
// Structural scans: `#[cfg(test)] mod` spans and function spans
// ---------------------------------------------------------------------------

pub(crate) fn in_spans(line: u32, spans: &[(u32, u32)]) -> bool {
    spans.iter().any(|&(a, b)| (a..=b).contains(&line))
}

/// Line spans of `#[cfg(test)] mod .. { .. }` bodies.
pub(crate) fn test_mod_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // Skip this attribute, any further attributes, and visibility.
            let mut j = skip_attr(tokens, i);
            loop {
                if matches!(tokens.get(j), Some(t) if t.text == "#") {
                    j = skip_attr(tokens, j);
                } else if matches!(tokens.get(j), Some(t) if t.text == "pub") {
                    j += 1;
                    if matches!(tokens.get(j), Some(t) if t.text == "(") {
                        j = skip_balanced(tokens, j, "(", ")");
                    }
                } else {
                    break;
                }
            }
            if matches!(tokens.get(j), Some(t) if t.text == "mod") {
                // mod <name> { ... }
                if let Some(open) = tokens[j..].iter().position(|t| t.text == "{") {
                    let start_idx = j + open;
                    let end_idx = skip_balanced(tokens, start_idx, "{", "}");
                    let start = tokens[start_idx].line;
                    let end = tokens
                        .get(end_idx.saturating_sub(1))
                        .map_or(start, |t| t.line);
                    spans.push((tokens[i].line, end));
                    i = end_idx;
                    continue;
                }
            }
        }
        i += 1;
    }
    spans
}

/// Does `tokens[i..]` start `#[cfg(test)]`?
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let texts: Vec<&str> = tokens[i..]
        .iter()
        .take(7)
        .map(|t| t.text.as_str())
        .collect();
    matches!(texts.as_slice(), ["#", "[", "cfg", "(", "test", ")", "]"])
}

/// Given `tokens[i] == "#"`, return the index just past the attribute.
pub(crate) fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if matches!(tokens.get(j), Some(t) if t.text == "!") {
        j += 1;
    }
    if matches!(tokens.get(j), Some(t) if t.text == "[") {
        skip_balanced(tokens, j, "[", "]")
    } else {
        j
    }
}

/// Given `tokens[open]` is the opening delimiter, return the index just past
/// its matching close (or `tokens.len()` when unbalanced).
pub(crate) fn skip_balanced(tokens: &[Token], open: usize, open_t: &str, close_t: &str) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].text == open_t {
            depth += 1;
        } else if tokens[j].text == close_t {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

/// A function item: name, signature line, and body token/line extent.
#[derive(Debug)]
pub(crate) struct FnSpan {
    pub(crate) name: String,
    pub(crate) sig_line: u32,
    pub(crate) body_start_line: u32,
    pub(crate) body_end_line: u32,
    pub(crate) body_tokens: (usize, usize),
}

pub(crate) fn function_spans(tokens: &[Token]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Ident && tokens[i].text == "fn" {
            let name_tok = tokens.get(i + 1);
            // `fn(` is a function-pointer type, `Fn(..)` never lexes as `fn`.
            if let Some(name) = name_tok.filter(|t| t.kind == TokenKind::Ident) {
                // Find the body `{`: first brace outside parens/brackets.
                let mut j = i + 2;
                let mut paren = 0i32;
                let mut bracket = 0i32;
                let mut body = None;
                while let Some(t) = tokens.get(j) {
                    match t.text.as_str() {
                        "(" => paren += 1,
                        ")" => paren -= 1,
                        "[" => bracket += 1,
                        "]" => bracket -= 1,
                        "{" if paren == 0 && bracket == 0 => {
                            body = Some(j);
                            break;
                        }
                        ";" if paren == 0 && bracket == 0 => break, // trait decl
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(open) = body {
                    let end = skip_balanced(tokens, open, "{", "}");
                    fns.push(FnSpan {
                        name: name.text.clone(),
                        sig_line: tokens[i].line,
                        body_start_line: tokens[open].line,
                        body_end_line: tokens
                            .get(end.saturating_sub(1))
                            .map_or(tokens[open].line, |t| t.line),
                        body_tokens: (open, end),
                    });
                    // Continue scanning *inside* the body too (nested fns):
                    // advance past `fn name` only.
                }
            }
        }
        i += 1;
    }
    fns
}

// ---------------------------------------------------------------------------
// Rule: panic
// ---------------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that may directly precede `[` without forming an index
/// expression (slice patterns, array types after `as`, ...).
const NON_INDEX_PREFIX: &[&str] = &[
    "let", "mut", "ref", "in", "return", "match", "if", "else", "as", "dyn", "impl", "box",
];

fn panic_rule(file: &str, tokens: &[Token], rules: RuleSet, out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if rules.panic_calls && t.kind == TokenKind::Ident {
            let prev = i.checked_sub(1).and_then(|p| tokens.get(p));
            let next = tokens.get(i + 1);
            let is_method =
                prev.is_some_and(|p| p.text == ".") && next.is_some_and(|n| n.text == "(");
            if is_method && (t.text == "unwrap" || t.text == "expect") {
                out.push(Diagnostic::new(
                    "panic",
                    file,
                    t.line,
                    format!(
                        ".{}() in library code — return a typed error or justify with `// lint: allow(panic, reason = \"...\")`",
                        t.text
                    ),
                ));
            }
            let is_macro = next.is_some_and(|n| n.text == "!")
                && !prev.is_some_and(|p| p.text == "." || p.text == "fn");
            if is_macro && PANIC_MACROS.contains(&t.text.as_str()) {
                out.push(Diagnostic::new(
                    "panic",
                    file,
                    t.line,
                    format!(
                        "{}! in library code — return a typed error or justify with `// lint: allow(panic, reason = \"...\")`",
                        t.text
                    ),
                ));
            }
        }
        if rules.panic_indexing && t.text == "[" {
            if let Some(prev) = i.checked_sub(1).and_then(|p| tokens.get(p)) {
                let indexable = (prev.kind == TokenKind::Ident
                    && !NON_INDEX_PREFIX.contains(&prev.text.as_str()))
                    || prev.text == "]"
                    || prev.text == ")";
                if indexable && !is_full_range_index(tokens, i) {
                    out.push(Diagnostic::new(
                        "panic",
                        file,
                        t.line,
                        "bare slice indexing in hot-path code — use .get()/.get_mut(), prove the bound with a debug_assert! + allow, or restructure".to_string(),
                    ));
                }
            }
        }
    }
}

/// `x[..]` — the only indexing form that cannot panic.
fn is_full_range_index(tokens: &[Token], open: usize) -> bool {
    matches!(tokens.get(open + 1), Some(t) if t.text == "..")
        && matches!(tokens.get(open + 2), Some(t) if t.text == "]")
}

// ---------------------------------------------------------------------------
// Rule: float-eq
// ---------------------------------------------------------------------------

fn float_eq_rule(file: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.text != "==" && t.text != "!=" {
            continue;
        }
        let lhs_float = i
            .checked_sub(1)
            .and_then(|p| tokens.get(p))
            .is_some_and(|p| p.kind == TokenKind::Float);
        let rhs = tokens.get(i + 1);
        let rhs_float = match rhs {
            Some(r) if r.kind == TokenKind::Float => true,
            Some(r) if r.text == "-" => {
                matches!(tokens.get(i + 2), Some(n) if n.kind == TokenKind::Float)
            }
            _ => false,
        };
        if lhs_float || rhs_float {
            out.push(Diagnostic::new(
                "float-eq",
                file,
                t.line,
                format!(
                    "exact float comparison `{}` with a float literal — compare against an epsilon or justify with `// lint: allow(float-eq, reason = \"...\")`",
                    t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: nan
// ---------------------------------------------------------------------------

const NAN_SINKS: &[&str] = &["unwrap", "expect", "unwrap_or", "unwrap_or_else"];

fn nan_rule(file: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        // `.partial_cmp(..).unwrap*` — panics on NaN or silently misorders it.
        if t.kind == TokenKind::Ident
            && t.text == "partial_cmp"
            && i.checked_sub(1)
                .and_then(|p| tokens.get(p))
                .is_some_and(|p| p.text == ".")
            && matches!(tokens.get(i + 1), Some(n) if n.text == "(")
        {
            let after_args = skip_balanced(tokens, i + 1, "(", ")");
            let chained = matches!(tokens.get(after_args), Some(d) if d.text == ".")
                && matches!(
                    tokens.get(after_args + 1),
                    Some(m) if NAN_SINKS.contains(&m.text.as_str())
                );
            if chained {
                let sink = &tokens[after_args + 1].text;
                out.push(Diagnostic::new(
                    "nan",
                    file,
                    t.line,
                    format!(
                        ".partial_cmp(..).{sink}(..) mishandles NaN — use f64::total_cmp or handle the None case"
                    ),
                ));
            }
        }
        // Division by a literal zero always produces inf/NaN.
        if t.text == "/"
            && matches!(
                tokens.get(i + 1),
                Some(z) if z.kind == TokenKind::Float && is_zero_float_literal(&z.text)
            )
        {
            out.push(Diagnostic::new(
                "nan",
                file,
                t.line,
                "division by literal 0.0 produces inf/NaN".to_string(),
            ));
        }
    }
}

/// True for `0.0`, `0.`, `0.000f64`, ... — every digit is zero.
fn is_zero_float_literal(text: &str) -> bool {
    let core = text
        .strip_suffix("f64")
        .or_else(|| text.strip_suffix("f32"))
        .unwrap_or(text);
    core.chars().all(|c| matches!(c, '0' | '.' | '_')) && core.contains('0')
}

// ---------------------------------------------------------------------------
// Rule: cast
// ---------------------------------------------------------------------------

const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];
const INDEX_TARGETS: &[&str] = &["usize", "isize", "u64", "i64", "u128", "i128"];

fn cast_rule(file: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    // Track whether each `[`/`]` nesting level is an *index* bracket.
    let mut index_stack: Vec<bool> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        match t.text.as_str() {
            "[" => {
                let prev = i.checked_sub(1).and_then(|p| tokens.get(p));
                let is_index = prev.is_some_and(|p| {
                    (p.kind == TokenKind::Ident && !NON_INDEX_PREFIX.contains(&p.text.as_str()))
                        || p.text == "]"
                        || p.text == ")"
                });
                index_stack.push(is_index);
            }
            "]" => {
                index_stack.pop();
            }
            "as" if t.kind == TokenKind::Ident => {
                let Some(target) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) else {
                    continue;
                };
                let prev_float = i
                    .checked_sub(1)
                    .and_then(|p| tokens.get(p))
                    .is_some_and(|p| p.kind == TokenKind::Float);
                let in_index = index_stack.last().copied().unwrap_or(false);
                if NARROW_TARGETS.contains(&target.text.as_str()) {
                    out.push(Diagnostic::new(
                        "cast",
                        file,
                        t.line,
                        format!(
                            "potentially lossy `as {}` — use From/TryFrom or justify with `// lint: allow(cast, reason = \"...\")`",
                            target.text
                        ),
                    ));
                } else if INDEX_TARGETS.contains(&target.text.as_str()) && (in_index || prev_float)
                {
                    out.push(Diagnostic::new(
                        "cast",
                        file,
                        t.line,
                        format!(
                            "lossy `as {}` in indexing position — truncation silently redirects the access; bound-check first or justify with `// lint: allow(cast, reason = \"...\")`",
                            target.text
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: invariant
// ---------------------------------------------------------------------------

fn invariant_rule(
    file: &str,
    lexed: &Lexed,
    fns: &[FnSpan],
    directives: &Directives,
    out: &mut Vec<Diagnostic>,
    index: &mut Vec<InvariantEntry>,
) {
    for c in &directives.invariant_comments {
        // Innermost function whose body contains the comment line, else the
        // next function declared at or below it (attrs/docs may intervene).
        let owner = fns
            .iter()
            .filter(|f| (f.body_start_line..=f.body_end_line).contains(&c.line))
            .min_by_key(|f| f.body_end_line - f.body_start_line)
            .or_else(|| {
                fns.iter()
                    .filter(|f| f.sig_line >= c.line)
                    .min_by_key(|f| f.sig_line)
            });
        match owner {
            None => {
                out.push(Diagnostic::new(
                    "invariant",
                    file,
                    c.line,
                    "INVARIANT comment is not attached to any function".to_string(),
                ));
                index.push(InvariantEntry {
                    file: file.to_string(),
                    line: c.line,
                    function: String::new(),
                    text: c.text.clone(),
                    checked: false,
                });
            }
            Some(f) => {
                let (a, b) = f.body_tokens;
                let checked = lexed.tokens[a..b.min(lexed.tokens.len())]
                    .windows(2)
                    .any(|w| {
                        w[0].kind == TokenKind::Ident
                            && w[0].text.starts_with("debug_assert")
                            && w[1].text == "!"
                    });
                if !checked {
                    out.push(Diagnostic::new(
                        "invariant",
                        file,
                        c.line,
                        format!(
                            "fn {} declares an INVARIANT but contains no debug_assert! backing it",
                            f.name
                        ),
                    ));
                }
                index.push(InvariantEntry {
                    file: file.to_string(),
                    line: c.line,
                    function: f.name.clone(),
                    text: c.text.clone(),
                    checked,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: determinism
// ---------------------------------------------------------------------------

/// Methods whose iteration order on a hash collection is nondeterministic.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "into_keys",
    "into_values",
];

/// Collecting into these types re-establishes a deterministic order.
const ORDERED_SINKS: &[&str] = &["BTreeMap", "BTreeSet", "BinaryHeap"];

fn determinism_rule(file: &str, tokens: &[Token], parsed: &Parsed, out: &mut Vec<Diagnostic>) {
    let is_hash = |t: &Token| {
        t.kind == TokenKind::Ident
            && (parsed.hash_names.iter().any(|n| n == &t.text)
                || parsed.hash_aliases.iter().any(|a| a == &t.text))
    };
    let mut flagged_lines: Vec<u32> = Vec::new();
    let mut flag = |line: u32, what: &str, out: &mut Vec<Diagnostic>| {
        if !flagged_lines.contains(&line) {
            flagged_lines.push(line);
            out.push(Diagnostic::new(
                "determinism",
                file,
                line,
                format!(
                    "{what} iterates a HashMap/HashSet in nondeterministic order — labels, features, and training order must not depend on hash order; use BTreeMap/BTreeSet or sort the collected items"
                ),
            ));
        }
    };
    for (i, t) in tokens.iter().enumerate() {
        // `for .. in <expr mentioning a hash binding> {`
        if t.kind == TokenKind::Ident && t.text == "for" {
            if let Some(in_idx) = find_for_in(tokens, i) {
                let mut j = in_idx + 1;
                let mut depth = 0i32;
                while let Some(t2) = tokens.get(j) {
                    match t2.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => break,
                        ";" => break,
                        _ => {}
                    }
                    if is_hash(t2) {
                        flag(t.line, "for loop", out);
                        break;
                    }
                    j += 1;
                }
            }
        }
        // `<hash>.iter()` / `.keys()` / ... unless the statement (or the one
        // right after it) sorts the result or collects into an ordered type.
        if is_hash(t)
            && matches!(tokens.get(i + 1), Some(d) if d.text == ".")
            && matches!(
                tokens.get(i + 2),
                Some(m) if m.kind == TokenKind::Ident && HASH_ITER_METHODS.contains(&m.text.as_str())
            )
            && matches!(tokens.get(i + 3), Some(p) if p.text == "(")
            && !statement_restores_order(tokens, i)
        {
            let method = &tokens[i + 2].text;
            flag(tokens[i + 2].line, &format!(".{method}()"), out);
        }
    }
}

/// For a `for` keyword at `i`, find its `in` token (depth-0), if any.
fn find_for_in(tokens: &[Token], i: usize) -> Option<usize> {
    let mut j = i + 1;
    let mut depth = 0i32;
    while let Some(t) = tokens.get(j) {
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "in" if depth == 0 && t.kind == TokenKind::Ident => return Some(j),
            // `impl Trait for Type {`, `for<'a>` bounds, or a lost cause.
            "{" | ";" | "<" if depth == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Does the statement containing token `i` — or the statement immediately
/// after it — sort its result or collect into an ordered container?
fn statement_restores_order(tokens: &[Token], i: usize) -> bool {
    // Back up to the start of the statement.
    let mut start = i;
    while start > 0 {
        let t = &tokens[start - 1];
        if t.text == ";" || t.text == "{" || t.text == "}" {
            break;
        }
        start -= 1;
    }
    let mut depth = 0i32;
    let mut statements_seen = 0usize;
    let mut j = start;
    while let Some(t) = tokens.get(j) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    break; // end of enclosing block
                }
                depth -= 1;
            }
            ";" if depth == 0 => {
                statements_seen += 1;
                if statements_seen > 1 {
                    break;
                }
            }
            _ => {
                if t.kind == TokenKind::Ident
                    && (t.text.starts_with("sort") || ORDERED_SINKS.contains(&t.text.as_str()))
                {
                    return true;
                }
            }
        }
        j += 1;
    }
    false
}

// ---------------------------------------------------------------------------
// Rule: error-discard
// ---------------------------------------------------------------------------

fn error_discard_rule(file: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        // `let _ = <expr with a call>;`
        if t.kind == TokenKind::Ident
            && t.text == "let"
            && matches!(tokens.get(i + 1), Some(u) if u.text == "_")
            && matches!(tokens.get(i + 2), Some(e) if e.text == "=")
        {
            let mut j = i + 3;
            let mut depth = 0i32;
            let mut has_call = false;
            while let Some(t2) = tokens.get(j) {
                match t2.text.as_str() {
                    "(" => {
                        has_call = true;
                        depth += 1;
                    }
                    "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if has_call {
                out.push(Diagnostic::new(
                    "error-discard",
                    file,
                    t.line,
                    "`let _ =` discards a fallible result — handle the error, propagate with `?`, or justify with `// lint: allow(error-discard, reason = \"...\")`".to_string(),
                ));
            }
        }
        // Bare `.ok();` — the Result is converted to Option and dropped.
        if t.text == "."
            && matches!(tokens.get(i + 1), Some(o) if o.kind == TokenKind::Ident && o.text == "ok")
            && matches!(tokens.get(i + 2), Some(p) if p.text == "(")
            && matches!(tokens.get(i + 3), Some(p) if p.text == ")")
            && matches!(tokens.get(i + 4), Some(s) if s.text == ";")
        {
            out.push(Diagnostic::new(
                "error-discard",
                file,
                tokens[i + 1].line,
                "bare `.ok();` silently swallows the error — handle it, log it, or justify with `// lint: allow(error-discard, reason = \"...\")`".to_string(),
            ));
        }
    }
}

fn must_use_rule(file: &str, parsed: &Parsed, out: &mut Vec<Diagnostic>) {
    for f in &parsed.fns {
        if f.is_pub && f.returns_result && !f.has_must_use {
            out.push(Diagnostic::new(
                "error-discard",
                file,
                f.sig_line,
                format!(
                    "pub fn {} returns Result without #[must_use = \"...\"] — callers can drop the error without any compiler pushback",
                    f.name
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: io-seam
// ---------------------------------------------------------------------------

/// Flag direct filesystem access in the IO-seam crates. Library code in
/// core/dataset/obs must route all file IO through the `routenet-faults`
/// seam (`FaultFs` / `atomic_write_with`) so fault injection, retry, and
/// chaos tests see every operation. Detects `std::fs`, bare `fs::<call>`
/// after `use std::fs;`, `File::create`/`open`/`options`, and
/// `OpenOptions::new`.
fn io_seam_rule(file: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    let flag = |out: &mut Vec<Diagnostic>, line: u32, what: &str| {
        out.push(Diagnostic::new(
            "io-seam",
            file,
            line,
            format!(
                "{what} bypasses the fault-injection seam — route file IO through `routenet_faults::FaultFs` (or `atomic_write_with`) so injected faults and retries apply, or justify with `// lint: allow(io-seam, reason = \"...\")`"
            ),
        ));
    };
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let path_sep = |j: usize| matches!(tokens.get(j), Some(p) if p.text == "::");
        // `std :: fs` anywhere (use declarations and fully-qualified calls).
        if t.text == "std"
            && path_sep(i + 1)
            && matches!(tokens.get(i + 2), Some(m) if m.kind == TokenKind::Ident && m.text == "fs")
        {
            flag(out, t.line, "`std::fs`");
            continue;
        }
        // Bare `fs :: <ident>` — a call through `use std::fs;`. Skip when
        // `fs` is itself path-qualified (`std::fs::..` is caught above;
        // `routenet_faults::fs::..` is the seam itself).
        if t.text == "fs"
            && path_sep(i + 1)
            && matches!(tokens.get(i + 2), Some(m) if m.kind == TokenKind::Ident)
            && !(i >= 1 && tokens[i - 1].text == "::")
        {
            flag(out, t.line, "`fs::` call");
            continue;
        }
        // `File :: create|open|options`. Skip `fs::File::..` — the `fs::`
        // match above already flagged that line.
        if t.text == "File"
            && path_sep(i + 1)
            && matches!(
                tokens.get(i + 2),
                Some(m) if m.text == "create" || m.text == "open" || m.text == "options"
            )
            && !(i >= 2 && tokens[i - 1].text == "::" && tokens[i - 2].text == "fs")
        {
            flag(out, t.line, &format!("`File::{}`", tokens[i + 2].text));
            continue;
        }
        if t.text == "OpenOptions"
            && path_sep(i + 1)
            && matches!(tokens.get(i + 2), Some(m) if m.text == "new")
            && !(i >= 2 && tokens[i - 1].text == "::" && tokens[i - 2].text == "fs")
        {
            flag(out, t.line, "`OpenOptions::new`");
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: hot-loop-alloc
// ---------------------------------------------------------------------------

/// Methods that allocate a fresh owned value per call.
const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "to_string", "to_owned"];

fn hot_loop_alloc_rule(file: &str, tokens: &[Token], parsed: &Parsed, out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || !parse::in_ranges(i, &parsed.loop_ranges) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|p| tokens.get(p));
        let next = tokens.get(i + 1);
        let what = match t.text.as_str() {
            "Vec" | "String"
                if matches!(next, Some(n) if n.text == "::")
                    && matches!(
                        tokens.get(i + 2),
                        Some(m) if m.text == "new" || m.text == "with_capacity" || m.text == "from"
                    ) =>
            {
                Some(format!("{}::{}", t.text, tokens[i + 2].text))
            }
            "vec" | "format" if matches!(next, Some(n) if n.text == "!") => {
                Some(format!("{}!", t.text))
            }
            m if ALLOC_METHODS.contains(&m)
                && prev.is_some_and(|p| p.text == ".")
                && matches!(next, Some(n) if n.text == "(") =>
            {
                Some(format!(".{m}()"))
            }
            _ => None,
        };
        if let Some(what) = what {
            out.push(Diagnostic::new(
                "hot-loop-alloc",
                file,
                t.line,
                format!(
                    "{what} allocates on every iteration of a hot loop — hoist the allocation out of the loop, reuse a buffer, or justify with `// lint: allow(hot-loop-alloc, reason = \"...\")`"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> FileReport {
        analyze_source("test.rs", src, RuleSet::all())
    }

    #[test]
    fn unwrap_and_expect_flagged() {
        let r = run("fn f(x: Option<u32>) -> u32 { x.unwrap() + x.expect(\"y\") }");
        assert_eq!(
            r.diagnostics.iter().filter(|d| d.rule == "panic").count(),
            2
        );
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let r = run("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }");
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn panic_macros_flagged_but_not_in_tests() {
        let src =
            "fn f() { panic!(\"x\"); }\n#[cfg(test)]\nmod tests {\n fn g() { panic!(\"ok\"); }\n}";
        let r = run(src);
        let panics: Vec<_> = r.diagnostics.iter().filter(|d| d.rule == "panic").collect();
        assert_eq!(panics.len(), 1);
        assert_eq!(panics[0].line, 1);
    }

    #[test]
    fn allow_comment_suppresses_same_line_and_above() {
        let same = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint: allow(panic, reason = \"checked\")";
        assert!(run(same).diagnostics.is_empty());
        let above = "// lint: allow(panic, reason = \"checked\")\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(run(above).diagnostics.is_empty());
    }

    #[test]
    fn allow_without_reason_is_reported() {
        let r = run("// lint: allow(panic)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }");
        assert!(r.diagnostics.iter().any(|d| d.rule == "lint-syntax"));
    }

    #[test]
    fn unknown_rule_name_is_reported() {
        let r = run("// lint: allow(bogus, reason = \"x\")\nfn f() {}");
        assert!(r.diagnostics.iter().any(|d| d.rule == "lint-syntax"));
    }

    #[test]
    fn float_eq_flagged_only_for_float_operands() {
        let r = run("fn f(x: f64, n: usize) -> bool { x == 0.0 && n == 0 }");
        assert_eq!(
            r.diagnostics
                .iter()
                .filter(|d| d.rule == "float-eq")
                .count(),
            1
        );
    }

    #[test]
    fn partial_cmp_chain_flagged() {
        let src = "fn f(a: f64, b: f64) -> std::cmp::Ordering { a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal) }";
        let r = run(src);
        assert_eq!(r.diagnostics.iter().filter(|d| d.rule == "nan").count(), 1);
        // panic rule does not double-count unwrap_or
        assert!(r.diagnostics.iter().all(|d| d.rule != "panic"));
    }

    #[test]
    fn narrowing_and_index_casts_flagged() {
        let r = run("fn f(x: u64, t: f64, v: &[u8]) -> u8 { let _ = v[t as usize]; x as u8 }");
        let casts: Vec<_> = r.diagnostics.iter().filter(|d| d.rule == "cast").collect();
        assert_eq!(casts.len(), 2);
    }

    #[test]
    fn plain_usize_cast_outside_indexing_not_flagged() {
        let r = analyze_source(
            "t.rs",
            "fn f(x: u32) -> usize { x as usize }",
            RuleSet::library(),
        );
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn bare_indexing_flagged_in_hot_path_mode_only() {
        let src = "fn f(v: &[u8], i: usize) -> u8 { v[i] }";
        assert_eq!(
            run(src)
                .diagnostics
                .iter()
                .filter(|d| d.rule == "panic")
                .count(),
            1
        );
        let lib = analyze_source("t.rs", src, RuleSet::library());
        assert!(lib.diagnostics.is_empty());
    }

    #[test]
    fn full_range_index_not_flagged() {
        let src = "fn f(v: &[u8]) -> &[u8] { &v[..] }";
        assert!(run(src).diagnostics.is_empty());
    }

    #[test]
    fn invariant_without_debug_assert_flagged() {
        let src = "/// INVARIANT: x is finite\nfn f(x: f64) -> f64 { x * 2.0 }";
        let r = run(src);
        assert_eq!(
            r.diagnostics
                .iter()
                .filter(|d| d.rule == "invariant")
                .count(),
            1
        );
        assert_eq!(r.invariants.len(), 1);
        assert!(!r.invariants[0].checked);
        assert_eq!(r.invariants[0].function, "f");
    }

    #[test]
    fn invariant_with_debug_assert_indexed_as_checked() {
        let src = "// INVARIANT: x is finite\nfn f(x: f64) -> f64 { debug_assert!(x.is_finite()); x * 2.0 }";
        let r = run(src);
        assert!(r.diagnostics.is_empty());
        assert_eq!(r.invariants.len(), 1);
        assert!(r.invariants[0].checked);
    }

    #[test]
    fn invariant_inside_fn_body_attaches_to_that_fn() {
        let src = "fn outer(x: f64) -> f64 {\n    // INVARIANT: gradient is finite\n    debug_assert!(x.is_finite());\n    x\n}";
        let r = run(src);
        assert!(r.diagnostics.is_empty());
        assert_eq!(r.invariants[0].function, "outer");
    }

    #[test]
    fn attribute_brackets_not_treated_as_indexing() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f() -> S { S }";
        assert!(run(src).diagnostics.is_empty());
    }

    #[test]
    fn strings_do_not_trigger_rules() {
        let src = "fn f() -> &'static str { \"call .unwrap() == 0.0\" }";
        assert!(run(src).diagnostics.is_empty());
    }

    fn rules_of(rep: &FileReport) -> Vec<&'static str> {
        rep.diagnostics.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn determinism_flags_for_loop_and_methods() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) -> u32 {\n\
                       let mut t = 0;\n\
                       for v in m.values() { t += v; }\n\
                       t\n\
                   }";
        let rep = run(src);
        assert_eq!(rules_of(&rep), vec!["determinism"]);
        assert_eq!(rep.diagnostics[0].line, 4);
    }

    #[test]
    fn determinism_sorted_escape_suppresses() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                       let mut ks: Vec<u32> = m.keys().copied().collect();\n\
                       ks.sort_unstable();\n\
                       ks\n\
                   }";
        assert!(
            run(src).diagnostics.is_empty(),
            "{:?}",
            run(src).diagnostics
        );
    }

    #[test]
    fn determinism_respects_use_alias() {
        let src = "use std::collections::HashMap as Fast;\n\
                   fn f(m: &Fast<u32, u32>) -> usize {\n\
                       m.iter().count()\n\
                   }";
        assert_eq!(rules_of(&run(src)), vec!["determinism"]);
    }

    #[test]
    fn determinism_ignores_btree_and_vec() {
        let src = "use std::collections::BTreeMap;\n\
                   fn f(m: &BTreeMap<u32, u32>, v: &Vec<u32>) -> usize {\n\
                       let mut n = 0;\n\
                       for x in m.values() { n += x; }\n\
                       for x in v.iter() { n += x; }\n\
                       n as usize\n\
                   }";
        assert!(!rules_of(&run(src)).contains(&"determinism"));
    }

    #[test]
    fn error_discard_flags_let_underscore_and_bare_ok() {
        let src = "fn f() {\n\
                       let _ = cleanup(\"x\");\n\
                       cleanup(\"y\").ok();\n\
                   }";
        let rep = run(src);
        assert_eq!(rules_of(&rep), vec!["error-discard", "error-discard"]);
        assert_eq!(rep.diagnostics[0].line, 2);
        assert_eq!(rep.diagnostics[1].line, 3);
    }

    #[test]
    fn error_discard_ignores_non_call_and_ok_chains() {
        // `let _ = v[i];` has no call; `.ok()?` and `.ok().map(..)` use the
        // Option rather than dropping it.
        let src = "fn f(v: &[u32]) -> Option<u32> {\n\
                       let _ = v.len();\n\
                       let x = std::str::FromStr::from_str(\"1\").ok()?;\n\
                       Some(x)\n\
                   }";
        let rep = run(src);
        // v.len() IS a call and IS discarded — that one must still flag.
        assert_eq!(rules_of(&rep), vec!["error-discard"]);
        assert_eq!(rep.diagnostics[0].line, 2);
    }

    #[test]
    fn must_use_required_on_pub_result_fns() {
        let flagged = run("pub fn f() -> Result<u32, String> { Ok(1) }");
        assert_eq!(rules_of(&flagged), vec!["error-discard"]);
        let private = run("fn f() -> Result<u32, String> { Ok(1) }");
        assert!(private.diagnostics.is_empty());
        let attributed = run("#[must_use = \"why\"]\npub fn f() -> Result<u32, String> { Ok(1) }");
        assert!(attributed.diagnostics.is_empty());
        let plain = run("pub fn f() -> u32 { 1 }");
        assert!(plain.diagnostics.is_empty());
    }

    #[test]
    fn hot_loop_alloc_flags_only_inside_loops() {
        let src = "fn f(names: &[String]) -> usize {\n\
                       let hoisted = String::new();\n\
                       let mut t = hoisted.len();\n\
                       for n in names {\n\
                           let c = n.clone();\n\
                           t += c.len();\n\
                       }\n\
                       t\n\
                   }";
        let rep = run(src);
        assert_eq!(rules_of(&rep), vec!["hot-loop-alloc"]);
        assert_eq!(rep.diagnostics[0].line, 5);
    }

    #[test]
    fn hot_loop_alloc_sees_iterator_adapter_closures() {
        let src = "fn f(xs: &[u32]) -> usize {\n\
                       xs.iter().map(|x| x.to_string()).count()\n\
                   }";
        assert_eq!(rules_of(&run(src)), vec!["hot-loop-alloc"]);
    }

    #[test]
    fn allow_scopes_to_following_block_not_rest_of_file() {
        let src = "fn f(m: &std::collections::HashMap<u32, u32>) -> u32 {\n\
                       let mut t = 0;\n\
                       // lint: allow(determinism, reason = \"sum is order-independent\")\n\
                       for v in m.values() {\n\
                           t += v;\n\
                       }\n\
                       for v in m.values() {\n\
                           t += v;\n\
                       }\n\
                       t\n\
                   }";
        let rep = run(src);
        // Only the second loop (outside the allow's block span) is flagged.
        assert_eq!(rules_of(&rep), vec!["determinism"]);
        assert_eq!(rep.diagnostics[0].line, 7);
    }

    #[test]
    fn stale_allow_is_reported() {
        let src = "// lint: allow(panic, reason = \"nothing here panics\")\n\
                   fn f() -> u32 { 1 }";
        let rep = run(src);
        assert_eq!(rules_of(&rep), vec!["lint-stale"]);
        assert_eq!(rep.diagnostics[0].severity, Severity::Warn);
        assert!(rep.diagnostics[0].message.contains("suppressed nothing"));
    }

    #[test]
    fn matching_allow_is_not_stale() {
        let src = "fn f(o: Option<u32>) -> u32 {\n\
                       // lint: allow(panic, reason = \"caller guarantees Some\")\n\
                       o.unwrap()\n\
                   }";
        let rep = run(src);
        assert!(rep.diagnostics.is_empty(), "{:?}", rep.diagnostics);
        assert_eq!(rep.allows.len(), 1);
    }

    #[test]
    fn rule_ids_are_stable() {
        assert_eq!(rule_id("panic"), "RN001");
        assert_eq!(rule_id("determinism"), "RN101");
        assert_eq!(rule_id("error-discard"), "RN102");
        assert_eq!(rule_id("hot-loop-alloc"), "RN103");
        assert_eq!(rule_id("io-seam"), "RN301");
        assert_eq!(rule_id("unheard-of"), "RN000");
    }

    #[test]
    fn io_seam_flags_direct_fs_access() {
        let src = "use std::fs::File;\n\
                   fn f() -> std::io::Result<Vec<u8>> { std::fs::read(\"x\") }\n\
                   fn g() -> std::io::Result<()> { File::create(\"x\").map(|_| ()) }\n\
                   fn h() { OpenOptions::new(); }";
        let r = run(src);
        let lines: Vec<u32> = r
            .diagnostics
            .iter()
            .filter(|d| d.rule == "io-seam")
            .map(|d| d.line)
            .collect();
        assert_eq!(lines, vec![1, 2, 3, 4]);
    }

    #[test]
    fn io_seam_flags_bare_fs_calls_after_use() {
        let src = "use std::fs;\nfn f() -> std::io::Result<()> { fs::write(\"x\", b\"y\") }";
        let r = run(src);
        let lines: Vec<u32> = r
            .diagnostics
            .iter()
            .filter(|d| d.rule == "io-seam")
            .map(|d| d.line)
            .collect();
        assert_eq!(lines, vec![1, 2]);
    }

    #[test]
    fn io_seam_ignores_the_seam_crate_path_and_test_modules() {
        let src = "use routenet_faults::fs::RealFs;\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                    fn f() { std::fs::write(\"x\", b\"y\").unwrap(); }\n\
                   }";
        let r = run(src);
        assert!(
            !r.diagnostics.iter().any(|d| d.rule == "io-seam"),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn io_seam_allow_directive_suppresses() {
        let src = "fn f() -> std::io::Result<Vec<u8>> { std::fs::read(\"x\") } // lint: allow(io-seam, reason = \"boot-time read before the seam is wired\")";
        let r = run(src);
        assert!(!r.diagnostics.iter().any(|d| d.rule == "io-seam"));
    }
}
