//! Workspace-wide call graph with per-function effect inference.
//!
//! The RN2xx concurrency rules ([`crate::concurrency`]) need cross-file
//! answers — "does the function called inside this `scope.spawn` closure
//! touch an RNG, anywhere down its call chain?" — that no single-file token
//! pass can give. This module builds that context in three steps:
//!
//! 1. **Symbol table**: every function item in the analyzed file set, keyed
//!    by simple name and, where the declaring `impl` block names a type, by
//!    `Type::name` too. Functions inside `#[cfg(test)]` modules are excluded
//!    so test-only helpers never poison production call chains.
//! 2. **Call-site resolution**: plain calls (`helper(..)`), path calls
//!    (`Type::helper(..)`), and method calls (`x.helper(..)`) inside each
//!    function body, resolved by name against the symbol table. Name-based
//!    resolution is deliberately conservative: an ambiguous name unions the
//!    effects of every candidate, so the rules over-approximate rather than
//!    miss a hazard.
//! 3. **Effect inference**: direct effects per body (touches-RNG,
//!    seeds-own-RNG, allocates, locks, does-IO, mutates-through-`&mut`),
//!    then a fixed-point pass that propagates RNG and lock effects through
//!    resolved calls. A function that *seeds its own RNG* from explicit
//!    state (`seed_from_u64`, `from_seed`, ...) is a derivation boundary:
//!    its stream is a pure function of its arguments, so neither its own
//!    RNG use nor its callees' propagates to callers.
//!
//! Everything is stored in sorted `Vec`s keyed by `(file, name, line)` —
//! never a hash map — so the graph, and every report built on it, is
//! byte-identical across runs and input orderings.

use crate::lexer::{Token, TokenKind};

/// Direct (single-body) effects of one function.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Effects {
    /// Body calls an RNG method (`gen_range`, `shuffle`, `sample`, ...).
    pub uses_rng: bool,
    /// Body seeds an RNG from explicit state (`seed_from_u64`,
    /// `from_seed`, ...) — a per-call derived stream, not an ambient one.
    pub seeds_own_rng: bool,
    /// Body allocates (`Vec::new`, `vec!`, `.clone()`, `.collect()`, ...).
    pub allocates: bool,
    /// Body acquires a lock (`.lock(..)`).
    pub locks: bool,
    /// Body does file/stream I/O.
    pub does_io: bool,
    /// Body writes through `&mut` state it did not create (`*x = ..`,
    /// `self.field = ..`, or a `&mut` parameter).
    pub mutates_state: bool,
}

/// One function node in the graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Workspace-relative path of the declaring file.
    pub file: String,
    /// Simple function name.
    pub name: String,
    /// `Type::name` when declared in an `impl` block with a nameable type.
    pub qualified: Option<String>,
    /// Line of the `fn` keyword.
    pub sig_line: u32,
    /// Effects of this body alone.
    pub direct: Effects,
    /// Callee names (simple or `Type::name`), sorted and deduplicated.
    pub calls: Vec<String>,
    /// RNG hazard after propagation: this function draws from an RNG stream
    /// it did not derive itself, directly or through any callee.
    pub rng_hazard: bool,
    /// Acquires a lock, directly or through any callee.
    pub lock_effect: bool,
}

/// The workspace call graph: function nodes sorted by `(file, sig_line)`.
#[derive(Debug, Default)]
pub struct CallGraph {
    nodes: Vec<FnNode>,
}

/// RNG draw methods: using one on a receiver advances a random stream.
pub const RNG_METHODS: &[&str] = &[
    "gen",
    "gen_range",
    "gen_bool",
    "sample",
    "shuffle",
    "choose",
    "choose_multiple",
    "fill",
];

/// Constructors that derive an RNG stream from explicit state. A body that
/// calls one owns its stream: callers see no RNG hazard through it.
pub const RNG_SEEDERS: &[&str] = &["seed_from_u64", "from_seed", "from_state", "from_os_rng"];

const ALLOC_IDENTS: &[&str] = &["Vec", "String", "Box", "BTreeMap", "BTreeSet", "HashMap"];
const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "to_string", "to_owned", "collect"];
const IO_IDENTS: &[&str] = &["File", "stdin", "stdout", "stderr", "OpenOptions"];
const IO_METHODS: &[&str] = &[
    "read_to_string",
    "write_all",
    "flush",
    "read_dir",
    "create_dir_all",
    "remove_file",
    "read_line",
];

/// Names too generic to resolve by name alone: uniting every `new` in the
/// workspace would wire unrelated constructors into every call chain, and
/// plain `drop(x)` is std's free function, not any local `Drop` impl.
/// Qualified forms (`Type::new`) still resolve exactly.
const UNRESOLVABLE_NAMES: &[&str] = &[
    "new",
    "default",
    "with_capacity",
    "from",
    "build",
    "get",
    "drop",
];

impl CallGraph {
    /// Build the graph over `(workspace-relative path, source text)` pairs.
    /// Files are processed in the given order; the node list is then sorted,
    /// so any input ordering produces the same graph.
    pub fn build(files: &[(String, String)]) -> CallGraph {
        let mut nodes = Vec::new();
        for (rel, source) in files {
            collect_file(rel, source, &mut nodes);
        }
        nodes.sort_by(|a, b| (&a.file, a.sig_line, &a.name).cmp(&(&b.file, b.sig_line, &b.name)));
        let mut g = CallGraph { nodes };
        g.propagate();
        g
    }

    /// All nodes, sorted by `(file, sig_line)`.
    pub fn nodes(&self) -> &[FnNode] {
        &self.nodes
    }

    /// Indices of every node matching `name` (simple or `Type::name`).
    fn candidates(&self, name: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.name == name || n.qualified.as_deref() == Some(name))
            .map(|(i, _)| i)
            .collect()
    }

    /// Does any function matching `name` carry a propagated RNG hazard?
    /// Unknown names resolve to `false`: the graph only ever adds evidence.
    pub fn rng_hazard(&self, name: &str) -> bool {
        self.candidates(name)
            .iter()
            .any(|&i| self.nodes[i].rng_hazard)
    }

    /// Does any function matching `name` acquire a lock, transitively?
    pub fn lock_effect(&self, name: &str) -> bool {
        self.candidates(name)
            .iter()
            .any(|&i| self.nodes[i].lock_effect)
    }

    /// Fixed-point propagation of RNG and lock effects through resolved
    /// calls. Both flags only ever turn on, so iteration terminates and the
    /// result is independent of visit order.
    fn propagate(&mut self) {
        for n in &mut self.nodes {
            n.rng_hazard = n.direct.uses_rng && !n.direct.seeds_own_rng;
            n.lock_effect = n.direct.locks;
        }
        loop {
            let mut changed = false;
            for i in 0..self.nodes.len() {
                let mut rng = self.nodes[i].rng_hazard;
                let mut lock = self.nodes[i].lock_effect;
                for callee in &self.nodes[i].calls {
                    for &j in &self.candidates(callee) {
                        if j == i {
                            continue;
                        }
                        // A self-seeding body owns every stream below it.
                        if !self.nodes[i].direct.seeds_own_rng {
                            rng |= self.nodes[j].rng_hazard;
                        }
                        lock |= self.nodes[j].lock_effect;
                    }
                }
                if rng != self.nodes[i].rng_hazard || lock != self.nodes[i].lock_effect {
                    self.nodes[i].rng_hazard = rng;
                    self.nodes[i].lock_effect = lock;
                    changed = true;
                }
            }
            if !changed {
                return;
            }
        }
    }
}

/// Lex one file and append its function nodes.
fn collect_file(rel: &str, source: &str, nodes: &mut Vec<FnNode>) {
    let lexed = crate::lexer::lex(source);
    let tokens = &lexed.tokens;
    let test_spans = crate::rules::test_mod_spans(tokens);
    let impl_owners = impl_owner_ranges(tokens);
    for f in crate::rules::function_spans(tokens) {
        if crate::rules::in_spans(f.sig_line, &test_spans) {
            continue;
        }
        let (a, b) = f.body_tokens;
        let body = &tokens[a..b.min(tokens.len())];
        let owner = impl_owners
            .iter()
            .find(|(open, close, _)| (*open..*close).contains(&a))
            .map(|(_, _, ty)| ty.clone());
        nodes.push(FnNode {
            file: rel.to_string(),
            name: f.name.clone(),
            qualified: owner.map(|ty| format!("{ty}::{}", f.name)),
            sig_line: f.sig_line,
            direct: direct_effects(tokens, a, b),
            calls: call_sites(body),
            rng_hazard: false,
            lock_effect: false,
        });
    }
}

/// `(open token, close token, type name)` for every `impl` block whose
/// implemented type is a plain identifier (`impl Foo`, `impl Trait for Foo`).
fn impl_owner_ranges(tokens: &[Token]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "impl" {
            continue;
        }
        // Walk to the body `{`, remembering the last plain identifier seen
        // at angle-depth 0 — that is the implemented type (after `for`, if
        // present, else the only path).
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut ty: Option<String> = None;
        while let Some(t2) = tokens.get(j) {
            match t2.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" if angle <= 0 => break,
                ";" => break,
                "where" if t2.kind == TokenKind::Ident => break,
                _ if angle == 0 && t2.kind == TokenKind::Ident && t2.text != "for" => {
                    ty = Some(t2.text.clone());
                }
                _ => {}
            }
            j += 1;
        }
        if let (Some(ty), Some(open)) = (ty, tokens.get(j).filter(|t| t.text == "{").map(|_| j)) {
            let close = crate::rules::skip_balanced(tokens, open, "{", "}");
            out.push((open, close, ty));
        }
    }
    out
}

/// Scan one body's tokens (`tokens[a..b]`) for direct effects.
fn direct_effects(tokens: &[Token], a: usize, b: usize) -> Effects {
    let mut e = Effects::default();
    let body = &tokens[a..b.min(tokens.len())];
    for (i, t) in body.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|p| body.get(p));
        let next = body.get(i + 1);
        let is_method = prev.is_some_and(|p| p.text == ".") && next.is_some_and(|n| n.text == "(");
        let is_call = next.is_some_and(|n| n.text == "(");
        let is_macro = next.is_some_and(|n| n.text == "!");
        match t.text.as_str() {
            m if is_method && RNG_METHODS.contains(&m) => e.uses_rng = true,
            s if is_call && RNG_SEEDERS.contains(&s) => e.seeds_own_rng = true,
            m if is_method && ALLOC_METHODS.contains(&m) => e.allocates = true,
            m if is_method && IO_METHODS.contains(&m) => e.does_io = true,
            "lock" if is_method => e.locks = true,
            "vec" | "format" if is_macro => e.allocates = true,
            "println" | "eprintln" | "print" | "eprint" | "writeln" if is_macro => {
                e.does_io = true;
            }
            id if ALLOC_IDENTS.contains(&id)
                && next.is_some_and(|n| n.text == "::")
                && matches!(
                    body.get(i + 2),
                    Some(c) if c.text == "new" || c.text == "with_capacity" || c.text == "from"
                ) =>
            {
                e.allocates = true;
            }
            id if IO_IDENTS.contains(&id) && next.is_some_and(|n| n.text == "::") => {
                e.does_io = true;
            }
            _ => {}
        }
    }
    // Writes through captured/borrowed state: `*x = ..` / `*x += ..`, or an
    // assignment rooted at `self`.
    for (i, t) in body.iter().enumerate() {
        let assigns = t.text == "=" || is_compound_assign(&t.text);
        if !assigns {
            continue;
        }
        let mut j = i;
        while j > 0 {
            let p = &body[j - 1];
            if p.kind == TokenKind::Ident || p.text == "." || p.text == "::" {
                j -= 1;
            } else {
                break;
            }
        }
        if j > 0 && body[j - 1].text == "*" {
            e.mutates_state = true;
        }
        if body.get(j).is_some_and(|t| t.text == "self") && j < i {
            e.mutates_state = true;
        }
    }
    e
}

/// Is `text` a compound assignment operator?
pub(crate) fn is_compound_assign(text: &str) -> bool {
    matches!(
        text,
        "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>="
    )
}

/// Callee names referenced by one body: plain calls, `Type::name(..)` path
/// calls, and `.name(..)` method calls. Sorted and deduplicated. Names in
/// [`UNRESOLVABLE_NAMES`] are kept only in their qualified form.
fn call_sites(body: &[Token]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut push = |s: String| {
        if let Err(pos) = out.binary_search(&s) {
            out.insert(pos, s);
        }
    };
    for (i, t) in body.iter().enumerate() {
        if t.kind != TokenKind::Ident || !matches!(body.get(i + 1), Some(n) if n.text == "(") {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|p| body.get(p));
        match prev.map(|p| p.text.as_str()) {
            Some("fn") => {} // nested declaration, not a call
            Some("::") => {
                // `Type::name(` — qualify when the segment before `::` is a
                // type-looking identifier; record the simple name too unless
                // it is too generic to mean anything on its own.
                if let Some(q) = i
                    .checked_sub(2)
                    .and_then(|p| body.get(p))
                    .filter(|q| q.kind == TokenKind::Ident)
                {
                    push(format!("{}::{}", q.text, t.text));
                }
                if !UNRESOLVABLE_NAMES.contains(&t.text.as_str()) {
                    push(t.text.clone());
                }
            }
            // Method-call RNG draws (`rng.gen(..)`) are already a *direct*
            // effect; linking them by name would wire any free function that
            // happens to be called `gen`/`sample`/`fill` into the chain.
            Some(".")
                if UNRESOLVABLE_NAMES.contains(&t.text.as_str())
                    || RNG_METHODS.contains(&t.text.as_str()) => {}
            _ => {
                if !UNRESOLVABLE_NAMES.contains(&t.text.as_str()) {
                    push(t.text.clone());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(a, b)| ((*a).to_string(), (*b).to_string()))
            .collect();
        CallGraph::build(&owned)
    }

    #[test]
    fn direct_effects_detected() {
        let g = graph_of(&[(
            "a.rs",
            "fn f(rng: &mut R) -> f64 { let v = vec![1]; rng.gen_range(0.0..1.0) }",
        )]);
        let n = &g.nodes()[0];
        assert!(n.direct.uses_rng && n.direct.allocates);
        assert!(!n.direct.seeds_own_rng && !n.direct.locks);
        assert!(n.rng_hazard);
    }

    #[test]
    fn self_seeding_cuts_rng_hazard() {
        let src = "fn draw(rng: &mut R) -> f64 { rng.gen_range(0.0..1.0) }\n\
                   fn sample(i: u64) -> f64 { let mut rng = StdRng::seed_from_u64(i); draw(&mut rng) }\n\
                   fn caller(i: u64) -> f64 { sample(i) }";
        let g = graph_of(&[("a.rs", src)]);
        let by_name = |n: &str| g.nodes().iter().find(|f| f.name == n).unwrap().clone();
        assert!(by_name("draw").rng_hazard);
        assert!(!by_name("sample").rng_hazard, "seeding blesses the chain");
        assert!(!by_name("caller").rng_hazard);
        assert!(g.rng_hazard("draw"));
        assert!(!g.rng_hazard("caller"));
    }

    #[test]
    fn rng_hazard_propagates_across_files() {
        let g = graph_of(&[
            ("a.rs", "pub fn noisy(rng: &mut R) -> f64 { rng.sample(D) }"),
            ("b.rs", "pub fn wrapper(rng: &mut R) -> f64 { noisy(rng) }"),
            ("c.rs", "pub fn outer(rng: &mut R) -> f64 { wrapper(rng) }"),
        ]);
        assert!(g.rng_hazard("outer"));
    }

    #[test]
    fn lock_effect_propagates_through_methods() {
        let src = "struct S;\nimpl S {\n fn read(&self) -> f64 { let g = self.m.lock(); g }\n}\n\
                   fn use_it(s: &S) -> f64 { s.read() }";
        let g = graph_of(&[("a.rs", src)]);
        assert!(g.lock_effect("read"));
        assert!(g.lock_effect("S::read"));
        assert!(g.lock_effect("use_it"));
    }

    #[test]
    fn test_mod_fns_are_excluded() {
        let src =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n fn fake(rng: &mut R) { rng.shuffle(v); }\n}";
        let g = graph_of(&[("a.rs", src)]);
        assert_eq!(g.nodes().len(), 1);
        assert!(!g.rng_hazard("fake"));
    }

    #[test]
    fn generic_names_only_resolve_qualified() {
        let src = "impl Rng {\n fn new(s: u64) -> Self { let x = OS.sample(D); Rng }\n}\n\
                   fn a() { let r = Rng::new(1); }\n\
                   fn b() { let v = Vec::new(); }";
        let g = graph_of(&[("a.rs", src)]);
        let by_name = |n: &str| g.nodes().iter().find(|f| f.name == n).unwrap().clone();
        assert!(by_name("a").rng_hazard, "qualified Rng::new resolves");
        assert!(!by_name("b").rng_hazard, "Vec::new does not hit Rng::new");
    }

    #[test]
    fn graph_is_input_order_independent() {
        let files = [
            ("a.rs", "pub fn f(rng: &mut R) -> f64 { g(rng) }"),
            (
                "b.rs",
                "pub fn g(rng: &mut R) -> f64 { rng.gen_range(0.0..1.0) }",
            ),
        ];
        let fwd = graph_of(&files);
        let rev = graph_of(&[files[1], files[0]]);
        let names = |g: &CallGraph| {
            g.nodes()
                .iter()
                .map(|n| (n.file.clone(), n.name.clone(), n.rng_hazard, n.lock_effect))
                .collect::<Vec<_>>()
        };
        assert_eq!(names(&fwd), names(&rev));
    }

    #[test]
    fn mutates_state_detected() {
        let g = graph_of(&[(
            "a.rs",
            "impl S { fn bump(&mut self) { self.count += 1; } }\nfn deref(x: &mut f64) { *x = 1.0; }\nfn pure(y: f64) -> f64 { let z = y; z }",
        )]);
        let by_name = |n: &str| g.nodes().iter().find(|f| f.name == n).unwrap().clone();
        assert!(by_name("bump").direct.mutates_state);
        assert!(by_name("deref").direct.mutates_state);
        assert!(!by_name("pure").direct.mutates_state);
    }
}
