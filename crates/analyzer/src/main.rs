//! CLI for the workspace static-analysis gate.
//!
//! ```text
//! routenet-analyzer --workspace [--root DIR] [--json FILE] [--changed-only]
//!                   [--deny RULE] [--warn RULE]
//!                   [--baseline FILE | --write-baseline FILE]
//! routenet-analyzer [--json FILE] FILE.rs [FILE.rs ...]
//! ```
//!
//! `--changed-only` restricts the rule passes to files reported changed by
//! `git diff --name-only HEAD` plus untracked files — the fast pre-commit
//! loop. The call graph and unit environment are still built over the whole
//! workspace, and the changed set is expanded with every transitive *caller*
//! file of the changed functions: interprocedural RN2xx/RN4xx findings
//! report at the call site, so a callee-body edit must re-surface them in
//! callers the diff did not touch.
//!
//! Exit codes: 0 clean (no deny-level findings after baseline subtraction),
//! 1 deny-level findings or a stale baseline, 2 usage or I/O error.

use routenet_analyzer::rules::{Severity, RULE_NAMES};
use routenet_analyzer::{
    analyze_paths, analyze_workspace_filtered, expand_changed_files, find_workspace_root, Baseline,
    Report,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    workspace: bool,
    changed_only: bool,
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    severity_overrides: Vec<(String, Severity)>,
    paths: Vec<PathBuf>,
}

fn parse_rule_arg(flag: &str, value: Option<String>) -> Result<String, String> {
    let rule = value.ok_or(format!("{flag} requires a rule-name argument"))?;
    if RULE_NAMES.contains(&rule.as_str()) {
        Ok(rule)
    } else {
        Err(format!(
            "{flag}: unknown rule `{rule}` (known: {})",
            RULE_NAMES.join(", ")
        ))
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        changed_only: false,
        root: None,
        json: None,
        baseline: None,
        write_baseline: None,
        severity_overrides: Vec::new(),
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--changed-only" => args.changed_only = true,
            "--root" => {
                let v = it.next().ok_or("--root requires a directory argument")?;
                args.root = Some(PathBuf::from(v));
            }
            "--json" => {
                let v = it.next().ok_or("--json requires a file argument")?;
                args.json = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline requires a file argument")?;
                args.baseline = Some(PathBuf::from(v));
            }
            "--write-baseline" => {
                let v = it
                    .next()
                    .ok_or("--write-baseline requires a file argument")?;
                args.write_baseline = Some(PathBuf::from(v));
            }
            "--deny" => {
                let rule = parse_rule_arg("--deny", it.next())?;
                args.severity_overrides.push((rule, Severity::Deny));
            }
            "--warn" => {
                let rule = parse_rule_arg("--warn", it.next())?;
                args.severity_overrides.push((rule, Severity::Warn));
            }
            "--help" | "-h" => {
                return Err(String::new()); // triggers usage, exit 2
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if args.baseline.is_some() && args.write_baseline.is_some() {
        return Err("--baseline and --write-baseline are mutually exclusive".to_string());
    }
    if args.changed_only && !args.workspace {
        return Err("--changed-only requires --workspace".to_string());
    }
    if args.workspace == args.paths.is_empty() {
        Ok(args)
    } else if args.workspace {
        Err("--workspace and explicit paths are mutually exclusive".to_string())
    } else {
        Err("nothing to analyze: pass --workspace or explicit .rs files".to_string())
    }
}

fn usage() {
    eprintln!(
        "usage: routenet-analyzer --workspace [--root DIR] [--json FILE] [--changed-only]\n                          [--deny RULE] [--warn RULE]\n                          [--baseline FILE | --write-baseline FILE]\n       routenet-analyzer [--json FILE] FILE.rs [FILE.rs ...]"
    );
}

fn resolve_root(args: &Args) -> Result<PathBuf, String> {
    match &args.root {
        Some(r) => Ok(r.clone()),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cannot get cwd: {e}"))?;
            find_workspace_root(&cwd).ok_or_else(|| {
                "no workspace root (Cargo.toml with [workspace]) found above cwd".to_string()
            })
        }
    }
}

/// Workspace-relative paths of `.rs` files `git` reports as modified
/// (vs. HEAD) or untracked. Sorted and deduplicated.
fn git_changed_files(root: &Path) -> Result<Vec<String>, String> {
    let mut out: Vec<String> = Vec::new();
    for extra in [
        ["diff", "--name-only", "HEAD"].as_slice(),
        ["ls-files", "--others", "--exclude-standard"].as_slice(),
    ] {
        let cmd = std::process::Command::new("git")
            .args(extra)
            .current_dir(root)
            .output()
            .map_err(|e| format!("cannot run git: {e}"))?;
        if !cmd.status.success() {
            return Err(format!(
                "git {} failed: {}",
                extra.join(" "),
                String::from_utf8_lossy(&cmd.stderr).trim()
            ));
        }
        let stdout = String::from_utf8_lossy(&cmd.stdout);
        for line in stdout.lines() {
            let line = line.trim();
            if line.ends_with(".rs") && root.join(line).is_file() {
                out.push(line.to_string());
            }
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn run(args: &Args, changed: Option<&[String]>) -> Result<Report, String> {
    if args.workspace {
        let root = resolve_root(args)?;
        analyze_workspace_filtered(&root, changed).map_err(|e| e.to_string())
    } else {
        analyze_paths(&args.paths).map_err(|e| e.to_string())
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::from(2);
        }
    };
    let changed = if args.changed_only {
        let root = match resolve_root(&args) {
            Ok(r) => r,
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        };
        match git_changed_files(&root) {
            Ok(files) if files.is_empty() => Some(files),
            Ok(files) => match expand_changed_files(&root, &files) {
                Ok(expanded) => {
                    let dependents = expanded.len().saturating_sub(files.len());
                    if dependents > 0 {
                        eprintln!(
                            "changed-only: {} changed file(s) + {dependents} dependent caller file(s)",
                            files.len()
                        );
                    }
                    Some(expanded)
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };
    let mut report = match run(&args, changed.as_deref()) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    // A gate that scanned nothing must not report green: a mistyped --root
    // would otherwise pass CI silently. In --changed-only mode an empty scan
    // is the expected no-op on a clean tree.
    if report.files_scanned == 0 {
        if changed.is_some() {
            eprintln!("changed-only: no changed .rs files under analysis scope; nothing to do");
            return ExitCode::SUCCESS;
        }
        eprintln!("error: no .rs files found to analyze");
        return ExitCode::from(2);
    }
    report.apply_severity_overrides(&args.severity_overrides);
    if let Some(path) = &args.write_baseline {
        let text = Baseline::render(&report);
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "wrote baseline covering {} finding(s) to {}",
            report.diagnostics.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }
    let mut stale_baseline = Vec::new();
    if let Some(path) = &args.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let mut baseline = match Baseline::parse(&text) {
            Ok(b) => b,
            Err(msg) => {
                eprintln!("error: {}: {msg}", path.display());
                return ExitCode::from(2);
            }
        };
        // Entries for files outside the changed set were not scanned this
        // run; keeping them would misread as stale.
        if let Some(files) = &changed {
            baseline.retain_files(files);
        }
        stale_baseline = baseline.apply(&mut report);
    }
    if let Some(json_path) = &args.json {
        if let Err(e) = std::fs::write(json_path, report.json()) {
            eprintln!("error: cannot write {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }
    print!("{}", report.human());
    for msg in &stale_baseline {
        eprintln!("error: {msg}");
    }
    if report.deny_count() > 0 || !stale_baseline.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
