//! CLI for the workspace static-analysis gate.
//!
//! ```text
//! routenet-analyzer --workspace [--root DIR] [--json FILE]
//!                   [--deny RULE] [--warn RULE]
//!                   [--baseline FILE | --write-baseline FILE]
//! routenet-analyzer [--json FILE] FILE.rs [FILE.rs ...]
//! ```
//!
//! Exit codes: 0 clean (no deny-level findings after baseline subtraction),
//! 1 deny-level findings or a stale baseline, 2 usage or I/O error.

use routenet_analyzer::rules::{Severity, RULE_NAMES};
use routenet_analyzer::{analyze_paths, analyze_workspace, find_workspace_root, Baseline, Report};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workspace: bool,
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    severity_overrides: Vec<(String, Severity)>,
    paths: Vec<PathBuf>,
}

fn parse_rule_arg(flag: &str, value: Option<String>) -> Result<String, String> {
    let rule = value.ok_or(format!("{flag} requires a rule-name argument"))?;
    if RULE_NAMES.contains(&rule.as_str()) {
        Ok(rule)
    } else {
        Err(format!(
            "{flag}: unknown rule `{rule}` (known: {})",
            RULE_NAMES.join(", ")
        ))
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: None,
        json: None,
        baseline: None,
        write_baseline: None,
        severity_overrides: Vec::new(),
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--root" => {
                let v = it.next().ok_or("--root requires a directory argument")?;
                args.root = Some(PathBuf::from(v));
            }
            "--json" => {
                let v = it.next().ok_or("--json requires a file argument")?;
                args.json = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline requires a file argument")?;
                args.baseline = Some(PathBuf::from(v));
            }
            "--write-baseline" => {
                let v = it
                    .next()
                    .ok_or("--write-baseline requires a file argument")?;
                args.write_baseline = Some(PathBuf::from(v));
            }
            "--deny" => {
                let rule = parse_rule_arg("--deny", it.next())?;
                args.severity_overrides.push((rule, Severity::Deny));
            }
            "--warn" => {
                let rule = parse_rule_arg("--warn", it.next())?;
                args.severity_overrides.push((rule, Severity::Warn));
            }
            "--help" | "-h" => {
                return Err(String::new()); // triggers usage, exit 2
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if args.baseline.is_some() && args.write_baseline.is_some() {
        return Err("--baseline and --write-baseline are mutually exclusive".to_string());
    }
    if args.workspace == args.paths.is_empty() {
        Ok(args)
    } else if args.workspace {
        Err("--workspace and explicit paths are mutually exclusive".to_string())
    } else {
        Err("nothing to analyze: pass --workspace or explicit .rs files".to_string())
    }
}

fn usage() {
    eprintln!(
        "usage: routenet-analyzer --workspace [--root DIR] [--json FILE]\n                          [--deny RULE] [--warn RULE]\n                          [--baseline FILE | --write-baseline FILE]\n       routenet-analyzer [--json FILE] FILE.rs [FILE.rs ...]"
    );
}

fn run(args: &Args) -> Result<Report, String> {
    if args.workspace {
        let root = match &args.root {
            Some(r) => r.clone(),
            None => {
                let cwd = std::env::current_dir().map_err(|e| format!("cannot get cwd: {e}"))?;
                find_workspace_root(&cwd)
                    .ok_or("no workspace root (Cargo.toml with [workspace]) found above cwd")?
            }
        };
        analyze_workspace(&root).map_err(|e| e.to_string())
    } else {
        analyze_paths(&args.paths).map_err(|e| e.to_string())
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::from(2);
        }
    };
    let mut report = match run(&args) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    // A gate that scanned nothing must not report green: a mistyped --root
    // would otherwise pass CI silently.
    if report.files_scanned == 0 {
        eprintln!("error: no .rs files found to analyze");
        return ExitCode::from(2);
    }
    report.apply_severity_overrides(&args.severity_overrides);
    if let Some(path) = &args.write_baseline {
        let text = Baseline::render(&report);
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "wrote baseline covering {} finding(s) to {}",
            report.diagnostics.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }
    let mut stale_baseline = Vec::new();
    if let Some(path) = &args.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let baseline = match Baseline::parse(&text) {
            Ok(b) => b,
            Err(msg) => {
                eprintln!("error: {}: {msg}", path.display());
                return ExitCode::from(2);
            }
        };
        stale_baseline = baseline.apply(&mut report);
    }
    if let Some(json_path) = &args.json {
        if let Err(e) = std::fs::write(json_path, report.json()) {
            eprintln!("error: cannot write {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }
    print!("{}", report.human());
    for msg in &stale_baseline {
        eprintln!("error: {msg}");
    }
    if report.deny_count() > 0 || !stale_baseline.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
