//! CLI for the workspace static-analysis gate.
//!
//! ```text
//! routenet-analyzer --workspace [--root DIR] [--json FILE]
//! routenet-analyzer [--json FILE] FILE.rs [FILE.rs ...]
//! ```
//!
//! Exit codes: 0 clean, 1 diagnostics found, 2 usage or I/O error.

use routenet_analyzer::{analyze_paths, analyze_workspace, find_workspace_root, Report};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workspace: bool,
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: None,
        json: None,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--root" => {
                let v = it.next().ok_or("--root requires a directory argument")?;
                args.root = Some(PathBuf::from(v));
            }
            "--json" => {
                let v = it.next().ok_or("--json requires a file argument")?;
                args.json = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                return Err(String::new()); // triggers usage, exit 2
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if args.workspace == args.paths.is_empty() {
        Ok(args)
    } else if args.workspace {
        Err("--workspace and explicit paths are mutually exclusive".to_string())
    } else {
        Err("nothing to analyze: pass --workspace or explicit .rs files".to_string())
    }
}

fn usage() {
    eprintln!(
        "usage: routenet-analyzer --workspace [--root DIR] [--json FILE]\n       routenet-analyzer [--json FILE] FILE.rs [FILE.rs ...]"
    );
}

fn run(args: &Args) -> Result<Report, String> {
    if args.workspace {
        let root = match &args.root {
            Some(r) => r.clone(),
            None => {
                let cwd = std::env::current_dir().map_err(|e| format!("cannot get cwd: {e}"))?;
                find_workspace_root(&cwd)
                    .ok_or("no workspace root (Cargo.toml with [workspace]) found above cwd")?
            }
        };
        analyze_workspace(&root).map_err(|e| e.to_string())
    } else {
        analyze_paths(&args.paths).map_err(|e| e.to_string())
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::from(2);
        }
    };
    let report = match run(&args) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    // A gate that scanned nothing must not report green: a mistyped --root
    // would otherwise pass CI silently.
    if report.files_scanned == 0 {
        eprintln!("error: no .rs files found to analyze");
        return ExitCode::from(2);
    }
    if let Some(json_path) = &args.json {
        if let Err(e) = std::fs::write(json_path, report.json()) {
            eprintln!("error: cannot write {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }
    print!("{}", report.human());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
