//! Golden-file tests for the `analyzer-report v3` JSON schema: one per
//! semantic rule family. The binary is run from the crate root with relative
//! fixture paths so the `file` fields in the report are machine-independent,
//! and the emitted JSON must match the committed golden byte-for-byte.
//!
//! To regenerate after an intentional schema or rule change:
//!
//! ```text
//! cd crates/analyzer
//! cargo run -p routenet-analyzer -- --json tests/fixtures/golden/<family>.json \
//!     tests/fixtures/<family>.rs
//! ```

use std::path::PathBuf;
use std::process::Command;

fn golden_check(fixture: &str, golden: &str) {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let json_path = std::env::temp_dir().join(format!(
        "analyzer-golden-{}-{}.json",
        golden.replace('/', "-"),
        std::process::id()
    ));
    let out = Command::new(env!("CARGO_BIN_EXE_routenet-analyzer"))
        .current_dir(&manifest)
        .args(["--json", &json_path.to_string_lossy(), fixture])
        .output()
        .expect("analyzer binary runs");
    assert!(
        out.status.code() == Some(0) || out.status.code() == Some(1),
        "unexpected exit: {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let actual = std::fs::read_to_string(&json_path).expect("json written");
    let _ = std::fs::remove_file(&json_path);
    let golden_path = manifest.join(golden);
    let expected = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("cannot read golden {}: {e}", golden_path.display()));
    assert_eq!(
        actual, expected,
        "report drifted from {golden}; if the change is intentional, regenerate per the module docs"
    );
}

#[test]
fn determinism_report_matches_golden() {
    golden_check(
        "tests/fixtures/determinism.rs",
        "tests/fixtures/golden/determinism.json",
    );
}

#[test]
fn error_discard_report_matches_golden() {
    golden_check(
        "tests/fixtures/error_discard.rs",
        "tests/fixtures/golden/error_discard.json",
    );
}

#[test]
fn hot_loop_report_matches_golden() {
    golden_check(
        "tests/fixtures/hot_loop.rs",
        "tests/fixtures/golden/hot_loop.json",
    );
}

#[test]
fn concurrency_report_matches_golden() {
    golden_check(
        "tests/fixtures/concurrency.rs",
        "tests/fixtures/golden/concurrency.json",
    );
}

#[test]
fn numeric_report_matches_golden() {
    golden_check(
        "tests/fixtures/numeric.rs",
        "tests/fixtures/golden/numeric.json",
    );
}

#[test]
fn concurrency_clean_report_matches_golden() {
    golden_check(
        "tests/fixtures/concurrency_clean.rs",
        "tests/fixtures/golden/concurrency_clean.json",
    );
}
