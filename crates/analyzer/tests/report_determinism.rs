//! Property test for the report-determinism contract (DESIGN.md "Parallelism
//! safety contract"): the analyzer's JSON output must be byte-identical
//! across repeated runs and across any permutation of the input file order.
//! The call graph and diagnostics are kept in sorted containers precisely so
//! this holds; a regression here would make the golden tests and the baseline
//! ratchet flaky.

use routenet_analyzer::{analyze_paths, analyze_workspace};
use std::path::PathBuf;

fn fixture_paths() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 5, "expected several fixtures, got {paths:?}");
    paths
}

/// Deterministic xorshift64* stream — no external RNG crates in the analyzer.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

fn shuffled(paths: &[PathBuf], rng: &mut XorShift) -> Vec<PathBuf> {
    let mut out = paths.to_vec();
    for i in (1..out.len()).rev() {
        let j = (rng.next() % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

#[test]
fn report_is_byte_identical_across_runs_and_input_orderings() {
    let paths = fixture_paths();
    let reference = analyze_paths(&paths).expect("analyze fixtures").json();
    // The fixture set must exercise the numeric family: its workspace-wide
    // unit environment and NaN fixed point are the newest sorted containers
    // this property guards.
    for id in ["RN401", "RN402", "RN403", "RN404", "RN405", "RN406"] {
        assert!(reference.contains(id), "fixture sweep lost {id} coverage");
    }

    // Repeated runs over the same ordering.
    for _ in 0..3 {
        let again = analyze_paths(&paths).expect("analyze fixtures").json();
        assert_eq!(reference, again, "repeated run drifted");
    }

    // Permuted input orderings. The report sorts by file path internally, so
    // every permutation must serialize to the same bytes.
    let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
    for round in 0..8 {
        let permuted = shuffled(&paths, &mut rng);
        let report = analyze_paths(&permuted).expect("analyze fixtures").json();
        assert_eq!(
            reference, report,
            "permutation round {round} drifted: order {permuted:?}"
        );
    }
}

#[test]
fn workspace_report_is_byte_identical_across_runs() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let first = analyze_workspace(&root).expect("workspace scan").json();
    let second = analyze_workspace(&root).expect("workspace scan").json();
    assert_eq!(first, second, "workspace report drifted between runs");
}
