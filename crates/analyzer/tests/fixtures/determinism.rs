//! Fixture: nondeterministic hash-collection iteration (determinism rule).
//! Expect 3 diagnostics: lines 7, 14, 18.
use std::collections::{HashMap, HashSet};

pub fn sum_values(m: &HashMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for v in m.values() {
        total += v;
    }
    total
}

pub fn collect_keys(s: &HashSet<u32>) -> Vec<u32> {
    s.iter().copied().collect()
}

pub fn drain_pairs(m: &mut HashMap<u32, f64>) -> Vec<(u32, f64)> {
    m.drain().collect()
}
