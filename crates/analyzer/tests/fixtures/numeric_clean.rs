//! Fixture: the same numeric shapes as `numeric.rs`, with units respected
//! and every denominator/domain guarded — the analyzer must stay silent.

pub struct LinkStat {
    /// unit: bit/s
    pub capacity_bps: f64,
    /// unit: s
    pub mean_delay_s: f64,
}

pub fn utilization(load_bps: f64, stat: &LinkStat) -> f64 {
    debug_assert!(stat.capacity_bps > 0.0, "links carry positive capacity");
    load_bps / stat.capacity_bps
}

pub fn tx_delay(size_bits: f64, rate_bps: f64) -> f64 {
    let rate = rate_bps.max(1.0);
    size_bits / rate
}

pub fn log_delay(stat: &LinkStat) -> f64 {
    stat.mean_delay_s.max(1e-9).ln()
}

pub fn normalized_activation(stat: &LinkStat, scale_s: f64) -> f64 {
    let z = stat.mean_delay_s / scale_s.max(1e-9);
    sigmoid(z)
}

fn sigmoid(x: f64) -> f64 {
    let e = (-x).exp();
    1.0 / (1.0 + e)
}

pub fn finite_mean(delay_sum_s: f64, n_packets: f64) -> f64 {
    let count = n_packets.max(1.0);
    let mean_s = delay_sum_s / count;
    if mean_s.is_finite() {
        mean_s
    } else {
        0.0
    }
}
