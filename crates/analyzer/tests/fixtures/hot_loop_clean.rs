//! Fixture: allocation hoisted or justified (clean pass for hot-loop-alloc).

pub fn hoisted(names: &[String]) -> usize {
    let mut buf = String::new();
    let mut total = 0;
    for n in names {
        buf.clear();
        buf.push_str(n);
        total += buf.len();
    }
    total
}

pub fn justified(names: &[String]) -> usize {
    let mut total = 0;
    for n in names {
        // lint: allow(hot-loop-alloc, reason = "fixture demonstrating a justified per-iteration clone")
        let copy = n.clone();
        total += copy.len();
    }
    total
}
