//! Fixture: float-discipline violations at fixed lines.

pub fn float_eq_site(x: f64) -> bool {
    x == 0.5
}

pub fn float_ne_site(y: f64) -> bool {
    y != 1.0
}

pub fn nan_sink_site(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn div_zero_site(x: f64) -> f64 {
    x / 0.0
}

pub fn not_flagged(x: f64) -> bool {
    (x - 0.5).abs() < 1e-9
}
