//! Fixture: invariant annotations, one checked and one unchecked.

/// INVARIANT: `i` is always in bounds for `v`.
pub fn checked_invariant(v: &[u32], i: usize) -> u32 {
    debug_assert!(i < v.len());
    *v.get(i).unwrap_or(&0)
}

/// INVARIANT: callers never pass an empty slice.
pub fn unchecked_invariant(v: &[u32]) -> u32 {
    *v.first().unwrap_or(&0)
}
