//! Fixture: RN4xx numeric-dataflow violations at fixed lines.

pub struct LinkStat {
    /// unit: bit/s
    pub capacity_bps: f64,
    /// unit: s
    pub mean_delay_s: f64,
}

pub fn mixed_add(stat: &LinkStat) -> f64 {
    stat.mean_delay_s + stat.capacity_bps
}

pub fn wrong_dimension(size_bits: f64, rate_bps: f64) -> f64 {
    let tx_delay_s = size_bits * rate_bps;
    tx_delay_s
}

pub fn clamped_utilization(load_bps: f64, stat: &LinkStat) -> f64 {
    debug_assert!(stat.capacity_bps > 0.0, "links carry positive capacity");
    (load_bps / stat.capacity_bps).min(1.0)
}

pub fn unguarded_utilization(load_bps: f64, stat: &LinkStat) -> f64 {
    load_bps / stat.capacity_bps
}

pub fn unnormalized_activation(stat: &LinkStat) -> f64 {
    sigmoid(stat.mean_delay_s)
}

fn sigmoid(x: f64) -> f64 {
    let e = (-x).exp();
    1.0 / (1.0 + e)
}

pub fn log_delay(stat: &LinkStat) -> f64 {
    stat.mean_delay_s.ln()
}

pub struct TargetKpi {
    /// unit: s
    pub delay_s: f64,
    /// unit: ratio
    pub drop_prob: f64,
}

pub fn poisoned_label(delay_sum_s: f64, n_packets: f64) -> TargetKpi {
    let mean_s = delay_sum_s / n_packets;
    TargetKpi {
        delay_s: mean_s,
        drop_prob: 0.0,
    }
}
