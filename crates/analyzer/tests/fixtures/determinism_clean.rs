//! Fixture: hash iteration made deterministic (clean pass for determinism).
use std::collections::{BTreeMap, HashMap};

pub fn sum_ordered(ordered: &BTreeMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for v in ordered.values() {
        total += v;
    }
    total
}

pub fn sorted_keys(m: &HashMap<u32, f64>) -> Vec<u32> {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys
}
