//! Fixture: discarded fallible results (error-discard rule).
//! Expect 3 diagnostics: lines 9, 13, 16.

fn fallible() -> Result<u32, String> {
    Ok(1)
}

pub fn discards_with_let() {
    let _ = fallible();
}

pub fn swallows_with_ok() {
    fallible().ok();
}

pub fn missing_must_use(x: u32) -> Result<u32, String> {
    Ok(x)
}
