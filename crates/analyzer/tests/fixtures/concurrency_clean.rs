//! Fixture: the blessed parallel patterns from DESIGN.md "Parallelism
//! safety contract". The RN2xx rules must stay silent here.

/// Indexed write-slots with per-worker derived RNG streams: each worker owns
/// a disjoint slot range and a stream derived from explicit state, so the
/// result is byte-identical at any worker count.
fn strided_workers(slots: &mut Vec<f64>, workers: usize, seed: u64) {
    crossbeam::thread::scope(|scope| {
        for (w, chunk) in partition_mut(slots, workers) {
            scope.spawn(move |_| {
                let mut rng = StdRng::seed_from_u64(seed ^ worker_tag(w));
                for slot in chunk {
                    *slot = rng.gen_range(0.0..1.0);
                }
            });
        }
    });
}

/// Routing values through a channel is ordered by the receiver, not a race.
fn channel_fanout(scope: &Scope, tx: &Sender<f64>, items: &[f64]) {
    scope.spawn(move |_| {
        for x in items {
            let _sent = tx.send(x);
        }
    });
}

/// Relaxed is the right ordering for counters; publication uses Release.
fn publish_with_release(ready: &AtomicBool, hits: &AtomicU64) {
    hits.fetch_add(1, Ordering::Relaxed);
    ready.store(true, Ordering::Release);
}

/// Lock hoisted out of the loop: one acquisition per call.
fn hoisted_lock(items: &[f64], shared: &Mutex<f64>) -> f64 {
    let mut guard = shared.lock();
    let mut total = 0.0;
    for x in items {
        total += x;
    }
    *guard = total;
    total
}
