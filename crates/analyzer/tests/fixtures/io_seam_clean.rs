//! RN301 clean fixture: every filesystem touch goes through the
//! `routenet-faults` seam, so the io-seam rule reports nothing.

use routenet_faults::fs::RealFs;
use routenet_faults::{atomic_write_with, FaultFs};

fn save(fs: &dyn FaultFs, path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    atomic_write_with(fs, path, bytes)
}

fn load(fs: &dyn FaultFs, path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    fs.read(path)
}

fn default_seam() -> RealFs {
    RealFs
}
