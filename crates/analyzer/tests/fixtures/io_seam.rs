//! RN301 fixture: direct filesystem access outside the fault-injection
//! seam. Violations pinned to lines 5, 8, 12, and 16; the justified allow
//! (line 21) and the `#[cfg(test)]` module (line 28) must stay clean.

use std::fs::File;

fn read_config(path: &str) -> std::io::Result<String> {
    std::fs::read_to_string(path)
}

fn open_log(path: &str) -> std::io::Result<File> {
    File::create(path)
}

fn append_log(path: &str) -> std::io::Result<File> {
    OpenOptions::new().append(true).open(path)
}

// lint: allow(io-seam, reason = "fixture: boot-time read before the seam is wired")
fn bootstrap(path: &str) -> std::io::Result<String> {
    std::fs::read_to_string(path)
}

#[cfg(test)]
mod tests {
    #[test]
    fn direct_fs_in_tests_is_fine() {
        std::fs::write("/tmp/io-seam-fixture", b"y").unwrap();
    }
}
