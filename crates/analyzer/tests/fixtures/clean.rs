//! Fixture: violation-free code — the analyzer must exit 0 on this file.

/// Total-order sort; no NaN-unsound comparator.
pub fn sorted(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.total_cmp(b));
    v
}

/// INVARIANT: output length equals input length.
pub fn doubled(v: &[u64]) -> Vec<u64> {
    let out: Vec<u64> = v.iter().map(|x| x.saturating_mul(2)).collect();
    debug_assert!(out.len() == v.len());
    out
}

/// Fallible lookup instead of bare indexing.
pub fn lookup(v: &[u64], i: usize) -> Option<u64> {
    v.get(i).copied()
}
