//! Fixture: lossy-cast violations at fixed lines.

pub fn narrow_site(x: u64) -> u32 {
    x as u32
}

pub fn index_cast_site(v: &[f64], i: f64) -> f64 {
    v[i as usize]
}

pub fn float_narrow_site(x: f64) -> f32 {
    x as f32
}

pub fn not_flagged(x: u32) -> u64 {
    x as u64
}
