//! Fixture: RN2xx concurrency/determinism violations, one family per
//! function. Line positions are pinned by the fixture tests.

/// Transitive RN203 evidence: draws from a stream it did not derive.
fn draw(rng: &mut StdRng) -> f64 {
    rng.gen_range(0.0..1.0)
}

fn shared_mutation(scope: &Scope, totals: &mut Vec<f64>) {
    scope.spawn(move |_| {
        totals.push(1.0);
    });
}

fn shared_float_reduce(scope: &Scope, acc: &Mutex<f64>, items: &[f64]) {
    scope.spawn(move |_| {
        let mut local = 0.0;
        for x in items {
            local += x;
        }
        *acc.lock() += local;
    });
}

fn shared_rng(scope: &Scope, rng: &mut StdRng) -> f64 {
    scope.spawn(move |_| {
        let direct = rng.gen_range(0.0..1.0);
        let transitive = draw(rng);
        direct + transitive
    });
}

fn relaxed_publication(ready: &AtomicBool, hits: &AtomicU64) {
    hits.fetch_add(1, Ordering::Relaxed);
    ready.store(true, Ordering::Relaxed);
}

fn lock_per_iteration(items: &[f64], shared: &Mutex<f64>) -> f64 {
    let mut total = 0.0;
    for x in items {
        let guard = shared.lock();
        total += x;
    }
    total
}

fn lock_via_callee(items: &[f64], stats: &Stats) {
    for x in items {
        record(stats, x);
    }
}

fn record(stats: &Stats, x: f64) {
    let mut guard = stats.inner.lock();
    guard.push(x);
}
