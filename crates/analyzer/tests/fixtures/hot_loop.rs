//! Fixture: per-iteration allocation in loops (hot-loop-alloc rule).
//! Expect 4 diagnostics: lines 7, 8, 9, 16.

pub fn allocates_in_loop(names: &[String]) -> usize {
    let mut total = 0;
    for n in names {
        let copy = n.clone();
        let label = format!("{copy}!");
        let buf: Vec<usize> = Vec::new();
        total += label.len() + buf.len() + copy.len();
    }
    total
}

pub fn allocates_in_adapter(xs: &[usize]) -> usize {
    xs.iter().map(|x| x.to_string()).map(|s| s.len()).sum()
}
