//! Fixture: one panic-rule violation per construct, at fixed lines.

pub fn unwrap_site(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn expect_site(v: Option<u32>) -> u32 {
    v.expect("present")
}

pub fn panic_site(flag: bool) {
    if flag {
        panic!("boom");
    }
}

pub fn unreachable_site(x: u32) -> u32 {
    match x {
        0 => 1,
        _ => unreachable!(),
    }
}

pub fn index_site(v: &[u32], i: usize) -> u32 {
    v[i]
}

pub fn not_flagged(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
