//! Fixture: justified allows suppress diagnostics; malformed allows are
//! themselves diagnosed under the `lint-syntax` rule.

pub fn suppressed_unwrap(v: Option<u32>) -> u32 {
    // lint: allow(panic, reason = "fixture: always Some in this scenario")
    v.unwrap()
}

pub fn suppressed_trailing(x: f64) -> bool {
    x == 0.25 // lint: allow(float-eq, reason = "fixture: exact sentinel")
}

pub fn suppressed_cast(x: u64) -> u32 {
    // lint: allow(cast, reason = "fixture: value bounded by construction")
    x as u32
}

pub fn missing_reason(v: Option<u32>) -> u32 {
    // lint: allow(panic)
    v.unwrap()
}

pub fn unknown_rule(v: Option<u32>) -> u32 {
    // lint: allow(frobnicate, reason = "no such rule")
    v.unwrap()
}
