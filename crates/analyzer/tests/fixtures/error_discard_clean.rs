//! Fixture: fallible results all handled (clean pass for error-discard).

fn fallible() -> Result<u32, String> {
    Ok(1)
}

#[must_use = "the computed value is the entire point"]
pub fn propagates() -> Result<u32, String> {
    let v = fallible()?;
    Ok(v)
}

pub fn handles_inline() {
    if let Err(e) = fallible() {
        eprintln!("fallible step failed: {e}");
    }
}
