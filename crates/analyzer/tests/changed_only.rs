//! Cross-file contract behind `--changed-only`: the call graph and unit
//! environment are built over the whole workspace, and the changed set is
//! expanded with transitive caller files. Interprocedural RN2xx/RN4xx
//! findings report at the *call site*, so editing only a callee's body must
//! re-surface findings in caller files the diff never touched.
//!
//! The tests build a tiny synthetic workspace in a temp dir. The caller file
//! is byte-identical in both scenarios; only the callee body differs.

use routenet_analyzer::{analyze_workspace_filtered, expand_changed_files};
use std::fs;
use std::path::PathBuf;

/// Caller file, placed at a numeric-scoped path. Never edited: every finding
/// asserted below is driven purely by callee-side evidence.
const CALLER: &str = r#"//! Synthetic measurement module.

use crate::helpers::{draw_jitter, mean_delay};

pub struct Telemetry {
    /// unit: s
    pub last_s: f64,
}

impl Telemetry {
    pub fn observe_s(&mut self, v: f64) {
        self.last_s = v;
    }
}

pub fn record(t: &mut Telemetry, sum_s: f64, n: f64) {
    let v = mean_delay(sum_s, n);
    t.observe_s(v);
}

pub fn fan_out(scope: &Scope) {
    scope.spawn(move |_| {
        let j = draw_jitter(7);
        j
    });
}
"#;

/// Callee with a guarded division and a self-seeded RNG stream: no evidence
/// reaches the caller.
const CALLEE_CLEAN: &str = r#"//! Callee bodies (the edited file).

pub fn mean_delay(sum_s: f64, n: f64) -> f64 {
    let count = n.max(1.0);
    sum_s / count
}

pub fn draw_jitter(seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen_range(0.0..1.0)
}
"#;

/// The same callees after a careless edit: an unguarded denominator (NaN can
/// now flow into the caller's telemetry sink) and a draw from an ambient RNG
/// stream (schedule-dependent inside the caller's spawn).
const CALLEE_BUGGY: &str = r#"//! Callee bodies (the edited file).

pub fn mean_delay(sum_s: f64, n: f64) -> f64 {
    sum_s / n
}

pub fn draw_jitter(rng: &mut StdRng) -> f64 {
    rng.gen_range(0.0..1.0)
}
"#;

const CALLER_REL: &str = "crates/simnet/src/stats.rs";
const CALLEE_REL: &str = "crates/simnet/src/helpers.rs";

fn build_workspace(tag: &str, callee: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "analyzer-changed-only-{tag}-{}",
        std::process::id()
    ));
    let src = root.join("crates/simnet/src");
    fs::create_dir_all(&src).expect("temp workspace dirs");
    fs::write(root.join(CALLER_REL), CALLER).expect("write caller");
    fs::write(root.join(CALLEE_REL), callee).expect("write callee");
    root
}

fn rules_in(report: &routenet_analyzer::Report, file: &str) -> Vec<(String, u32)> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.file == file)
        .map(|d| (d.rule.to_string(), d.line))
        .collect()
}

#[test]
fn callee_edit_resurfaces_findings_in_unchanged_caller() {
    let root = build_workspace("buggy", CALLEE_BUGGY);

    // The diff only lists the callee; the expansion must pull in the caller.
    let changed = vec![CALLEE_REL.to_string()];
    let expanded = expand_changed_files(&root, &changed).expect("expand");
    assert!(
        expanded.iter().any(|f| f == CALLER_REL),
        "caller not pulled in: {expanded:?}"
    );

    let report = analyze_workspace_filtered(&root, Some(&expanded)).expect("scan");
    let caller = rules_in(&report, CALLER_REL);
    assert!(
        caller.iter().any(|(r, _)| r == "nan-sink"),
        "RN406 lost in caller: {caller:?}"
    );
    assert!(
        caller.iter().any(|(r, _)| r == "parallel-rng"),
        "RN203 lost in caller: {caller:?}"
    );

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn filter_scopes_reporting_not_evidence() {
    let root = build_workspace("filtered", CALLEE_BUGGY);

    // Scanning only the caller must see identical callee-side evidence:
    // the filter scopes *reporting*, never the call graph or unit env.
    let full = analyze_workspace_filtered(&root, None).expect("full scan");
    let only = vec![CALLER_REL.to_string()];
    let filtered = analyze_workspace_filtered(&root, Some(&only)).expect("filtered scan");
    assert_eq!(
        rules_in(&full, CALLER_REL),
        rules_in(&filtered, CALLER_REL),
        "filtered run saw different caller evidence than the full run"
    );
    assert!(
        !rules_in(&filtered, CALLER_REL).is_empty(),
        "expected caller findings driven by the buggy callee"
    );

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn clean_callee_keeps_caller_silent() {
    let root = build_workspace("clean", CALLEE_CLEAN);
    let report = analyze_workspace_filtered(&root, None).expect("scan");
    assert!(
        report.diagnostics.is_empty(),
        "unexpected findings: {:?}",
        report
            .diagnostics
            .iter()
            .map(|d| (d.file.as_str(), d.rule, d.line))
            .collect::<Vec<_>>()
    );
    let _ = fs::remove_dir_all(&root);
}
