//! End-to-end tests driving the `routenet-analyzer` binary against the
//! fixture files in `tests/fixtures/`. Each fixture pins violations to fixed
//! lines, so these tests assert exact diagnostic counts and `file:line`
//! positions as well as exit codes.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_routenet-analyzer"))
        .args(args)
        .output()
        .expect("analyzer binary runs")
}

fn run_on_fixtures(names: &[&str]) -> (Output, String) {
    let paths: Vec<String> = names
        .iter()
        .map(|n| fixture(n).to_string_lossy().into_owned())
        .collect();
    let args: Vec<&str> = paths.iter().map(String::as_str).collect();
    let out = run(&args);
    let stdout = String::from_utf8(out.stdout.clone()).expect("utf8 stdout");
    (out, stdout)
}

/// Count diagnostic lines for `rule` ("[rule]" tags in human output).
fn count_rule(stdout: &str, rule: &str) -> usize {
    stdout.matches(&format!("[{rule}]")).count()
}

#[test]
fn panic_fixture_exact_diagnostics() {
    let (out, stdout) = run_on_fixtures(&["panics.rs"]);
    assert_eq!(out.status.code(), Some(1), "diagnostics must exit 1");
    assert_eq!(count_rule(&stdout, "panic"), 5, "stdout:\n{stdout}");
    for line in [
        "panics.rs:4:",
        "panics.rs:8:",
        "panics.rs:13:",
        "panics.rs:20:",
        "panics.rs:25:",
    ] {
        assert!(stdout.contains(line), "missing `{line}` in:\n{stdout}");
    }
    // unwrap_or and the #[cfg(test)] module must not be flagged.
    assert!(
        !stdout.contains("panics.rs:28:"),
        "unwrap_or flagged:\n{stdout}"
    );
    assert!(
        !stdout.contains("panics.rs:36:"),
        "test mod flagged:\n{stdout}"
    );
}

#[test]
fn float_fixture_exact_diagnostics() {
    let (out, stdout) = run_on_fixtures(&["floats.rs"]);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(count_rule(&stdout, "float-eq"), 2, "stdout:\n{stdout}");
    assert_eq!(count_rule(&stdout, "nan"), 2, "stdout:\n{stdout}");
    // The partial_cmp().unwrap() chain is both a NaN sink and a panic site.
    assert_eq!(count_rule(&stdout, "panic"), 1, "stdout:\n{stdout}");
    for line in [
        "floats.rs:4:",
        "floats.rs:8:",
        "floats.rs:12:",
        "floats.rs:16:",
    ] {
        assert!(stdout.contains(line), "missing `{line}` in:\n{stdout}");
    }
    // The epsilon comparison must pass.
    assert!(
        !stdout.contains("floats.rs:20:"),
        "epsilon compare flagged:\n{stdout}"
    );
}

#[test]
fn cast_fixture_exact_diagnostics() {
    let (out, stdout) = run_on_fixtures(&["casts.rs"]);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(count_rule(&stdout, "cast"), 3, "stdout:\n{stdout}");
    for line in ["casts.rs:4:", "casts.rs:8:", "casts.rs:12:"] {
        assert!(stdout.contains(line), "missing `{line}` in:\n{stdout}");
    }
    // Widening u32 -> u64 is fine.
    assert!(
        !stdout.contains("casts.rs:16:"),
        "widening cast flagged:\n{stdout}"
    );
}

#[test]
fn invariant_fixture_indexes_and_flags() {
    let (out, stdout) = run_on_fixtures(&["invariants.rs"]);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(count_rule(&stdout, "invariant"), 1, "stdout:\n{stdout}");
    assert!(stdout.contains("invariants.rs:9:"), "stdout:\n{stdout}");
    assert!(stdout.contains("unchecked_invariant"), "stdout:\n{stdout}");
    // Both annotations indexed, one backed by a debug_assert.
    assert!(
        stdout.contains("2 invariant(s) indexed (1 checked)"),
        "stdout:\n{stdout}"
    );
}

#[test]
fn allow_suppression_and_lint_syntax() {
    let (out, stdout) = run_on_fixtures(&["allowed.rs"]);
    assert_eq!(out.status.code(), Some(1));
    // The three justified allows fully suppress their sites...
    assert!(
        !stdout.contains("allowed.rs:6:"),
        "suppressed unwrap flagged:\n{stdout}"
    );
    assert!(
        !stdout.contains("allowed.rs:10:"),
        "trailing allow ignored:\n{stdout}"
    );
    assert!(
        !stdout.contains("allowed.rs:15:"),
        "suppressed cast flagged:\n{stdout}"
    );
    assert!(
        stdout.contains("3 allow justification(s)"),
        "stdout:\n{stdout}"
    );
    // ...while a reasonless allow and an unknown rule are themselves errors
    // and do NOT suppress anything.
    assert_eq!(count_rule(&stdout, "lint-syntax"), 2, "stdout:\n{stdout}");
    assert_eq!(count_rule(&stdout, "panic"), 2, "stdout:\n{stdout}");
    for line in [
        "allowed.rs:19:",
        "allowed.rs:20:",
        "allowed.rs:24:",
        "allowed.rs:25:",
    ] {
        assert!(stdout.contains(line), "missing `{line}` in:\n{stdout}");
    }
}

#[test]
fn clean_fixture_exits_zero() {
    let (out, stdout) = run_on_fixtures(&["clean.rs"]);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(stdout.contains("0 diagnostic(s)"), "stdout:\n{stdout}");
}

#[test]
fn determinism_fixture_exact_diagnostics() {
    let (out, stdout) = run_on_fixtures(&["determinism.rs"]);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(count_rule(&stdout, "determinism"), 3, "stdout:\n{stdout}");
    for line in [
        "determinism.rs:7:",
        "determinism.rs:14:",
        "determinism.rs:18:",
    ] {
        assert!(stdout.contains(line), "missing `{line}` in:\n{stdout}");
    }
    assert!(stdout.contains("RN101"), "stdout:\n{stdout}");
}

#[test]
fn determinism_clean_fixture_passes() {
    let (out, stdout) = run_on_fixtures(&["determinism_clean.rs"]);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(stdout.contains("0 diagnostic(s)"), "stdout:\n{stdout}");
}

#[test]
fn error_discard_fixture_exact_diagnostics() {
    let (out, stdout) = run_on_fixtures(&["error_discard.rs"]);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(count_rule(&stdout, "error-discard"), 3, "stdout:\n{stdout}");
    for line in [
        "error_discard.rs:9:",
        "error_discard.rs:13:",
        "error_discard.rs:16:",
    ] {
        assert!(stdout.contains(line), "missing `{line}` in:\n{stdout}");
    }
    assert!(stdout.contains("missing_must_use"), "stdout:\n{stdout}");
    assert!(stdout.contains("RN102"), "stdout:\n{stdout}");
}

#[test]
fn error_discard_clean_fixture_passes() {
    let (out, stdout) = run_on_fixtures(&["error_discard_clean.rs"]);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(stdout.contains("0 diagnostic(s)"), "stdout:\n{stdout}");
}

#[test]
fn hot_loop_fixture_exact_diagnostics() {
    let (out, stdout) = run_on_fixtures(&["hot_loop.rs"]);
    // hot-loop-alloc defaults to warn severity: reported but exit 0.
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert_eq!(
        count_rule(&stdout, "hot-loop-alloc"),
        4,
        "stdout:\n{stdout}"
    );
    for line in [
        "hot_loop.rs:7:",
        "hot_loop.rs:8:",
        "hot_loop.rs:9:",
        "hot_loop.rs:16:",
    ] {
        assert!(stdout.contains(line), "missing `{line}` in:\n{stdout}");
    }
    assert!(stdout.contains("RN103"), "stdout:\n{stdout}");
    assert!(stdout.contains("4 warn"), "stdout:\n{stdout}");
}

#[test]
fn hot_loop_clean_fixture_passes() {
    let (out, stdout) = run_on_fixtures(&["hot_loop_clean.rs"]);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(stdout.contains("0 diagnostic(s)"), "stdout:\n{stdout}");
    // The justified clone counts as an in-force allow, not a finding.
    assert!(
        stdout.contains("1 allow justification(s)"),
        "stdout:\n{stdout}"
    );
}

#[test]
fn concurrency_fixture_exact_diagnostics() {
    let (out, stdout) = run_on_fixtures(&["concurrency.rs"]);
    // RN201/202/203/205 are deny by default, so the run fails.
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert_eq!(
        count_rule(&stdout, "parallel-shared-mut"),
        1,
        "stdout:\n{stdout}"
    );
    assert_eq!(
        count_rule(&stdout, "parallel-float-reduce"),
        1,
        "stdout:\n{stdout}"
    );
    // One direct draw and one callgraph-transitive draw.
    assert_eq!(count_rule(&stdout, "parallel-rng"), 2, "stdout:\n{stdout}");
    // One direct .lock() in a loop and one transitive through record().
    assert_eq!(count_rule(&stdout, "hot-loop-lock"), 2, "stdout:\n{stdout}");
    assert_eq!(
        count_rule(&stdout, "relaxed-publish"),
        1,
        "stdout:\n{stdout}"
    );
    for line in [
        "concurrency.rs:11:",
        "concurrency.rs:21:",
        "concurrency.rs:27:",
        "concurrency.rs:28:",
        "concurrency.rs:35:",
        "concurrency.rs:41:",
        "concurrency.rs:49:",
    ] {
        assert!(stdout.contains(line), "missing `{line}` in:\n{stdout}");
    }
    // The Relaxed counter (fetch_add) must not be flagged.
    assert!(
        !stdout.contains("concurrency.rs:34:"),
        "relaxed counter flagged:\n{stdout}"
    );
    for id in ["RN201", "RN202", "RN203", "RN204", "RN205"] {
        assert!(stdout.contains(id), "missing {id} in:\n{stdout}");
    }
    assert!(stdout.contains("5 deny, 2 warn"), "stdout:\n{stdout}");
}

#[test]
fn concurrency_clean_fixture_passes() {
    let (out, stdout) = run_on_fixtures(&["concurrency_clean.rs"]);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(stdout.contains("0 diagnostic(s)"), "stdout:\n{stdout}");
}

#[test]
fn io_seam_fixture_exact_diagnostics() {
    let (out, stdout) = run_on_fixtures(&["io_seam.rs"]);
    // io-seam is deny by default, so the run fails.
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert_eq!(count_rule(&stdout, "io-seam"), 4, "stdout:\n{stdout}");
    for line in [
        "io_seam.rs:5:",
        "io_seam.rs:8:",
        "io_seam.rs:12:",
        "io_seam.rs:16:",
    ] {
        assert!(stdout.contains(line), "missing `{line}` in:\n{stdout}");
    }
    // The justified allow and the #[cfg(test)] module stay clean.
    assert!(
        !stdout.contains("io_seam.rs:21:"),
        "allowed read flagged:\n{stdout}"
    );
    assert!(
        !stdout.contains("io_seam.rs:28:"),
        "test mod flagged:\n{stdout}"
    );
    assert!(stdout.contains("RN301"), "stdout:\n{stdout}");
    assert!(
        stdout.contains("1 allow justification(s)"),
        "stdout:\n{stdout}"
    );
}

#[test]
fn io_seam_clean_fixture_passes() {
    let (out, stdout) = run_on_fixtures(&["io_seam_clean.rs"]);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(stdout.contains("0 diagnostic(s)"), "stdout:\n{stdout}");
}

#[test]
fn numeric_fixture_exact_diagnostics() {
    let (out, stdout) = run_on_fixtures(&["numeric.rs"]);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert_eq!(count_rule(&stdout, "unit-mismatch"), 1, "stdout:\n{stdout}");
    assert_eq!(
        count_rule(&stdout, "unit-dimension"),
        2,
        "stdout:\n{stdout}"
    );
    assert_eq!(count_rule(&stdout, "unit-sink"), 1, "stdout:\n{stdout}");
    assert_eq!(count_rule(&stdout, "nan-div"), 2, "stdout:\n{stdout}");
    assert_eq!(count_rule(&stdout, "nan-domain"), 1, "stdout:\n{stdout}");
    assert_eq!(count_rule(&stdout, "nan-sink"), 1, "stdout:\n{stdout}");
    for line in [
        "numeric.rs:11:", // s + bit/s
        "numeric.rs:15:", // tx_delay_s from bits * bit/s
        "numeric.rs:21:", // utilization clamp masks an over-count (PR 4 bug shape)
        "numeric.rs:25:", // unguarded capacity denominator
        "numeric.rs:29:", // seconds into sigmoid
        "numeric.rs:38:", // ln of an unguarded delay
        "numeric.rs:49:", // unguarded packet-count denominator
        "numeric.rs:50:", // possibly-NaN mean into a label struct
    ] {
        assert!(stdout.contains(line), "missing `{line}` in:\n{stdout}");
    }
    // The guarded division feeding the clamp must not double-report RN404.
    assert!(
        !stdout.contains("numeric.rs:21: [nan-div]"),
        "asserted denominator flagged:\n{stdout}"
    );
}

#[test]
fn numeric_clean_fixture_passes() {
    let (out, stdout) = run_on_fixtures(&["numeric_clean.rs"]);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(stdout.contains("0 diagnostic(s)"), "stdout:\n{stdout}");
}

#[test]
fn deny_flag_escalates_warn_rules() {
    let path = fixture("hot_loop.rs");
    let out = run(&["--deny", "hot-loop-alloc", &path.to_string_lossy()]);
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(stdout.contains("4 deny"), "stdout:\n{stdout}");
    let bad = run(&[
        "--deny",
        "no-such-rule",
        &fixture("clean.rs").to_string_lossy(),
    ]);
    assert_eq!(bad.status.code(), Some(2));
}

#[test]
fn all_fixtures_total_count() {
    let (out, stdout) = run_on_fixtures(&[
        "panics.rs",
        "floats.rs",
        "casts.rs",
        "invariants.rs",
        "allowed.rs",
        "clean.rs",
    ]);
    assert_eq!(out.status.code(), Some(1));
    // 19 legacy findings plus the RN404 division-by-literal-zero in floats.rs.
    assert!(stdout.contains("20 diagnostic(s)"), "stdout:\n{stdout}");
    assert!(stdout.contains("6 file(s) scanned"), "stdout:\n{stdout}");
}

#[test]
fn workspace_tree_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root exists")
        .to_path_buf();
    // The CI invocation: everything denied that check.sh denies, with the
    // committed baseline subtracting the known (reviewed) findings.
    let baseline = root.join("analyzer-baseline.txt");
    let out = run(&[
        "--workspace",
        "--root",
        &root.to_string_lossy(),
        "--deny",
        "hot-loop-alloc",
        "--deny",
        "hot-loop-lock",
        "--baseline",
        &baseline.to_string_lossy(),
    ]);
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    let stderr = String::from_utf8(out.stderr).expect("utf8 stderr");
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace not clean:\n{stdout}{stderr}"
    );
    assert!(stdout.contains("0 diagnostic(s)"), "stdout:\n{stdout}");
}

#[test]
fn workspace_has_no_deny_findings_even_without_baseline() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root exists")
        .to_path_buf();
    let out = run(&["--workspace", "--root", &root.to_string_lossy()]);
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    // Baselined findings are warn-level, so even the bare run must exit 0
    // with zero deny findings for the three semantic rule families.
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(stdout.contains("0 deny"), "stdout:\n{stdout}");
}

#[test]
fn json_report_is_emitted() {
    let json_path =
        std::env::temp_dir().join(format!("analyzer-fixture-{}.json", std::process::id()));
    let panics = fixture("panics.rs");
    let out = run(&[
        "--json",
        &json_path.to_string_lossy(),
        &panics.to_string_lossy(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let json = std::fs::read_to_string(&json_path).expect("json written");
    let _ = std::fs::remove_file(&json_path);
    assert!(
        json.contains("\"schema\": \"analyzer-report\""),
        "json:\n{json}"
    );
    assert!(json.contains("\"version\": 4"), "json:\n{json}");
    assert!(json.contains("\"by_severity\""), "json:\n{json}");
    assert!(json.contains("\"by_rule\""), "json:\n{json}");
    assert!(json.contains("\"rule\": \"panic\""), "json:\n{json}");
    assert!(json.contains("\"id\": \"RN001\""), "json:\n{json}");
    assert!(json.contains("\"severity\": \"deny\""), "json:\n{json}");
    assert!(json.contains("\"summary\""), "json:\n{json}");
    assert!(json.contains("\"line\": 4"), "json:\n{json}");
    // Cheap well-formedness: balanced braces and brackets.
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

#[test]
fn usage_errors_exit_two() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    let both = run(&["--workspace", "some/file.rs"]);
    assert_eq!(both.status.code(), Some(2));
}
