//! Property tests: the discrete-event simulator must converge to M/M/1
//! closed forms wherever those are exact, and behave monotonically where
//! theory says so.

use proptest::prelude::*;
use routenet_netgraph::routing::shortest_path_routing;
use routenet_netgraph::{Graph, NodeId, RoutingScheme, TrafficMatrix};
use routenet_simnet::queueing::{Mg1Link, Mm1Link};
use routenet_simnet::sim::{simulate, ArrivalProcess, SimConfig, SizeDistribution};

fn one_link(cap_bps: f64) -> (Graph, RoutingScheme) {
    let mut g = Graph::new("1link", 2);
    g.add_duplex(NodeId(0), NodeId(1), cap_bps, 0.0).unwrap();
    let r = shortest_path_routing(&g).unwrap();
    (g, r)
}

fn tm1(bps: f64) -> TrafficMatrix {
    let mut tm = TrafficMatrix::zeros(2);
    tm.set_demand(NodeId(0), NodeId(1), bps);
    tm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Single-link Poisson/exponential simulation matches M/M/1 mean sojourn
    /// within 12% for moderate loads.
    #[test]
    fn single_link_matches_mm1(rho in 0.2f64..0.7, seed in 0u64..100) {
        let cap = 10_000.0;
        let (g, r) = one_link(cap);
        let tm = tm1(rho * cap);
        let cfg = SimConfig {
            duration_s: 3_000.0,
            warmup_s: 300.0,
            seed,
            ..SimConfig::default()
        };
        let res = simulate(&g, &r, &tm, &cfg).unwrap();
        let f = res.flow(NodeId(0), NodeId(1)).unwrap();
        let theory = Mm1Link::new(rho * 10.0, 10.0);
        let rel = (f.mean_delay_s - theory.mean_sojourn_s).abs() / theory.mean_sojourn_s;
        prop_assert!(rel < 0.12, "rho {rho}: sim {} vs theory {} (rel {rel})",
            f.mean_delay_s, theory.mean_sojourn_s);
        // Variance converges more slowly; allow 30%.
        let relv = (f.jitter_s2 - theory.var_sojourn_s2).abs() / theory.var_sojourn_s2;
        prop_assert!(relv < 0.30, "rho {rho}: var {} vs {} (rel {relv})",
            f.jitter_s2, theory.var_sojourn_s2);
    }

    /// D/D/1 below capacity: every packet sees exactly the service time.
    #[test]
    fn dd1_is_exact(rate_frac in 0.05f64..0.9, cap in 5_000.0f64..50_000.0) {
        let (g, r) = one_link(cap);
        let tm = tm1(rate_frac * cap);
        let cfg = SimConfig {
            duration_s: 100.0,
            warmup_s: 10.0,
            size_dist: SizeDistribution::Deterministic,
            arrivals: ArrivalProcess::Deterministic,
            seed: 1,
            ..SimConfig::default()
        };
        let res = simulate(&g, &r, &tm, &cfg).unwrap();
        let f = res.flow(NodeId(0), NodeId(1)).unwrap();
        let service = 1_000.0 / cap;
        prop_assert!(f.delivered > 0);
        prop_assert!((f.mean_delay_s - service).abs() < 1e-9,
            "mean {} vs service {service}", f.mean_delay_s);
        prop_assert!(f.jitter_s2 < 1e-18);
    }

    /// Single-link Poisson arrivals with deterministic sizes match the
    /// M/D/1 (Pollaczek–Khinchine) sojourn mean — and the M/M/1 formula
    /// overestimates it, which is the bias the RouteNet datasets exploit.
    #[test]
    fn single_link_matches_md1(rho in 0.3f64..0.8, seed in 0u64..100) {
        let cap = 10_000.0;
        let (g, r) = one_link(cap);
        let tm = tm1(rho * cap);
        let cfg = SimConfig {
            duration_s: 3_000.0,
            warmup_s: 300.0,
            size_dist: SizeDistribution::Deterministic,
            seed,
            ..SimConfig::default()
        };
        let res = simulate(&g, &r, &tm, &cfg).unwrap();
        let f = res.flow(NodeId(0), NodeId(1)).unwrap();
        let md1 = Mg1Link::new(rho * 10.0, 10.0, 0.0);
        let rel = (f.mean_delay_s - md1.mean_sojourn_s).abs() / md1.mean_sojourn_s;
        prop_assert!(rel < 0.10, "rho {rho}: sim {} vs M/D/1 {} (rel {rel})",
            f.mean_delay_s, md1.mean_sojourn_s);
        // The M/M/1 formula must overestimate the deterministic-size queue.
        let mm1 = Mm1Link::new(rho * 10.0, 10.0);
        prop_assert!(mm1.mean_sojourn_s > f.mean_delay_s,
            "M/M/1 {} did not overestimate sim {}", mm1.mean_sojourn_s, f.mean_delay_s);
        // Variance from the gamma-matched Takács formula: looser tolerance.
        let relv = (f.jitter_s2 - md1.var_sojourn_s2).abs() / md1.var_sojourn_s2;
        prop_assert!(relv < 0.35, "rho {rho}: var {} vs {} (rel {relv})",
            f.jitter_s2, md1.var_sojourn_s2);
    }

    /// Mean delay is monotone in offered load (same seed, increasing rho).
    #[test]
    fn delay_monotone_in_load(seed in 0u64..50) {
        let cap = 10_000.0;
        let (g, r) = one_link(cap);
        let mut prev = 0.0;
        for rho in [0.1, 0.4, 0.8] {
            let tm = tm1(rho * cap);
            let cfg = SimConfig {
                duration_s: 2_000.0,
                warmup_s: 200.0,
                seed,
                ..SimConfig::default()
            };
            let res = simulate(&g, &r, &tm, &cfg).unwrap();
            let d = res.flow(NodeId(0), NodeId(1)).unwrap().mean_delay_s;
            prop_assert!(d > prev, "rho {rho}: delay {d} not > {prev}");
            prev = d;
        }
    }

    /// Time-average occupancy matches the M/M/1 closed form L = rho/(1-rho),
    /// and Little's law (L = lambda * W) holds by measurement.
    #[test]
    fn occupancy_matches_mm1(rho in 0.2f64..0.7, seed in 0u64..50) {
        let cap = 10_000.0;
        let (g, r) = one_link(cap);
        let tm = tm1(rho * cap);
        let cfg = SimConfig {
            duration_s: 4_000.0,
            warmup_s: 400.0,
            seed,
            ..SimConfig::default()
        };
        let res = simulate(&g, &r, &tm, &cfg).unwrap();
        let fwd = g.link_between(NodeId(0), NodeId(1)).unwrap();
        let occ = res.link_mean_occupancy[fwd.0];
        let theory = Mm1Link::new(rho * 10.0, 10.0).mean_in_system();
        let rel = (occ - theory).abs() / theory;
        prop_assert!(rel < 0.15, "rho {rho}: L {occ} vs theory {theory}");
        // Little's law, measured quantities only.
        let lambda = rho * 10.0;
        let w = res.link_mean_sojourn_s[fwd.0];
        prop_assert!((occ - lambda * w).abs() < 0.1 * occ.max(0.05),
            "Little's law: L {occ} vs lambda*W {}", lambda * w);
        // Idle reverse direction has no occupancy.
        let rev = g.link_between(NodeId(1), NodeId(0)).unwrap();
        prop_assert_eq!(res.link_mean_occupancy[rev.0], 0.0);
    }

    /// Shrinking the buffer can only increase the drop count.
    #[test]
    fn drops_monotone_in_buffer(seed in 0u64..50) {
        let cap = 10_000.0;
        let (g, r) = one_link(cap);
        let tm = tm1(1.2 * cap); // overloaded
        let mut prev_drops = u64::MAX;
        for buf in [2usize, 8, 32] {
            let cfg = SimConfig {
                duration_s: 400.0,
                warmup_s: 40.0,
                buffer_pkts: Some(buf),
                seed,
                ..SimConfig::default()
            };
            let res = simulate(&g, &r, &tm, &cfg).unwrap();
            let drops = res.flow(NodeId(0), NodeId(1)).unwrap().dropped;
            prop_assert!(drops <= prev_drops,
                "buffer {buf}: drops {drops} > smaller-buffer drops {prev_drops}");
            prev_drops = drops;
        }
        prop_assert!(prev_drops < u64::MAX);
    }

    /// M/M/1/K drop probability matches the closed form within tolerance.
    #[test]
    fn mm1k_drop_probability(seed in 0u64..30) {
        let cap = 10_000.0;
        let (g, r) = one_link(cap);
        let rho: f64 = 0.8;
        let k = 4usize; // system size incl. in service
        let tm = tm1(rho * cap);
        let cfg = SimConfig {
            duration_s: 5_000.0,
            warmup_s: 500.0,
            buffer_pkts: Some(k),
            seed,
            ..SimConfig::default()
        };
        let res = simulate(&g, &r, &tm, &cfg).unwrap();
        let f = res.flow(NodeId(0), NodeId(1)).unwrap();
        // P_block = (1-rho) rho^K / (1 - rho^(K+1))
        let pb = (1.0 - rho) * rho.powi(k as i32) / (1.0 - rho.powi(k as i32 + 1));
        let p = f.drop_prob();
        prop_assert!((p - pb).abs() < 0.03, "sim {p} vs theory {pb}");
    }
}

/// Two-link tandem: delay is close to (but, due to service-time correlation
/// across hops, not exactly) the Kleinrock independence sum. This captures
/// precisely the gap between the analytic baseline and the simulator that
/// RouteNet learns to close.
#[test]
fn tandem_close_to_but_above_independence_sum() {
    let mut g = Graph::new("tandem", 3);
    g.add_duplex(NodeId(0), NodeId(1), 10_000.0, 0.0).unwrap();
    g.add_duplex(NodeId(1), NodeId(2), 10_000.0, 0.0).unwrap();
    let r = shortest_path_routing(&g).unwrap();
    let mut tm = TrafficMatrix::zeros(3);
    tm.set_demand(NodeId(0), NodeId(2), 5_000.0);
    let cfg = SimConfig {
        duration_s: 6_000.0,
        warmup_s: 600.0,
        seed: 5,
        ..SimConfig::default()
    };
    let res = simulate(&g, &r, &tm, &cfg).unwrap();
    let f = res.flow(NodeId(0), NodeId(2)).unwrap();
    // Kleinrock: 2 * 1/(10-5) = 0.4 s. The real tandem sits near it but the
    // second queue sees smoother arrivals + correlated sizes.
    assert!(
        (f.mean_delay_s - 0.4).abs() / 0.4 < 0.25,
        "tandem mean {} too far from 0.4",
        f.mean_delay_s
    );
}

/// The measurement window must exclude warm-up transients: starting the
/// window late never *increases* the measured mean on an initially-empty
/// system (cold start biases delay low).
#[test]
fn warmup_removes_cold_start_bias() {
    let (g, r) = one_link(10_000.0);
    let tm = tm1(8_000.0); // high load: long transient
    let no_warm = SimConfig {
        duration_s: 50.0,
        warmup_s: 0.0,
        seed: 9,
        ..SimConfig::default()
    };
    let warm = SimConfig {
        duration_s: 50.0,
        warmup_s: 25.0,
        seed: 9,
        ..SimConfig::default()
    };
    let a = simulate(&g, &r, &tm, &no_warm).unwrap();
    let b = simulate(&g, &r, &tm, &warm).unwrap();
    let fa = a.flow(NodeId(0), NodeId(1)).unwrap();
    let fb = b.flow(NodeId(0), NodeId(1)).unwrap();
    assert!(fa.delivered > fb.delivered);
    assert!(
        fb.mean_delay_s >= fa.mean_delay_s * 0.8,
        "warm {} vs cold {}",
        fb.mean_delay_s,
        fa.mean_delay_s
    );
}
