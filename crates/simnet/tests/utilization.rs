//! Property tests: measured link utilization is the busy fraction of the
//! measurement window, so it must (a) track the M/M/1 offered load
//! `rho = demand / capacity` below saturation and (b) never exceed 1.0
//! under overload *without any clamping*. The second property is the
//! regression guard for the window-overlap accounting fix: the old
//! implementation credited each measured packet its full service time
//! (even the part draining past the horizon) and hid the resulting
//! utilization > 1 behind a `.min(1.0)` clamp.

use proptest::prelude::*;
use routenet_netgraph::routing::shortest_path_routing;
use routenet_netgraph::{Graph, NodeId, RoutingScheme, TrafficMatrix};
use routenet_simnet::sim::{simulate, SimConfig};

fn one_link(cap_bps: f64) -> (Graph, RoutingScheme) {
    let mut g = Graph::new("1link", 2);
    g.add_duplex(NodeId(0), NodeId(1), cap_bps, 0.0).unwrap();
    let r = shortest_path_routing(&g).unwrap();
    (g, r)
}

fn tm1(bps: f64) -> TrafficMatrix {
    let mut tm = TrafficMatrix::zeros(2);
    tm.set_demand(NodeId(0), NodeId(1), bps);
    tm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Below saturation, the busy fraction of an M/M/1 link is exactly the
    /// offered load `rho`; over a long window the simulated estimate must
    /// land within a small absolute tolerance of it.
    #[test]
    fn single_link_utilization_matches_offered_load(rho in 0.1f64..0.9, seed in 0u64..100) {
        let cap = 10_000.0;
        let (g, r) = one_link(cap);
        let tm = tm1(rho * cap);
        let cfg = SimConfig {
            duration_s: 3_000.0,
            warmup_s: 300.0,
            seed,
            ..SimConfig::default()
        };
        let res = simulate(&g, &r, &tm, &cfg).unwrap();
        let fwd = g.link_between(NodeId(0), NodeId(1)).unwrap();
        let util = res.link_utilization[fwd.0];
        prop_assert!((util - rho).abs() < 0.05,
            "rho {rho}: measured utilization {util}");
        prop_assert!(util <= 1.0 + 1e-9, "utilization {util} > 1");
        // The idle reverse link must report exactly zero.
        let rev = g.link_between(NodeId(1), NodeId(0)).unwrap();
        prop_assert!(res.link_utilization[rev.0] == 0.0);
    }

    /// Overload: with an infinite buffer the queue never drains, so after
    /// warmup the link is busy essentially the whole window. Utilization
    /// must saturate at 1 from below — not exceed it (the clamp bug), and
    /// not fall short of it (the spill-in undercount).
    #[test]
    fn overloaded_link_saturates_at_one_without_clamp(over in 1.1f64..2.0, seed in 0u64..50) {
        let cap = 10_000.0;
        let (g, r) = one_link(cap);
        let tm = tm1(over * cap);
        let cfg = SimConfig {
            duration_s: 400.0,
            warmup_s: 40.0,
            seed,
            ..SimConfig::default()
        };
        let res = simulate(&g, &r, &tm, &cfg).unwrap();
        let fwd = g.link_between(NodeId(0), NodeId(1)).unwrap();
        let util = res.link_utilization[fwd.0];
        prop_assert!(util <= 1.0 + 1e-9, "utilization {util} > 1");
        prop_assert!(util > 0.99, "overloaded link should be saturated, got {util}");
    }
}
