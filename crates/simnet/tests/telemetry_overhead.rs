//! Telemetry must be an observer, not a participant: attaching a handle to
//! [`SimConfig`] may not change a single simulated statistic, and the
//! disabled handle may not cost measurable time (the hot loop aggregates in
//! locals and flushes once at run end, so neither variant does per-event
//! telemetry work).
//!
//! The timing assertion is `#[ignore]`d from the default test run because
//! wall-clock comparisons are machine- and load-dependent; `scripts/check.sh`
//! runs it explicitly (release, generous tolerance) as the "disabled
//! telemetry is within noise" gate.

use routenet_netgraph::routing::shortest_path_routing;
use routenet_netgraph::{Graph, NodeId, RoutingScheme, TrafficMatrix};
use routenet_obs::Telemetry;
use routenet_simnet::sim::{simulate, SimConfig};
use routenet_simnet::SimResult;
use std::time::Instant;

fn one_link(cap_bps: f64) -> (Graph, RoutingScheme) {
    let mut g = Graph::new("1link", 2);
    g.add_duplex(NodeId(0), NodeId(1), cap_bps, 0.0).unwrap();
    let r = shortest_path_routing(&g).unwrap();
    (g, r)
}

fn run(telemetry: Telemetry) -> SimResult {
    let (g, r) = one_link(10_000.0);
    let mut tm = TrafficMatrix::zeros(2);
    tm.set_demand(NodeId(0), NodeId(1), 7_000.0);
    let cfg = SimConfig {
        duration_s: 500.0,
        warmup_s: 50.0,
        seed: 11,
        telemetry,
        ..SimConfig::default()
    };
    simulate(&g, &r, &tm, &cfg).unwrap()
}

/// Same seed, with and without a recording handle: every simulated statistic
/// must be bit-identical. Telemetry that perturbs the event stream would
/// silently invalidate the labels it is supposed to observe.
#[test]
fn telemetry_does_not_change_results() {
    let base = run(Telemetry::disabled());
    let tel = Telemetry::in_memory("simnet", "overhead-test");
    let observed = run(tel.clone());
    assert_eq!(base.events_processed, observed.events_processed);
    assert_eq!(base.total_packets, observed.total_packets);
    assert_eq!(base.link_utilization, observed.link_utilization);
    assert_eq!(base.flows.len(), observed.flows.len());
    for (a, b) in base.flows.iter().zip(&observed.flows) {
        assert_eq!(a.mean_delay_s, b.mean_delay_s);
        assert_eq!(a.jitter_s2, b.jitter_s2);
    }
    assert_eq!(tel.counter("sim.events"), base.events_processed);
}

/// Disabled telemetry must be within noise of an enabled in-memory handle.
/// Both variants do zero telemetry work inside the event loop, so their
/// medians differ only by one end-of-run flush; a regression here means
/// someone put per-event telemetry on the hot path. Tolerance is generous
/// (35%) because short wall-clock medians are noisy under CI load.
#[test]
#[ignore = "wall-clock comparison; run explicitly via scripts/check.sh"]
fn disabled_telemetry_within_noise_of_enabled() {
    let median = |tel_for: &dyn Fn() -> Telemetry| -> f64 {
        let mut times: Vec<f64> = (0..5)
            .map(|_| {
                let t0 = Instant::now();
                let res = run(tel_for());
                assert!(res.events_processed > 0);
                t0.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(|a, b| a.total_cmp(b));
        times[times.len() / 2]
    };
    // Warm both paths once (page cache, lazy init) before timing.
    run(Telemetry::disabled());
    run(Telemetry::in_memory("simnet", "warmup"));
    let disabled = median(&Telemetry::disabled);
    let enabled = median(&|| Telemetry::in_memory("simnet", "overhead"));
    assert!(
        disabled <= enabled * 1.35,
        "disabled-telemetry sim ({disabled:.4}s) slower than enabled ({enabled:.4}s) beyond noise"
    );
}
