//! Measurement infrastructure: streaming per-flow statistics and simulation
//! results.

use routenet_netgraph::NodeId;
use serde::{Deserialize, Serialize};

/// Streaming accumulator for per-packet end-to-end delays of one flow.
///
/// Uses Welford's algorithm so mean and variance are numerically stable over
/// millions of samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DelayAccumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl DelayAccumulator {
    /// Fresh, empty accumulator.
    pub fn new() -> Self {
        DelayAccumulator {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one delay observation (seconds).
    pub fn record(&mut self, delay_s: f64) {
        debug_assert!(delay_s.is_finite() && delay_s >= 0.0);
        self.count += 1;
        let d = delay_s - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (delay_s - self.mean);
        self.min = self.min.min(delay_s);
        self.max = self.max.max(delay_s);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or `None` with no observations.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance of the delay (the RouteNet datasets define
    /// "jitter" as delay variance), or `None` with no observations.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Minimum observed delay.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observed delay.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &DelayAccumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        debug_assert!(total > 0, "both sides nonzero after the early returns");
        let total_f = total as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total_f;
        let m2 =
            self.m2 + other.m2 + delta * delta * self.count as f64 * other.count as f64 / total_f;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-memory log-spaced histogram for positive values (delays).
///
/// Bins are geometric between `lo` and `hi`; records outside the range clamp
/// to the edge bins. Percentile queries interpolate within a bin in log
/// space, giving a relative resolution of `(hi/lo)^(1/bins) - 1` (~9% with
/// the default 160 bins over 1e-5..1e3 s) — accurate enough for tail-latency
/// labels while costing a few hundred bytes per flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new(1e-5, 1e3, 160)
    }
}

impl LogHistogram {
    /// Histogram over `[lo, hi]` with `bins` geometric bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo > 0.0 && hi > lo && bins >= 2);
        LogHistogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    fn bin_of(&self, x: f64) -> usize {
        debug_assert!(self.lo > 0.0 && self.hi > self.lo && x > 0.0);
        let b = self.counts.len() as f64;
        let t = (x / self.lo).ln() / (self.hi / self.lo).ln();
        ((t * b).floor().max(0.0) as usize).min(self.counts.len() - 1)
    }

    /// Record a positive observation.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite() && x > 0.0);
        let i = self.bin_of(x.max(self.lo));
        self.counts[i] += 1;
        self.total += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// `q`-quantile (`0 < q <= 1`), or `None` with no observations.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(q > 0.0 && q <= 1.0);
        debug_assert!(self.lo > 0.0 && self.hi > self.lo, "constructor invariant");
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if cum + c >= target {
                // Interpolate within the bin in log space.
                let b = self.counts.len() as f64;
                debug_assert!(b > 0.0, "constructor requires at least two bins");
                let frac = if c == 0 {
                    0.5
                } else {
                    (target - cum) as f64 / c as f64
                };
                let t = (i as f64 + frac) / b;
                return Some(self.lo * (self.hi / self.lo).powf(t));
            }
            cum += c;
        }
        Some(self.hi)
    }

    /// Merge another histogram with identical bounds/bins.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        assert!(
            self.lo == other.lo && self.hi == other.hi,
            "bounds mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

/// Final per-flow measurement for one `(src, dst)` pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowStats {
    /// Flow source node.
    pub src: NodeId,
    /// Flow destination node.
    pub dst: NodeId,
    /// Offered average rate, bits/s (input parameter echoed for convenience).
    /// unit: bit/s
    pub offered_bps: f64,
    /// Packets delivered end-to-end within the measurement window.
    pub delivered: u64,
    /// Packets dropped at full buffers.
    pub dropped: u64,
    /// Mean per-packet end-to-end delay, seconds.
    /// unit: s
    pub mean_delay_s: f64,
    /// Delay variance ("jitter" in the RouteNet dataset convention), s².
    /// unit: s^2
    pub jitter_s2: f64,
    /// Extremes, seconds.
    /// unit: s
    pub min_delay_s: f64,
    /// Maximum observed delay, seconds.
    /// unit: s
    pub max_delay_s: f64,
    /// 90th-percentile delay, seconds (log-histogram estimate, ~9% relative
    /// resolution; 0 with no observations). Tail-latency label for the
    /// percentile-prediction extension of RouteNet.
    /// unit: s
    pub p90_delay_s: f64,
    /// 99th-percentile delay, seconds (same estimator as `p90_delay_s`).
    /// unit: s
    pub p99_delay_s: f64,
}

impl FlowStats {
    /// Drop probability within the measurement window.
    pub fn drop_prob(&self) -> f64 {
        let total = self.delivered + self.dropped;
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// One entry per flow with non-zero demand, in canonical pair order.
    pub flows: Vec<FlowStats>,
    /// Per-link mean utilization measured over the run (busy time fraction).
    /// unit: ratio
    pub link_utilization: Vec<f64>,
    /// Per-link time-average number of packets in system (Little's law:
    /// accumulated sojourn time divided by the measurement window).
    /// unit: count
    pub link_mean_occupancy: Vec<f64>,
    /// Per-link mean per-packet sojourn (wait + service) time, seconds.
    /// unit: s
    pub link_mean_sojourn_s: Vec<f64>,
    /// Total simulated packets (delivered + dropped + still in flight at end).
    pub total_packets: u64,
    /// Number of processed events (cost metric for the E5 experiment).
    pub events_processed: u64,
    /// Simulated duration excluding warm-up, seconds.
    /// unit: s
    pub measured_duration_s: f64,
}

impl SimResult {
    /// Look up the stats of a flow by endpoints.
    pub fn flow(&self, src: NodeId, dst: NodeId) -> Option<&FlowStats> {
        self.flows.iter().find(|f| f.src == src && f.dst == dst)
    }

    /// Mean delay over all flows weighted by delivered packets.
    pub fn overall_mean_delay_s(&self) -> Option<f64> {
        let total: u64 = self.flows.iter().map(|f| f.delivered).sum();
        if total == 0 {
            return None;
        }
        Some(
            self.flows
                .iter()
                .map(|f| f.mean_delay_s * f.delivered as f64)
                .sum::<f64>()
                / total as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_mean_var_match_naive() {
        let xs = [0.5, 1.0, 1.5, 2.0, 10.0];
        let mut acc = DelayAccumulator::new();
        for &x in &xs {
            acc.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!((acc.mean().unwrap() - mean).abs() < 1e-12);
        assert!((acc.variance().unwrap() - var).abs() < 1e-12);
        assert_eq!(acc.min().unwrap(), 0.5);
        assert_eq!(acc.max().unwrap(), 10.0);
        assert_eq!(acc.count(), 5);
    }

    #[test]
    fn empty_accumulator_returns_none() {
        let acc = DelayAccumulator::new();
        assert_eq!(acc.mean(), None);
        assert_eq!(acc.variance(), None);
        assert_eq!(acc.min(), None);
        assert_eq!(acc.max(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin().abs()).collect();
        let mut all = DelayAccumulator::new();
        for &x in &xs {
            all.record(x);
        }
        let mut a = DelayAccumulator::new();
        let mut b = DelayAccumulator::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean().unwrap() - all.mean().unwrap()).abs() < 1e-12);
        assert!((a.variance().unwrap() - all.variance().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = DelayAccumulator::new();
        a.record(1.0);
        a.record(2.0);
        let before = a.clone();
        a.merge(&DelayAccumulator::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());
        let mut empty = DelayAccumulator::new();
        empty.merge(&a);
        assert_eq!(empty.count(), a.count());
        assert_eq!(empty.mean(), a.mean());
    }

    #[test]
    fn histogram_quantiles_match_empirical() {
        // Log-uniform data over two decades.
        let xs: Vec<f64> = (0..10_000)
            .map(|i| 10f64.powf(-3.0 + 2.0 * (i as f64 + 0.5) / 10_000.0))
            .collect();
        let mut h = LogHistogram::new(1e-4, 1e0, 200);
        for &x in &xs {
            h.record(x);
        }
        assert_eq!(h.count(), 10_000);
        for q in [0.1, 0.5, 0.9, 0.99] {
            let mut sorted = xs.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let exact = sorted[((q * 10_000.0) as usize).min(9_999)];
            let est = h.quantile(q).unwrap();
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.05, "q{q}: est {est} vs exact {exact} (rel {rel})");
        }
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = LogHistogram::new(1e-2, 1e0, 10);
        h.record(1e-6); // below lo -> first bin
        h.record(1e6); // above hi -> last bin
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.4).unwrap() <= 2e-2);
        assert!(h.quantile(1.0).unwrap() >= 0.99);
    }

    #[test]
    fn histogram_empty_and_merge() {
        let h = LogHistogram::default();
        assert_eq!(h.quantile(0.5), None);
        let mut a = LogHistogram::new(1e-3, 1e1, 50);
        let mut b = LogHistogram::new(1e-3, 1e1, 50);
        for i in 1..=100 {
            a.record(i as f64 * 0.01);
        }
        for i in 1..=100 {
            b.record(i as f64 * 0.05);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 200);
        // merged median between the two individual medians
        let ma = a.quantile(0.5).unwrap();
        let mb = b.quantile(0.5).unwrap();
        let mm = merged.quantile(0.5).unwrap();
        assert!(mm >= ma.min(mb) && mm <= ma.max(mb));
    }

    #[test]
    #[should_panic(expected = "bounds mismatch")]
    fn histogram_merge_checks_bounds() {
        let mut a = LogHistogram::new(1e-3, 1e1, 50);
        let b = LogHistogram::new(1e-2, 1e1, 50);
        a.merge(&b);
    }

    #[test]
    fn drop_prob_edge_cases() {
        let mut f = FlowStats {
            src: NodeId(0),
            dst: NodeId(1),
            offered_bps: 100.0,
            delivered: 0,
            dropped: 0,
            mean_delay_s: 0.0,
            jitter_s2: 0.0,
            min_delay_s: 0.0,
            max_delay_s: 0.0,
            p90_delay_s: 0.0,
            p99_delay_s: 0.0,
        };
        assert_eq!(f.drop_prob(), 0.0);
        f.delivered = 3;
        f.dropped = 1;
        assert!((f.drop_prob() - 0.25).abs() < 1e-12);
    }
}
