//! Discrete-event packet-level network simulator.
//!
//! This is the suite's stand-in for the paper's custom OMNeT++ simulator: it
//! generates the ground-truth per-flow mean delay and jitter labels that
//! RouteNet trains on.
//!
//! Model, matching the public RouteNet/KDN dataset generator:
//! - one flow per source/destination pair with non-zero demand,
//! - packet arrivals per flow: Poisson by default (deterministic and bursty
//!   ON/OFF processes available),
//! - packet sizes: exponential by default (deterministic and bimodal
//!   available), mean `mean_pkt_size_bits`,
//! - store-and-forward FIFO output queue per directed link, service time
//!   `size / capacity`, optional finite buffer with tail drop,
//! - per-link propagation delay added after service.
//!
//! With Poisson arrivals + exponential sizes + infinite buffers, a single
//! link is exactly an M/M/1 queue, which the property tests exploit to
//! validate the simulator against closed forms from [`crate::queueing`].

use crate::stats::{DelayAccumulator, FlowStats, LogHistogram, SimResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use routenet_netgraph::{Graph, LinkId, NodeId, RoutingScheme, TrafficMatrix};
use routenet_obs::{Event, Telemetry};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Packet-size distribution (mean fixed by `SimConfig::mean_pkt_size_bits`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SizeDistribution {
    /// Exponential with the configured mean (the M/M/1-compatible default).
    Exponential,
    /// Every packet has exactly the mean size.
    Deterministic,
    /// Two sizes: `small_frac * mean` with probability `p_small`, and a large
    /// size chosen so the overall mean is preserved.
    Bimodal {
        /// Probability of a small packet.
        p_small: f64,
        /// Small size as a fraction of the mean (in `(0, 1)`).
        small_frac: f64,
    },
}

/// Per-flow packet arrival process (average rate fixed by the traffic matrix).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals (exponential inter-arrival times). Default.
    Poisson,
    /// Constant inter-arrival times `1/rate`.
    Deterministic,
    /// Exponential ON/OFF bursts: during ON periods packets arrive as a
    /// Poisson process at a boosted rate so the long-run average matches the
    /// demand; OFF periods are silent.
    OnOff {
        /// Mean ON-period length, seconds.
        on_mean_s: f64,
        /// Mean OFF-period length, seconds.
        off_mean_s: f64,
    },
}

/// Simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Total simulated time during which packets are generated, seconds.
    pub duration_s: f64,
    /// Packets generated before this time are excluded from statistics
    /// (queue warm-up), seconds.
    pub warmup_s: f64,
    /// Mean packet size, bits.
    pub mean_pkt_size_bits: f64,
    /// Packet-size distribution.
    pub size_dist: SizeDistribution,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Per-link buffer capacity in packets (including the one in service);
    /// `None` = infinite (the KDN dataset setting).
    pub buffer_pkts: Option<usize>,
    /// RNG seed; equal seeds give bit-identical results.
    pub seed: u64,
    /// Telemetry handle: when enabled, each run emits one
    /// [`Event::SimRun`] with cost metrics (events/s, packet counts, heap
    /// high-water mark, wall-clock). Never serialized (`#[serde(skip)]`)
    /// and never consulted inside the event loop — the per-event counters
    /// aggregate locally and flush once at run end.
    #[serde(skip)]
    pub telemetry: Telemetry,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            duration_s: 120.0,
            warmup_s: 10.0,
            mean_pkt_size_bits: 1_000.0,
            size_dist: SizeDistribution::Exponential,
            arrivals: ArrivalProcess::Poisson,
            buffer_pkts: None,
            seed: 1,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Simulation error.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Traffic matrix size does not match the graph.
    SizeMismatch {
        /// Nodes in the graph.
        graph_nodes: usize,
        /// Nodes the traffic matrix was built for.
        tm_nodes: usize,
    },
    /// Configuration value out of range.
    BadConfig(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::SizeMismatch {
                graph_nodes,
                tm_nodes,
            } => write!(
                f,
                "traffic matrix for {tm_nodes} nodes used with {graph_nodes}-node graph"
            ),
            SimError::BadConfig(msg) => write!(f, "bad simulator config: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Totally ordered finite f64 for the event heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> Ordering {
        // total_cmp needs no panic path; event times are kept finite by the
        // debug_assert at every push, and a hypothetical NaN would sort at a
        // fixed position instead of corrupting the heap.
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy)]
enum EventKind {
    /// Generate the next packet of `flow` and schedule its successor.
    SourceArrival { flow: u32 },
    /// A packet reaches the queue of `path[hop]` of its flow.
    HopArrive {
        flow: u32,
        hop: u16,
        size_bits: f64,
        gen_time: f64,
    },
}

struct HeapEvent {
    time: Time,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for HeapEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for HeapEvent {}

impl Ord for HeapEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first, tie-break on
        // insertion sequence for full determinism.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for HeapEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

struct Flow {
    src: NodeId,
    dst: NodeId,
    rate_pps: f64,
    offered_bps: f64,
    path: Vec<LinkId>,
    /// ON/OFF process state: end of the current period (ON if `in_on`).
    in_on: bool,
    period_end: f64,
    acc: DelayAccumulator,
    hist: LogHistogram,
    dropped: u64,
}

struct LinkState {
    capacity_bps: f64,
    prop_delay_s: f64,
    /// Completion time of the last scheduled service.
    busy_until: f64,
    /// Scheduled departure times of queued/in-service packets (min-heap),
    /// pruned lazily; length = current system occupancy.
    departures: BinaryHeap<std::cmp::Reverse<Time>>,
    /// Accumulated busy (service) time clipped to the measurement window:
    /// each service interval contributes exactly its overlap with
    /// `[warmup_s, duration_s)`, so `busy_time_s / window <= 1` holds by
    /// construction (no clamping needed).
    busy_time_s: f64,
    /// Accumulated per-packet sojourn (wait + service) within the window;
    /// `sojourn_time_s / window` is the time-average system occupancy
    /// (Little's law), `sojourn_time_s / sojourn_count` the mean sojourn.
    sojourn_time_s: f64,
    /// Packets contributing to `sojourn_time_s`.
    sojourn_count: u64,
}

/// Run one simulation. Flows are created for every pair with demand > 0.
///
/// Statistics cover packets *generated* in `[warmup_s, duration_s)`; all
/// generated packets are drained to their destination before returning, so
/// no measured packet is lost to the horizon.
pub fn simulate(
    g: &Graph,
    routing: &RoutingScheme,
    tm: &TrafficMatrix,
    cfg: &SimConfig,
) -> Result<SimResult, SimError> {
    validate_config(cfg)?;
    if tm.n_nodes() != g.n_nodes() {
        return Err(SimError::SizeMismatch {
            graph_nodes: g.n_nodes(),
            tm_nodes: tm.n_nodes(),
        });
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut flows: Vec<Flow> = Vec::new();
    debug_assert!(cfg.mean_pkt_size_bits > 0.0, "validate_config invariant");
    for (s, d, demand) in tm.entries() {
        if demand > 0.0 {
            flows.push(Flow {
                src: s,
                dst: d,
                rate_pps: demand / cfg.mean_pkt_size_bits,
                offered_bps: demand,
                // lint: allow(hot-loop-alloc, reason = "one owned path per flow at setup; the event loop itself never allocates")
                path: routing.path(s, d).to_vec(),
                in_on: true,
                period_end: 0.0,
                acc: DelayAccumulator::new(),
                hist: LogHistogram::default(),
                dropped: 0,
            });
        }
    }

    // One validation pass up front makes every event-loop access infallible:
    // flow ids fit the compact u32 event encoding, hop counters fit u16, and
    // all path link ids resolve against this graph.
    if u32::try_from(flows.len()).is_err() {
        return Err(SimError::BadConfig(format!(
            "{} flows exceed the u32 event encoding",
            flows.len()
        )));
    }
    for f in &flows {
        if f.path.len() >= usize::from(u16::MAX) {
            // lint: allow(hot-loop-alloc, reason = "error message built only on the bad-config early-return path")
            return Err(SimError::BadConfig(format!(
                "path for {}->{} has {} hops, exceeding the u16 hop counter",
                f.src,
                f.dst,
                f.path.len()
            )));
        }
        if let Some(&lid) = f.path.iter().find(|l| l.0 >= g.n_links()) {
            // lint: allow(hot-loop-alloc, reason = "error message built only on the bad-config early-return path")
            return Err(SimError::BadConfig(format!(
                "routing path for {}->{} references {lid} outside the graph",
                f.src, f.dst
            )));
        }
    }

    let mut links: Vec<LinkState> = g
        .links()
        .map(|(_, l)| LinkState {
            capacity_bps: l.capacity_bps,
            prop_delay_s: l.prop_delay_s,
            busy_until: 0.0,
            departures: BinaryHeap::new(),
            busy_time_s: 0.0,
            sojourn_time_s: 0.0,
            sojourn_count: 0,
        })
        .collect();

    let mut heap: BinaryHeap<HeapEvent> = BinaryHeap::new();
    let mut seq: u64 = 0;
    let push = |heap: &mut BinaryHeap<HeapEvent>, seq: &mut u64, time: f64, kind: EventKind| {
        debug_assert!(time.is_finite());
        heap.push(HeapEvent {
            time: Time(time),
            seq: *seq,
            kind,
        });
        *seq += 1;
    };

    // Initial arrivals.
    for (i, f) in flows.iter_mut().enumerate() {
        if f.rate_pps > 0.0 {
            let t = next_arrival_time(0.0, f, &cfg.arrivals, &mut rng);
            push(
                &mut heap,
                &mut seq,
                t,
                // lint: allow(cast, reason = "flow count validated against u32::MAX above")
                EventKind::SourceArrival { flow: i as u32 },
            );
        }
    }

    let mut events_processed: u64 = 0;
    let mut total_packets: u64 = 0;
    // Telemetry cost metrics aggregate into plain locals: the event loop
    // never calls into the registry (overhead budget, RN103). The heap
    // high-water compare is unconditional — cheaper than a branch on the
    // telemetry handle and identical for every run.
    let mut heap_high_water: usize = heap.len();
    let wall_start = cfg.telemetry.enabled().then(Instant::now);

    while let Some(HeapEvent {
        time: Time(now),
        kind,
        ..
    }) = heap.pop()
    {
        events_processed += 1;
        heap_high_water = heap_high_water.max(heap.len() + 1);
        match kind {
            EventKind::SourceArrival { flow } => {
                // lint: allow(cast, reason = "u32 to usize is widening on supported targets")
                let f = &mut flows[flow as usize]; // lint: allow(panic, reason = "events only carry flow ids minted from this flows vec")
                                                   // Generate this packet (if within horizon) and schedule next.
                if now < cfg.duration_s {
                    let size = sample_size(cfg, &mut rng);
                    total_packets += 1;
                    push(
                        &mut heap,
                        &mut seq,
                        now,
                        EventKind::HopArrive {
                            flow,
                            hop: 0,
                            size_bits: size,
                            gen_time: now,
                        },
                    );
                    let t = next_arrival_time(now, f, &cfg.arrivals, &mut rng);
                    if t < cfg.duration_s {
                        push(&mut heap, &mut seq, t, EventKind::SourceArrival { flow });
                    }
                }
            }
            EventKind::HopArrive {
                flow,
                hop,
                size_bits,
                gen_time,
            } => {
                // lint: allow(cast, reason = "u32 to usize is widening on supported targets")
                let f = &mut flows[flow as usize]; // lint: allow(panic, reason = "events only carry flow ids minted from this flows vec")
                let measured = gen_time >= cfg.warmup_s;
                if hop as usize == f.path.len() {
                    // Delivered to destination.
                    if measured {
                        let delay = now - gen_time;
                        f.acc.record(delay);
                        if delay > 0.0 {
                            f.hist.record(delay);
                        }
                    }
                    continue;
                }
                // lint: allow(cast, reason = "u16 to usize is widening on supported targets")
                let lid = f.path[hop as usize]; // lint: allow(panic, reason = "hop < path.len(): the delivery check above continues at ==")
                let link = &mut links[lid.0]; // lint: allow(panic, reason = "path link ids validated against g.n_links() at entry")
                                              // Lazily prune departures that already happened.
                while let Some(std::cmp::Reverse(Time(t))) = link.departures.peek() {
                    if *t <= now {
                        link.departures.pop();
                    } else {
                        break;
                    }
                }
                if let Some(cap) = cfg.buffer_pkts {
                    if link.departures.len() >= cap {
                        if measured {
                            f.dropped += 1;
                        }
                        continue;
                    }
                }
                debug_assert!(
                    link.capacity_bps > 0.0,
                    "graph links carry positive capacity"
                );
                let service = size_bits / link.capacity_bps;
                let start = now.max(link.busy_until);
                let depart = start + service;
                link.busy_until = depart;
                link.departures.push(std::cmp::Reverse(Time(depart)));
                // Utilization accounting must clip the *service interval* to
                // the measurement window, not gate on when the packet was
                // generated: a pre-warmup packet served inside the window
                // contributes its in-window part, and a measured packet
                // whose service drains past the horizon contributes only up
                // to `duration_s`. Gating on `measured` both missed the
                // former and over-counted the latter, producing utilization
                // > 1 under overload (previously masked by a `.min(1.0)`).
                let overlap = depart.min(cfg.duration_s) - start.max(cfg.warmup_s);
                if overlap > 0.0 {
                    link.busy_time_s += overlap;
                }
                if measured {
                    link.sojourn_time_s += depart - now;
                    link.sojourn_count += 1;
                }
                push(
                    &mut heap,
                    &mut seq,
                    depart + link.prop_delay_s,
                    EventKind::HopArrive {
                        flow,
                        hop: hop + 1,
                        size_bits,
                        gen_time,
                    },
                );
            }
        }
    }

    let measured_duration_s = (cfg.duration_s - cfg.warmup_s).max(0.0);
    let flow_stats: Vec<FlowStats> = flows
        .into_iter()
        .map(|f| FlowStats {
            src: f.src,
            dst: f.dst,
            offered_bps: f.offered_bps,
            delivered: f.acc.count(),
            dropped: f.dropped,
            mean_delay_s: f.acc.mean().unwrap_or(0.0),
            jitter_s2: f.acc.variance().unwrap_or(0.0),
            min_delay_s: f.acc.min().unwrap_or(0.0),
            max_delay_s: f.acc.max().unwrap_or(0.0),
            p90_delay_s: f.hist.quantile(0.9).unwrap_or(0.0),
            p99_delay_s: f.hist.quantile(0.99).unwrap_or(0.0),
        })
        .collect();
    let link_utilization = links
        .iter()
        .map(|l| {
            if measured_duration_s > 0.0 {
                let util = l.busy_time_s / measured_duration_s;
                // INVARIANT: busy time is accumulated as window overlap, so
                // it can never exceed the window itself (ε for accumulated
                // float rounding over millions of service intervals).
                debug_assert!(util <= 1.0 + 1e-9, "link utilization {util} > 1");
                util
            } else {
                0.0
            }
        })
        .collect();
    let link_mean_occupancy = links
        .iter()
        .map(|l| {
            if measured_duration_s > 0.0 {
                l.sojourn_time_s / measured_duration_s
            } else {
                0.0
            }
        })
        .collect();
    let link_mean_sojourn_s = links
        .iter()
        .map(|l| {
            if l.sojourn_count > 0 {
                l.sojourn_time_s / l.sojourn_count as f64
            } else {
                0.0
            }
        })
        .collect();

    if let Some(t0) = wall_start {
        let wall_s = t0.elapsed().as_secs_f64();
        let (delivered, dropped) = flow_stats
            .iter()
            .fold((0u64, 0u64), |(d, x), f| (d + f.delivered, x + f.dropped));
        cfg.telemetry.emit(Event::SimRun {
            events: events_processed,
            events_per_s: events_processed as f64 / wall_s.max(1e-9),
            packets_generated: total_packets,
            packets_delivered: delivered,
            packets_dropped: dropped,
            heap_high_water,
            wall_s,
        });
        cfg.telemetry.counter_add("sim.runs", 1);
        cfg.telemetry.counter_add("sim.events", events_processed);
        cfg.telemetry.counter_add("sim.packets_dropped", dropped);
        cfg.telemetry.observe_s("sim.run_s", wall_s);
    }

    Ok(SimResult {
        flows: flow_stats,
        link_utilization,
        link_mean_occupancy,
        link_mean_sojourn_s,
        total_packets,
        events_processed,
        measured_duration_s,
    })
}

fn validate_config(cfg: &SimConfig) -> Result<(), SimError> {
    if !(cfg.duration_s.is_finite() && cfg.duration_s > 0.0) {
        return Err(SimError::BadConfig(format!(
            "duration_s = {}",
            cfg.duration_s
        )));
    }
    if !(cfg.warmup_s.is_finite() && cfg.warmup_s >= 0.0 && cfg.warmup_s < cfg.duration_s) {
        return Err(SimError::BadConfig(format!(
            "warmup_s = {} (duration {})",
            cfg.warmup_s, cfg.duration_s
        )));
    }
    if !(cfg.mean_pkt_size_bits.is_finite() && cfg.mean_pkt_size_bits > 0.0) {
        return Err(SimError::BadConfig(format!(
            "mean_pkt_size_bits = {}",
            cfg.mean_pkt_size_bits
        )));
    }
    if let SizeDistribution::Bimodal {
        p_small,
        small_frac,
    } = cfg.size_dist
    {
        if !(0.0..1.0).contains(&p_small) || !(0.0..1.0).contains(&small_frac) {
            return Err(SimError::BadConfig(format!(
                "bimodal p_small={p_small} small_frac={small_frac}"
            )));
        }
    }
    if let ArrivalProcess::OnOff {
        on_mean_s,
        off_mean_s,
    } = cfg.arrivals
    {
        if !(on_mean_s > 0.0
            && off_mean_s >= 0.0
            && on_mean_s.is_finite()
            && off_mean_s.is_finite())
        {
            return Err(SimError::BadConfig(format!(
                "onoff on={on_mean_s} off={off_mean_s}"
            )));
        }
    }
    if cfg.buffer_pkts == Some(0) {
        return Err(SimError::BadConfig("buffer_pkts = 0".into()));
    }
    Ok(())
}

fn exp_sample<R: Rng>(rate: f64, rng: &mut R) -> f64 {
    debug_assert!(rate > 0.0);
    let u: f64 = rng.gen();
    let survival = 1.0 - u;
    debug_assert!(
        survival > 0.0,
        "gen() samples [0, 1), so 1-u stays positive"
    );
    -survival.ln() / rate
}

fn sample_size<R: Rng>(cfg: &SimConfig, rng: &mut R) -> f64 {
    let mean = cfg.mean_pkt_size_bits;
    debug_assert!(mean > 0.0, "validate_config invariant");
    match cfg.size_dist {
        SizeDistribution::Exponential => exp_sample(1.0 / mean, rng),
        SizeDistribution::Deterministic => mean,
        SizeDistribution::Bimodal {
            p_small,
            small_frac,
        } => {
            let small = small_frac * mean;
            let p_large = 1.0 - p_small;
            debug_assert!(p_large > 0.0, "validate_config bounds p_small below 1");
            let large = (mean - p_small * small) / p_large;
            if rng.gen::<f64>() < p_small {
                small
            } else {
                large
            }
        }
    }
}

/// Next packet time for `flow` strictly after `now`.
fn next_arrival_time<R: Rng>(now: f64, f: &mut Flow, proc: &ArrivalProcess, rng: &mut R) -> f64 {
    debug_assert!(f.rate_pps > 0.0, "flows are only created for demand > 0");
    match *proc {
        ArrivalProcess::Poisson => now + exp_sample(f.rate_pps, rng),
        ArrivalProcess::Deterministic => now + 1.0 / f.rate_pps,
        ArrivalProcess::OnOff {
            on_mean_s,
            off_mean_s,
        } => {
            // Rate during ON chosen so the long-run average equals rate_pps.
            debug_assert!(
                on_mean_s > 0.0 && off_mean_s >= 0.0,
                "validate_config invariant"
            );
            let duty = on_mean_s / (on_mean_s + off_mean_s);
            debug_assert!(duty > 0.0);
            let burst_rate = f.rate_pps / duty;
            let mut t = now;
            loop {
                if t >= f.period_end {
                    // Start a new period where we stand.
                    // lint: allow(float-eq, reason = "0.0 is the exact never-initialized sentinel assigned at flow creation")
                    if f.period_end == 0.0 {
                        f.in_on = true; // all flows start ON at t=0
                    } else {
                        f.in_on = !f.in_on;
                    }
                    let mean = if f.in_on {
                        on_mean_s
                    } else {
                        off_mean_s.max(1e-12)
                    };
                    debug_assert!(mean > 0.0);
                    f.period_end = t + exp_sample(1.0 / mean, rng);
                    continue;
                }
                if f.in_on {
                    let cand = t + exp_sample(burst_rate, rng);
                    if cand < f.period_end {
                        return cand;
                    }
                    t = f.period_end;
                } else {
                    t = f.period_end;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routenet_netgraph::routing::shortest_path_routing;
    use routenet_netgraph::topology::nsfnet;
    use routenet_netgraph::Graph;

    fn one_link_graph(cap_bps: f64) -> (Graph, RoutingScheme) {
        let mut g = Graph::new("1link", 2);
        g.add_duplex(NodeId(0), NodeId(1), cap_bps, 0.0).unwrap();
        let r = shortest_path_routing(&g).unwrap();
        (g, r)
    }

    fn single_flow_tm(n: usize, s: usize, d: usize, bps: f64) -> TrafficMatrix {
        let mut tm = TrafficMatrix::zeros(n);
        tm.set_demand(NodeId(s), NodeId(d), bps);
        tm
    }

    #[test]
    fn empty_traffic_produces_no_packets() {
        let (g, r) = one_link_graph(10_000.0);
        let tm = TrafficMatrix::zeros(2);
        let res = simulate(&g, &r, &tm, &SimConfig::default()).unwrap();
        assert_eq!(res.total_packets, 0);
        assert!(res.flows.is_empty());
    }

    #[test]
    fn deterministic_low_load_has_pure_service_delay() {
        // Deterministic arrivals at 1 pps, deterministic 1000-bit packets,
        // 10 kbps link => service 0.1 s, no queueing at 10% load.
        let (g, r) = one_link_graph(10_000.0);
        let tm = single_flow_tm(2, 0, 1, 1_000.0);
        let cfg = SimConfig {
            duration_s: 200.0,
            warmup_s: 10.0,
            size_dist: SizeDistribution::Deterministic,
            arrivals: ArrivalProcess::Deterministic,
            ..SimConfig::default()
        };
        let res = simulate(&g, &r, &tm, &cfg).unwrap();
        let f = res.flow(NodeId(0), NodeId(1)).unwrap();
        assert!(f.delivered > 150);
        assert!(
            (f.mean_delay_s - 0.1).abs() < 1e-9,
            "mean {}",
            f.mean_delay_s
        );
        assert!(f.jitter_s2 < 1e-18);
        assert_eq!(f.dropped, 0);
    }

    #[test]
    fn propagation_delay_is_added() {
        let mut g = Graph::new("pd", 2);
        g.add_duplex(NodeId(0), NodeId(1), 10_000.0, 0.25).unwrap();
        let r = shortest_path_routing(&g).unwrap();
        let tm = single_flow_tm(2, 0, 1, 1_000.0);
        let cfg = SimConfig {
            size_dist: SizeDistribution::Deterministic,
            arrivals: ArrivalProcess::Deterministic,
            ..SimConfig::default()
        };
        let res = simulate(&g, &r, &tm, &cfg).unwrap();
        let f = res.flow(NodeId(0), NodeId(1)).unwrap();
        assert!((f.mean_delay_s - 0.35).abs() < 1e-9);
    }

    #[test]
    fn mm1_mean_delay_within_tolerance() {
        // lambda = 5 pps (5000 bps / 1000 bits), mu = 10 pps => sojourn 0.2 s.
        let (g, r) = one_link_graph(10_000.0);
        let tm = single_flow_tm(2, 0, 1, 5_000.0);
        let cfg = SimConfig {
            duration_s: 4_000.0,
            warmup_s: 200.0,
            seed: 42,
            ..SimConfig::default()
        };
        let res = simulate(&g, &r, &tm, &cfg).unwrap();
        let f = res.flow(NodeId(0), NodeId(1)).unwrap();
        assert!(f.delivered > 10_000);
        let rel = (f.mean_delay_s - 0.2).abs() / 0.2;
        assert!(rel < 0.05, "mean {} vs 0.2 (rel {rel})", f.mean_delay_s);
        // Jitter (variance) should approach 1/(mu-lambda)^2 = 0.04.
        let relv = (f.jitter_s2 - 0.04).abs() / 0.04;
        assert!(relv < 0.15, "var {} vs 0.04 (rel {relv})", f.jitter_s2);
    }

    #[test]
    fn utilization_measured_close_to_offered() {
        let (g, r) = one_link_graph(10_000.0);
        let tm = single_flow_tm(2, 0, 1, 6_000.0);
        let cfg = SimConfig {
            duration_s: 2_000.0,
            warmup_s: 100.0,
            seed: 7,
            ..SimConfig::default()
        };
        let res = simulate(&g, &r, &tm, &cfg).unwrap();
        let fwd = g.link_between(NodeId(0), NodeId(1)).unwrap();
        let util = res.link_utilization[fwd.0];
        assert!((util - 0.6).abs() < 0.05, "util {util}");
        // Reverse link idle.
        let rev = g.link_between(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(res.link_utilization[rev.0], 0.0);
    }

    #[test]
    fn telemetry_emits_one_simrun_event_per_run() {
        let (g, r) = one_link_graph(10_000.0);
        let tm = single_flow_tm(2, 0, 1, 5_000.0);
        let tel = Telemetry::in_memory("simnet", "test");
        let cfg = SimConfig {
            duration_s: 50.0,
            warmup_s: 5.0,
            telemetry: tel.clone(),
            ..SimConfig::default()
        };
        let res = simulate(&g, &r, &tm, &cfg).unwrap();
        let runs: Vec<_> = tel
            .records()
            .into_iter()
            .filter(|rec| rec.event.kind() == "SimRun")
            .collect();
        assert_eq!(runs.len(), 1);
        match &runs[0].event {
            Event::SimRun {
                events,
                packets_generated,
                heap_high_water,
                wall_s,
                ..
            } => {
                assert_eq!(*events, res.events_processed);
                assert_eq!(*packets_generated, res.total_packets);
                assert!(*heap_high_water >= 1);
                assert!(*wall_s > 0.0);
            }
            other => panic!("expected SimRun, got {other:?}"),
        }
        assert_eq!(tel.counter("sim.runs"), 1);
        assert_eq!(tel.counter("sim.events"), res.events_processed);
    }

    #[test]
    fn disabled_telemetry_emits_nothing() {
        let (g, r) = one_link_graph(10_000.0);
        let tm = single_flow_tm(2, 0, 1, 5_000.0);
        let cfg = SimConfig {
            duration_s: 30.0,
            warmup_s: 3.0,
            ..SimConfig::default()
        };
        assert!(!cfg.telemetry.enabled());
        let res = simulate(&g, &r, &tm, &cfg).unwrap();
        assert!(res.total_packets > 0);
        assert!(cfg.telemetry.records().is_empty());
    }

    #[test]
    fn finite_buffer_drops_under_overload() {
        // Offered 150% of capacity with a 5-packet buffer: heavy loss.
        let (g, r) = one_link_graph(10_000.0);
        let tm = single_flow_tm(2, 0, 1, 15_000.0);
        let cfg = SimConfig {
            duration_s: 500.0,
            warmup_s: 50.0,
            buffer_pkts: Some(5),
            seed: 3,
            ..SimConfig::default()
        };
        let res = simulate(&g, &r, &tm, &cfg).unwrap();
        let f = res.flow(NodeId(0), NodeId(1)).unwrap();
        assert!(f.dropped > 0, "expected drops");
        // M/M/1/K loss for rho=1.5, K=5: (1-r)r^K/(1-r^(K+1)) ~ 0.36
        let p = f.drop_prob();
        assert!((p - 0.36).abs() < 0.08, "drop prob {p}");
        // Delivered delay bounded by buffer: <= K * service-ish (loose x10).
        assert!(f.mean_delay_s < 5.0 * 0.1 * 10.0);
    }

    #[test]
    fn infinite_buffer_never_drops() {
        let g = nsfnet();
        let r = shortest_path_routing(&g).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let tm = routenet_netgraph::traffic::sample_traffic_matrix(
            &g,
            &r,
            &routenet_netgraph::TrafficModel::Uniform { min_frac: 0.1 },
            0.7,
            &mut rng,
        );
        let cfg = SimConfig {
            duration_s: 60.0,
            warmup_s: 5.0,
            seed: 11,
            ..SimConfig::default()
        };
        let res = simulate(&g, &r, &tm, &cfg).unwrap();
        assert!(res.flows.iter().all(|f| f.dropped == 0));
        assert_eq!(res.flows.len(), 14 * 13);
        assert!(res.total_packets > 0);
        assert!(res.events_processed > res.total_packets);
    }

    #[test]
    fn same_seed_same_result() {
        let g = nsfnet();
        let r = shortest_path_routing(&g).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let tm = routenet_netgraph::traffic::sample_traffic_matrix(
            &g,
            &r,
            &routenet_netgraph::TrafficModel::Gravity,
            0.5,
            &mut rng,
        );
        let cfg = SimConfig {
            duration_s: 30.0,
            warmup_s: 3.0,
            seed: 99,
            ..SimConfig::default()
        };
        let a = simulate(&g, &r, &tm, &cfg).unwrap();
        let b = simulate(&g, &r, &tm, &cfg).unwrap();
        assert_eq!(a.total_packets, b.total_packets);
        for (fa, fb) in a.flows.iter().zip(&b.flows) {
            assert_eq!(fa.delivered, fb.delivered);
            assert_eq!(fa.mean_delay_s, fb.mean_delay_s);
            assert_eq!(fa.jitter_s2, fb.jitter_s2);
        }
    }

    #[test]
    fn different_seed_different_result() {
        let (g, r) = one_link_graph(10_000.0);
        let tm = single_flow_tm(2, 0, 1, 5_000.0);
        let mut cfg = SimConfig {
            duration_s: 100.0,
            warmup_s: 10.0,
            ..SimConfig::default()
        };
        cfg.seed = 1;
        let a = simulate(&g, &r, &tm, &cfg).unwrap();
        cfg.seed = 2;
        let b = simulate(&g, &r, &tm, &cfg).unwrap();
        assert_ne!(
            a.flow(NodeId(0), NodeId(1)).unwrap().mean_delay_s,
            b.flow(NodeId(0), NodeId(1)).unwrap().mean_delay_s
        );
    }

    #[test]
    fn onoff_is_burstier_than_poisson() {
        let (g, r) = one_link_graph(10_000.0);
        let tm = single_flow_tm(2, 0, 1, 4_000.0);
        let base = SimConfig {
            duration_s: 3_000.0,
            warmup_s: 100.0,
            seed: 13,
            ..SimConfig::default()
        };
        let poisson = simulate(&g, &r, &tm, &base).unwrap();
        let onoff_cfg = SimConfig {
            arrivals: ArrivalProcess::OnOff {
                on_mean_s: 2.0,
                off_mean_s: 2.0,
            },
            ..base
        };
        let onoff = simulate(&g, &r, &tm, &onoff_cfg).unwrap();
        let dp = poisson.flow(NodeId(0), NodeId(1)).unwrap();
        let do_ = onoff.flow(NodeId(0), NodeId(1)).unwrap();
        // Average rates comparable (within 15%)...
        let ratio = do_.delivered as f64 / dp.delivered as f64;
        assert!((0.85..1.15).contains(&ratio), "rate ratio {ratio}");
        // ...but bursty arrivals queue more.
        assert!(
            do_.mean_delay_s > dp.mean_delay_s,
            "onoff {} <= poisson {}",
            do_.mean_delay_s,
            dp.mean_delay_s
        );
    }

    #[test]
    fn bimodal_sizes_preserve_mean() {
        let (g, r) = one_link_graph(100_000.0); // fast link: ~pure service
        let tm = single_flow_tm(2, 0, 1, 1_000.0);
        let cfg = SimConfig {
            duration_s: 3_000.0,
            warmup_s: 10.0,
            size_dist: SizeDistribution::Bimodal {
                p_small: 0.7,
                small_frac: 0.3,
            },
            seed: 21,
            ..SimConfig::default()
        };
        let res = simulate(&g, &r, &tm, &cfg).unwrap();
        let f = res.flow(NodeId(0), NodeId(1)).unwrap();
        // At ~1% load delay ~= mean service time = mean_size / cap = 0.01 s.
        assert!(
            (f.mean_delay_s - 0.01).abs() < 0.002,
            "mean {}",
            f.mean_delay_s
        );
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let (g, r) = one_link_graph(10_000.0);
        let tm = single_flow_tm(2, 0, 1, 100.0);
        for cfg in [
            SimConfig {
                duration_s: 0.0,
                ..SimConfig::default()
            },
            SimConfig {
                warmup_s: 500.0,
                ..SimConfig::default()
            },
            SimConfig {
                mean_pkt_size_bits: -1.0,
                ..SimConfig::default()
            },
            SimConfig {
                buffer_pkts: Some(0),
                ..SimConfig::default()
            },
            SimConfig {
                size_dist: SizeDistribution::Bimodal {
                    p_small: 1.5,
                    small_frac: 0.3,
                },
                ..SimConfig::default()
            },
            SimConfig {
                arrivals: ArrivalProcess::OnOff {
                    on_mean_s: 0.0,
                    off_mean_s: 1.0,
                },
                ..SimConfig::default()
            },
        ] {
            assert!(matches!(
                simulate(&g, &r, &tm, &cfg),
                Err(SimError::BadConfig(_))
            ));
        }
    }

    #[test]
    fn tm_size_mismatch_rejected() {
        let (g, r) = one_link_graph(10_000.0);
        let tm = TrafficMatrix::zeros(5);
        assert!(matches!(
            simulate(&g, &r, &tm, &SimConfig::default()),
            Err(SimError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn multihop_delay_exceeds_single_hop() {
        let g = nsfnet();
        let r = shortest_path_routing(&g).unwrap();
        // Two flows with equal demand: one 1-hop, one multi-hop.
        let mut tm = TrafficMatrix::zeros(14);
        tm.set_demand(NodeId(0), NodeId(1), 3_000.0); // adjacent
                                                      // find a pair with >= 3 hops
        let far = g
            .node_pairs()
            .find(|(s, d)| r.hops(*s, *d) >= 3 && *s == NodeId(0))
            .expect("NSFNET has distant pairs");
        tm.set_demand(far.0, far.1, 3_000.0);
        let cfg = SimConfig {
            duration_s: 500.0,
            warmup_s: 50.0,
            seed: 17,
            ..SimConfig::default()
        };
        let res = simulate(&g, &r, &tm, &cfg).unwrap();
        let near = res.flow(NodeId(0), NodeId(1)).unwrap();
        let farf = res.flow(far.0, far.1).unwrap();
        assert!(farf.mean_delay_s > near.mean_delay_s);
    }
}
