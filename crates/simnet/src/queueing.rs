//! Analytic queueing-theory network model (M/M/1 per link).
//!
//! This is the "Queuing Theory" baseline the paper's introduction contrasts
//! against (reference 8 in the paper): each link is modeled as an independent M/M/1
//! queue, path delay is the sum of per-link sojourn times plus propagation,
//! and jitter (delay variance) is the sum of per-link sojourn variances
//! (independence approximation).
//!
//! It doubles as a correctness oracle: on a single link the discrete-event
//! simulator must converge to these closed forms, which is asserted by
//! property tests in the simulator module.

use routenet_netgraph::traffic::link_loads;
use routenet_netgraph::{Graph, LinkId, RoutingScheme, TrafficMatrix};
use serde::{Deserialize, Serialize};

/// Closed-form M/M/1 per-link results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mm1Link {
    /// Offered load in packets/s.
    pub lambda_pps: f64,
    /// Service rate in packets/s (`capacity / mean_pkt_size`).
    pub mu_pps: f64,
    /// Utilization `lambda / mu`.
    pub rho: f64,
    /// Mean sojourn (wait + service) time, seconds. `INFINITY` if `rho >= 1`.
    pub mean_sojourn_s: f64,
    /// Sojourn-time variance, s². `INFINITY` if `rho >= 1`.
    pub var_sojourn_s2: f64,
}

impl Mm1Link {
    /// Closed-form M/M/1 sojourn statistics.
    ///
    /// For a stable M/M/1 queue the sojourn time is exponential with rate
    /// `mu - lambda`, hence mean `1/(mu-lambda)` and variance
    /// `1/(mu-lambda)^2`. An unstable queue (`rho >= 1`) yields infinities.
    pub fn new(lambda_pps: f64, mu_pps: f64) -> Self {
        assert!(mu_pps > 0.0 && mu_pps.is_finite());
        assert!(lambda_pps >= 0.0 && lambda_pps.is_finite());
        let rho = lambda_pps / mu_pps;
        let (mean, var) = if rho < 1.0 {
            let gap = mu_pps - lambda_pps;
            debug_assert!(gap > 0.0, "rho < 1 implies mu > lambda");
            (1.0 / gap, 1.0 / (gap * gap))
        } else {
            (f64::INFINITY, f64::INFINITY)
        };
        Mm1Link {
            lambda_pps,
            mu_pps,
            rho,
            mean_sojourn_s: mean,
            var_sojourn_s2: var,
        }
    }

    /// Mean number of packets in the system (`rho / (1 - rho)`).
    pub fn mean_in_system(&self) -> f64 {
        if self.rho < 1.0 {
            let headroom = 1.0 - self.rho;
            debug_assert!(headroom > 0.0);
            self.rho / headroom
        } else {
            f64::INFINITY
        }
    }
}

/// Per-pair analytic prediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathPrediction {
    /// Mean end-to-end delay, seconds.
    pub mean_delay_s: f64,
    /// Delay variance ("jitter"), s².
    pub jitter_s2: f64,
}

/// Whole-network analytic model.
#[derive(Debug, Clone)]
pub struct Mm1Network {
    links: Vec<Mm1Link>,
    prop_delay_s: Vec<f64>,
}

impl Mm1Network {
    /// Build per-link M/M/1 models from the offered traffic.
    ///
    /// `mean_pkt_size_bits` converts bit rates to packet rates; it must match
    /// the simulator's packet-size mean for the baseline to be comparable.
    pub fn build(
        g: &Graph,
        routing: &RoutingScheme,
        tm: &TrafficMatrix,
        mean_pkt_size_bits: f64,
    ) -> Self {
        assert!(mean_pkt_size_bits > 0.0);
        let loads = link_loads(g, routing, tm);
        let links = loads
            .iter()
            .enumerate()
            .map(|(i, &bps)| {
                let link = g.adj_link(LinkId(i));
                Mm1Link::new(
                    bps / mean_pkt_size_bits,
                    link.capacity_bps / mean_pkt_size_bits,
                )
            })
            .collect();
        let prop_delay_s = g.links().map(|(_, l)| l.prop_delay_s).collect();
        Mm1Network {
            links,
            prop_delay_s,
        }
    }

    /// Per-link models.
    pub fn links(&self) -> &[Mm1Link] {
        &self.links
    }

    /// Predict mean delay and jitter along a link path (independence
    /// approximation: sums of per-link means/variances, plus propagation).
    pub fn predict_path(&self, path: &[LinkId]) -> PathPrediction {
        let mut mean = 0.0;
        let mut var = 0.0;
        for &l in path {
            mean += self.links[l.0].mean_sojourn_s + self.prop_delay_s[l.0];
            var += self.links[l.0].var_sojourn_s2;
        }
        PathPrediction {
            mean_delay_s: mean,
            jitter_s2: var,
        }
    }

    /// Predictions for every routed pair, in canonical order.
    pub fn predict_all(&self, routing: &RoutingScheme) -> Vec<PathPrediction> {
        routing
            .pairs()
            .map(|(_, _, path)| self.predict_path(path))
            .collect()
    }

    /// True if every link is stable (`rho < 1`).
    pub fn is_stable(&self) -> bool {
        self.links.iter().all(|l| l.rho < 1.0)
    }
}

/// Squared coefficient of variation (`Var[S] / E[S]²`) of a packet-size
/// distribution — the only service-distribution statistic the M/G/1 mean
/// formulas need.
pub fn service_cv2(dist: &crate::sim::SizeDistribution) -> f64 {
    match *dist {
        crate::sim::SizeDistribution::Exponential => 1.0,
        crate::sim::SizeDistribution::Deterministic => 0.0,
        crate::sim::SizeDistribution::Bimodal {
            p_small,
            small_frac,
        } => {
            // sizes: s1 = small_frac (w.p. p), s2 = (1 - p*s1)/(1-p), mean 1.
            let s1 = small_frac;
            let p_large = 1.0 - p_small;
            debug_assert!(p_large > 0.0, "bimodal p_small must stay below 1");
            let s2 = (1.0 - p_small * s1) / p_large;
            let e2 = p_small * s1 * s1 + p_large * s2 * s2;
            e2 - 1.0
        }
    }
}

/// Closed-form M/G/1 per-link results via the Pollaczek–Khinchine formula.
///
/// Mean wait `W_q = rho (1 + cv²) / (2 (mu - lambda))`; sojourn adds the
/// mean service time. With `cv² = 1` this reduces to M/M/1, with `cv² = 0`
/// to M/D/1 — the distribution our default datasets use, which makes this
/// the strongest *analytic* baseline available (it still misses tandem
/// correlation along multi-hop paths).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mg1Link {
    /// Offered load in packets/s.
    pub lambda_pps: f64,
    /// Service rate in packets/s.
    pub mu_pps: f64,
    /// Utilization.
    pub rho: f64,
    /// Squared coefficient of variation of service times.
    pub cv2: f64,
    /// Mean sojourn time, seconds (`INFINITY` if unstable).
    pub mean_sojourn_s: f64,
    /// Sojourn-time variance, s² (`INFINITY` if unstable).
    pub var_sojourn_s2: f64,
}

impl Mg1Link {
    /// Build from rates and the service-time squared CV.
    ///
    /// The variance uses the M/G/1 waiting-time transform moments with the
    /// third service moment approximated from a gamma-matched distribution
    /// (exact for exponential and deterministic services).
    pub fn new(lambda_pps: f64, mu_pps: f64, cv2: f64) -> Self {
        assert!(mu_pps > 0.0 && mu_pps.is_finite());
        assert!(lambda_pps >= 0.0 && lambda_pps.is_finite());
        assert!(cv2 >= 0.0 && cv2.is_finite());
        let rho = lambda_pps / mu_pps;
        if rho >= 1.0 {
            return Mg1Link {
                lambda_pps,
                mu_pps,
                rho,
                cv2,
                mean_sojourn_s: f64::INFINITY,
                var_sojourn_s2: f64::INFINITY,
            };
        }
        let es = 1.0 / mu_pps; // E[S]
        let es2 = (1.0 + cv2) * es * es; // E[S^2]
                                         // Gamma-matched third moment: E[S^3] = E[S]^3 (1+cv2)(1+2cv2).
        let es3 = es * es * es * (1.0 + cv2) * (1.0 + 2.0 * cv2);
        let wq = lambda_pps * es2 / (2.0 * (1.0 - rho)); // P-K mean wait
        let mean = wq + es;
        // Waiting-time second moment (Takács): E[Wq^2] = 2 Wq^2 + lambda E[S^3]/(3(1-rho)).
        let ewq2 = 2.0 * wq * wq + lambda_pps * es3 / (3.0 * (1.0 - rho));
        let var_wq = ewq2 - wq * wq;
        let var_s = es2 - es * es;
        // Wait and service of the same packet are independent in M/G/1 FIFO.
        let var = var_wq + var_s;
        Mg1Link {
            lambda_pps,
            mu_pps,
            rho,
            cv2,
            mean_sojourn_s: mean,
            var_sojourn_s2: var,
        }
    }
}

/// Whole-network M/G/1 model (independence approximation across links).
#[derive(Debug, Clone)]
pub struct Mg1Network {
    links: Vec<Mg1Link>,
    prop_delay_s: Vec<f64>,
}

impl Mg1Network {
    /// Build per-link M/G/1 models from the offered traffic and the
    /// packet-size distribution actually used by the simulator.
    pub fn build(
        g: &Graph,
        routing: &RoutingScheme,
        tm: &TrafficMatrix,
        mean_pkt_size_bits: f64,
        size_dist: &crate::sim::SizeDistribution,
    ) -> Self {
        assert!(mean_pkt_size_bits > 0.0);
        let cv2 = service_cv2(size_dist);
        let loads = link_loads(g, routing, tm);
        let links = loads
            .iter()
            .enumerate()
            .map(|(i, &bps)| {
                let link = g.adj_link(LinkId(i));
                Mg1Link::new(
                    bps / mean_pkt_size_bits,
                    link.capacity_bps / mean_pkt_size_bits,
                    cv2,
                )
            })
            .collect();
        let prop_delay_s = g.links().map(|(_, l)| l.prop_delay_s).collect();
        Mg1Network {
            links,
            prop_delay_s,
        }
    }

    /// Per-link models.
    pub fn links(&self) -> &[Mg1Link] {
        &self.links
    }

    /// Predict mean delay and jitter along a link path.
    pub fn predict_path(&self, path: &[LinkId]) -> PathPrediction {
        let mut mean = 0.0;
        let mut var = 0.0;
        for &l in path {
            mean += self.links[l.0].mean_sojourn_s + self.prop_delay_s[l.0];
            var += self.links[l.0].var_sojourn_s2;
        }
        PathPrediction {
            mean_delay_s: mean,
            jitter_s2: var,
        }
    }

    /// Predictions for every routed pair, in canonical order.
    pub fn predict_all(&self, routing: &RoutingScheme) -> Vec<PathPrediction> {
        routing
            .pairs()
            .map(|(_, _, path)| self.predict_path(path))
            .collect()
    }
}

/// Closed-form M/M/1/K results: a single-server queue with room for `K`
/// packets *including* the one in service; arrivals finding the system full
/// are dropped (tail drop), matching the simulator's finite-buffer mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mm1kLink {
    /// Offered load in packets/s.
    pub lambda_pps: f64,
    /// Service rate in packets/s.
    pub mu_pps: f64,
    /// System capacity in packets (including in service).
    pub k: usize,
    /// Utilization `lambda / mu` (may exceed 1; the queue stays stable).
    pub rho: f64,
    /// Blocking (drop) probability.
    pub block_prob: f64,
    /// Mean sojourn of *accepted* packets, seconds.
    pub mean_sojourn_s: f64,
}

impl Mm1kLink {
    /// Closed forms: `P_K = (1-ρ)ρ^K / (1-ρ^{K+1})` (or `1/(K+1)` at ρ=1),
    /// `L = ρ/(1-ρ) - (K+1)ρ^{K+1}/(1-ρ^{K+1})`, `W = L / (λ (1-P_K))`.
    pub fn new(lambda_pps: f64, mu_pps: f64, k: usize) -> Self {
        assert!(mu_pps > 0.0 && mu_pps.is_finite());
        assert!(lambda_pps >= 0.0 && lambda_pps.is_finite());
        assert!(k >= 1, "system must hold at least the packet in service");
        let rho = lambda_pps / mu_pps;
        // lint: allow(float-eq, reason = "idle-link special case is an exact zero arrival rate")
        let (block_prob, mean_l) = if lambda_pps == 0.0 {
            (0.0, 0.0)
        } else if (rho - 1.0).abs() < 1e-12 {
            (1.0 / (k as f64 + 1.0), k as f64 / 2.0)
        } else {
            // lint: allow(cast, reason = "queue capacities are small integers, far below i32::MAX")
            let rk = rho.powi(k as i32);
            let rk1 = rk * rho;
            // rho is positive and bounded away from 1 by the branch above, so
            // both geometric denominators are nonzero.
            let denom_pk = 1.0 - rk1;
            let denom_l = 1.0 - rho;
            debug_assert!(denom_pk.abs() > 0.0 && denom_l.abs() > 0.0);
            let pb = (1.0 - rho) * rk / denom_pk;
            let l = rho / denom_l - (k as f64 + 1.0) * rk1 / denom_pk;
            (pb, l)
        };
        let accepted = lambda_pps * (1.0 - block_prob);
        let mean_sojourn_s = if accepted > 0.0 {
            mean_l / accepted
        } else {
            1.0 / mu_pps
        };
        Mm1kLink {
            lambda_pps,
            mu_pps,
            k,
            rho,
            block_prob,
            mean_sojourn_s,
        }
    }
}

/// Whole-network M/M/1/K model: per-link blocking with the independence
/// approximation; a path delivers only if every hop accepts, so the path
/// drop probability is `1 - prod(1 - P_K)`.
///
/// (Approximation caveat, deliberately retained: thinning by upstream drops
/// is ignored, so downstream loads are slightly overestimated — one of the
/// systematic analytic biases a learned model corrects.)
#[derive(Debug, Clone)]
pub struct Mm1kNetwork {
    links: Vec<Mm1kLink>,
    prop_delay_s: Vec<f64>,
}

impl Mm1kNetwork {
    /// Build per-link models with buffer `k` packets on every link.
    pub fn build(
        g: &Graph,
        routing: &RoutingScheme,
        tm: &TrafficMatrix,
        mean_pkt_size_bits: f64,
        k: usize,
    ) -> Self {
        assert!(mean_pkt_size_bits > 0.0);
        let loads = link_loads(g, routing, tm);
        let links = loads
            .iter()
            .enumerate()
            .map(|(i, &bps)| {
                let link = g.adj_link(LinkId(i));
                Mm1kLink::new(
                    bps / mean_pkt_size_bits,
                    link.capacity_bps / mean_pkt_size_bits,
                    k,
                )
            })
            .collect();
        let prop_delay_s = g.links().map(|(_, l)| l.prop_delay_s).collect();
        Mm1kNetwork {
            links,
            prop_delay_s,
        }
    }

    /// Per-link models.
    pub fn links(&self) -> &[Mm1kLink] {
        &self.links
    }

    /// `(mean_delay_s_of_delivered, drop_probability)` along a link path.
    pub fn predict_path(&self, path: &[LinkId]) -> (f64, f64) {
        let mut mean = 0.0;
        let mut pass = 1.0;
        for &l in path {
            mean += self.links[l.0].mean_sojourn_s + self.prop_delay_s[l.0];
            pass *= 1.0 - self.links[l.0].block_prob;
        }
        (mean, 1.0 - pass)
    }

    /// Predictions for every routed pair, in canonical order.
    pub fn predict_all(&self, routing: &RoutingScheme) -> Vec<(f64, f64)> {
        routing
            .pairs()
            .map(|(_, _, path)| self.predict_path(path))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routenet_netgraph::routing::shortest_path_routing;
    use routenet_netgraph::topology::nsfnet;
    use routenet_netgraph::{NodeId, TrafficMatrix};

    #[test]
    fn mm1_closed_forms() {
        let q = Mm1Link::new(5.0, 10.0);
        assert!((q.rho - 0.5).abs() < 1e-12);
        assert!((q.mean_sojourn_s - 0.2).abs() < 1e-12);
        assert!((q.var_sojourn_s2 - 0.04).abs() < 1e-12);
        assert!((q.mean_in_system() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mm1_zero_load() {
        let q = Mm1Link::new(0.0, 10.0);
        assert_eq!(q.rho, 0.0);
        // Sojourn = pure service time 1/mu.
        assert!((q.mean_sojourn_s - 0.1).abs() < 1e-12);
        assert_eq!(q.mean_in_system(), 0.0);
    }

    #[test]
    fn mm1_unstable_is_infinite() {
        let q = Mm1Link::new(12.0, 10.0);
        assert!(q.mean_sojourn_s.is_infinite());
        assert!(q.var_sojourn_s2.is_infinite());
        assert!(q.mean_in_system().is_infinite());
    }

    #[test]
    fn network_predicts_sum_over_path() {
        let g = nsfnet();
        let r = shortest_path_routing(&g).unwrap();
        let mut tm = TrafficMatrix::zeros(g.n_nodes());
        // single flow 0 -> some far node
        tm.set_demand(NodeId(0), NodeId(12), 2_000.0);
        let net = Mm1Network::build(&g, &r, &tm, 1_000.0);
        assert!(net.is_stable());
        let path = r.path(NodeId(0), NodeId(12));
        let pred = net.predict_path(path);
        // Loaded links on the path: lambda 2 pps; others idle.
        // capacity default 10_000 bps / 1000 bits = 10 pps
        let hop = path.len() as f64;
        let expected_mean = hop / (10.0 - 2.0);
        assert!((pred.mean_delay_s - expected_mean).abs() < 1e-12);
        let expected_var = hop / ((10.0 - 2.0) * (10.0 - 2.0));
        assert!((pred.jitter_s2 - expected_var).abs() < 1e-12);
    }

    #[test]
    fn predict_all_matches_pair_order() {
        let g = nsfnet();
        let r = shortest_path_routing(&g).unwrap();
        let mut tm = TrafficMatrix::zeros(g.n_nodes());
        tm.set_demand(NodeId(1), NodeId(2), 1_000.0);
        let net = Mm1Network::build(&g, &r, &tm, 1_000.0);
        let all = net.predict_all(&r);
        assert_eq!(all.len(), r.n_pairs());
        let idx = r
            .pairs()
            .position(|(s, d, _)| s == NodeId(1) && d == NodeId(2))
            .unwrap();
        let direct = net.predict_path(r.path(NodeId(1), NodeId(2)));
        assert_eq!(all[idx], direct);
    }

    #[test]
    fn mm1k_blocking_closed_form() {
        // rho = 0.5, K = 2: P = (1-r)r^2/(1-r^3) = 0.125/0.875 = 1/7
        let q = Mm1kLink::new(5.0, 10.0, 2);
        assert!((q.block_prob - 1.0 / 7.0).abs() < 1e-12);
        // K -> inf recovers M/M/1: blocking -> 0, sojourn -> 1/(mu-lambda)
        let q = Mm1kLink::new(5.0, 10.0, 200);
        assert!(q.block_prob < 1e-10);
        assert!((q.mean_sojourn_s - 0.2).abs() < 1e-6);
    }

    #[test]
    fn mm1k_overload_is_finite() {
        // Unlike M/M/1, the finite queue is stable past rho = 1.
        let q = Mm1kLink::new(20.0, 10.0, 5);
        assert!(q.block_prob > 0.5 && q.block_prob < 1.0);
        assert!(q.mean_sojourn_s.is_finite() && q.mean_sojourn_s > 0.0);
        // At exactly rho = 1: P = 1/(K+1).
        let q = Mm1kLink::new(10.0, 10.0, 4);
        assert!((q.block_prob - 0.2).abs() < 1e-9);
    }

    #[test]
    fn mm1k_zero_load() {
        let q = Mm1kLink::new(0.0, 10.0, 3);
        assert_eq!(q.block_prob, 0.0);
        assert!((q.mean_sojourn_s - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mm1k_network_path_drop_combines_links() {
        let g = nsfnet();
        let r = shortest_path_routing(&g).unwrap();
        let mut tm = TrafficMatrix::zeros(g.n_nodes());
        tm.set_demand(NodeId(0), NodeId(12), 9_000.0); // rho 0.9 on path links
        let net = Mm1kNetwork::build(&g, &r, &tm, 1_000.0, 3);
        let path = r.path(NodeId(0), NodeId(12));
        let (_, drop) = net.predict_path(path);
        let per_link = Mm1kLink::new(9.0, 10.0, 3).block_prob;
        let expected = 1.0 - (1.0 - per_link).powi(path.len() as i32);
        assert!((drop - expected).abs() < 1e-12);
        assert_eq!(net.predict_all(&r).len(), r.n_pairs());
    }

    #[test]
    fn mg1_reduces_to_mm1_for_cv2_one() {
        let mm1 = Mm1Link::new(5.0, 10.0);
        let mg1 = Mg1Link::new(5.0, 10.0, 1.0);
        assert!((mg1.mean_sojourn_s - mm1.mean_sojourn_s).abs() < 1e-12);
        // Exponential services: sojourn is exponential, variance 1/(mu-l)^2.
        assert!((mg1.var_sojourn_s2 - mm1.var_sojourn_s2).abs() < 1e-12);
    }

    #[test]
    fn md1_wait_is_half_of_mm1_wait() {
        // Classic result: deterministic service halves the mean queue wait.
        let lambda = 8.0;
        let mu = 10.0;
        let mm1 = Mm1Link::new(lambda, mu);
        let md1 = Mg1Link::new(lambda, mu, 0.0);
        let wq_mm1 = mm1.mean_sojourn_s - 1.0 / mu;
        let wq_md1 = md1.mean_sojourn_s - 1.0 / mu;
        assert!((wq_md1 - wq_mm1 / 2.0).abs() < 1e-12);
        assert!(md1.mean_sojourn_s < mm1.mean_sojourn_s);
    }

    #[test]
    fn mg1_unstable_is_infinite() {
        let q = Mg1Link::new(11.0, 10.0, 0.5);
        assert!(q.mean_sojourn_s.is_infinite());
        assert!(q.var_sojourn_s2.is_infinite());
    }

    #[test]
    fn service_cv2_values() {
        use crate::sim::SizeDistribution;
        assert_eq!(service_cv2(&SizeDistribution::Exponential), 1.0);
        assert_eq!(service_cv2(&SizeDistribution::Deterministic), 0.0);
        let cv2 = service_cv2(&SizeDistribution::Bimodal {
            p_small: 0.7,
            small_frac: 0.3,
        });
        assert!(cv2 > 0.0 && cv2.is_finite());
        // Degenerate bimodal where both sizes equal the mean => cv2 ~ 0.
        let cv2 = service_cv2(&SizeDistribution::Bimodal {
            p_small: 0.5,
            small_frac: 1.0,
        });
        assert!(cv2.abs() < 1e-12);
    }

    #[test]
    fn mg1_network_matches_per_link_math() {
        let g = nsfnet();
        let r = shortest_path_routing(&g).unwrap();
        let mut tm = TrafficMatrix::zeros(g.n_nodes());
        tm.set_demand(NodeId(0), NodeId(12), 2_000.0);
        let net = Mg1Network::build(
            &g,
            &r,
            &tm,
            1_000.0,
            &crate::sim::SizeDistribution::Deterministic,
        );
        let path = r.path(NodeId(0), NodeId(12));
        let pred = net.predict_path(path);
        // Each loaded link: lambda 2, mu 10, cv2 0 => W = 0.1 + 2*0.01/(2*0.8).
        let per_link = 0.1 + 2.0 * 0.01 / (2.0 * 0.8);
        assert!((pred.mean_delay_s - per_link * path.len() as f64).abs() < 1e-12);
        assert_eq!(net.predict_all(&r).len(), r.n_pairs());
    }

    #[test]
    fn propagation_delay_added_to_mean_not_jitter() {
        let mut g = routenet_netgraph::Graph::new("pd", 2);
        g.add_duplex(NodeId(0), NodeId(1), 10_000.0, 0.5).unwrap();
        let r = shortest_path_routing(&g).unwrap();
        let mut tm = TrafficMatrix::zeros(2);
        tm.set_demand(NodeId(0), NodeId(1), 1_000.0);
        let net = Mm1Network::build(&g, &r, &tm, 1_000.0);
        let pred = net.predict_path(r.path(NodeId(0), NodeId(1)));
        // mu=10, lambda=1 -> sojourn 1/9; plus 0.5s propagation
        assert!((pred.mean_delay_s - (1.0 / 9.0 + 0.5)).abs() < 1e-12);
        assert!((pred.jitter_s2 - 1.0 / 81.0).abs() < 1e-12);
    }
}
