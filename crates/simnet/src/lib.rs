//! # routenet-simnet
//!
//! Packet-level discrete-event network simulator and analytic queueing
//! models. This crate plays the role of the paper's custom OMNeT++
//! simulator: given a topology, a routing scheme and a traffic matrix it
//! produces ground-truth per-flow mean delay and jitter, which the dataset
//! pipeline turns into RouteNet training labels.
//!
//! - [`sim::simulate`] — the event-driven simulator (Poisson / deterministic
//!   / ON-OFF arrivals; exponential / deterministic / bimodal packet sizes;
//!   FIFO queues with optional finite buffers and tail drop).
//! - [`queueing::Mm1Network`] — the closed-form M/M/1 baseline the paper's
//!   introduction argues against, also used as a simulator-correctness
//!   oracle.
//! - [`stats`] — streaming Welford accumulators and result types.
//!
//! ## Example: one M/M/1 link
//!
//! ```
//! use routenet_netgraph::{Graph, NodeId, TrafficMatrix};
//! use routenet_netgraph::routing::shortest_path_routing;
//! use routenet_simnet::sim::{simulate, SimConfig};
//!
//! let mut g = Graph::new("one-link", 2);
//! g.add_duplex(NodeId(0), NodeId(1), 10_000.0, 0.0).unwrap();
//! let routing = shortest_path_routing(&g).unwrap();
//! let mut tm = TrafficMatrix::zeros(2);
//! tm.set_demand(NodeId(0), NodeId(1), 5_000.0); // rho = 0.5
//! let cfg = SimConfig { duration_s: 300.0, warmup_s: 30.0, ..SimConfig::default() };
//! let res = simulate(&g, &routing, &tm, &cfg).unwrap();
//! let flow = res.flow(NodeId(0), NodeId(1)).unwrap();
//! // M/M/1 predicts E[T] = 1/(mu - lambda) = 0.2 s.
//! assert!((flow.mean_delay_s - 0.2).abs() / 0.2 < 0.2);
//! ```

#![warn(missing_docs)]

pub mod queueing;
pub mod sim;
pub mod stats;

pub use queueing::{Mg1Link, Mg1Network, Mm1Link, Mm1Network, PathPrediction};
pub use sim::{simulate, ArrivalProcess, SimConfig, SimError, SizeDistribution};
pub use stats::{DelayAccumulator, FlowStats, SimResult};
