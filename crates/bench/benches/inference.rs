//! Criterion benches for the E5 cost experiment: RouteNet inference vs.
//! packet-level simulation vs. analytic M/M/1, per topology size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use routenet_core::prelude::*;
use routenet_dataset::gen::{generate_sample, GenConfig, TopologySpec};

fn scenarios() -> Vec<(String, Sample)> {
    [
        (TopologySpec::Nsfnet, "nsfnet14"),
        (TopologySpec::Geant2, "geant2_24"),
        (
            TopologySpec::Synthetic {
                n: 50,
                topo_seed: 2019,
            },
            "synth50",
        ),
    ]
    .into_iter()
    .map(|(spec, name)| {
        let mut cfg = GenConfig::new(spec, 1, 3);
        // Short labeling run: the bench re-simulates separately.
        cfg.sim.duration_s = 50.0;
        cfg.sim.warmup_s = 5.0;
        (name.to_string(), generate_sample(&cfg, 0))
    })
    .collect()
}

fn model() -> RouteNet {
    let mut m = RouteNet::new(RouteNetConfig::default());
    m.set_normalizer(Normalizer {
        capacity_scale: 40_000.0,
        traffic_scale: 500.0,
        ..Normalizer::default()
    });
    m
}

fn bench_inference(c: &mut Criterion) {
    let model = model();
    let mut group = c.benchmark_group("routenet_inference");
    group.sample_size(20);
    for (name, sample) in scenarios() {
        // Pre-compiled: the cost of the forward pass alone.
        let compiled = model.compile(&sample.scenario);
        group.bench_with_input(BenchmarkId::new("forward", &name), &compiled, |b, comp| {
            b.iter(|| model.predict_compiled(comp));
        });
        // End-to-end: compile + forward (what a fresh scenario costs).
        group.bench_with_input(BenchmarkId::new("end_to_end", &name), &sample, |b, s| {
            b.iter(|| model.predict_scenario(&s.scenario));
        });
    }
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet_simulation");
    group.sample_size(10);
    for (name, sample) in scenarios() {
        let cfg = routenet_simnet::sim::SimConfig {
            duration_s: 100.0,
            warmup_s: 10.0,
            ..routenet_simnet::sim::SimConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("sim100s", &name), &sample, |b, s| {
            b.iter(|| {
                routenet_simnet::sim::simulate(
                    &s.scenario.graph,
                    &s.scenario.routing,
                    &s.scenario.traffic,
                    &cfg,
                )
                .unwrap()
            });
        });
        // Telemetry-enabled variant: the delta vs `sim100s` is the whole
        // cost of observability (one SimRun flush per run; the event loop
        // itself does no telemetry work). Eyeball that it stays in noise.
        let tel_cfg = routenet_simnet::sim::SimConfig {
            telemetry: routenet_obs::Telemetry::in_memory("bench", &name),
            ..cfg.clone()
        };
        group.bench_with_input(
            BenchmarkId::new("sim100s_telemetry", &name),
            &sample,
            |b, s| {
                b.iter(|| {
                    routenet_simnet::sim::simulate(
                        &s.scenario.graph,
                        &s.scenario.routing,
                        &s.scenario.traffic,
                        &tel_cfg,
                    )
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_mm1(c: &mut Criterion) {
    let mm1 = Mm1Baseline::default();
    let mut group = c.benchmark_group("analytic_mm1");
    for (name, sample) in scenarios() {
        group.bench_with_input(BenchmarkId::new("predict", &name), &sample, |b, s| {
            b.iter(|| mm1.predict(&s.scenario));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference, bench_simulation, bench_mm1);
criterion_main!(benches);
