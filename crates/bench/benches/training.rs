//! Criterion benches for training-step cost (forward + backward + Adam) and
//! for the substrate layers (simulator event throughput, autodiff tape).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use routenet_core::prelude::*;
use routenet_core::trainer::{train, TrainConfig};
use routenet_dataset::gen::{generate_sample, GenConfig, TopologySpec};
use routenet_netgraph::routing::shortest_path_routing;
use routenet_netgraph::{Graph, NodeId, TrafficMatrix};

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step");
    group.sample_size(10);
    for (spec, name) in [
        (TopologySpec::Nsfnet, "nsfnet14"),
        (
            TopologySpec::Synthetic {
                n: 50,
                topo_seed: 2019,
            },
            "synth50",
        ),
    ] {
        let mut cfg = GenConfig::new(spec, 1, 3);
        cfg.sim.duration_s = 50.0;
        cfg.sim.warmup_s = 5.0;
        let sample = generate_sample(&cfg, 0);
        group.bench_with_input(
            BenchmarkId::new("one_sample_epoch", name),
            &sample,
            |b, s| {
                // One-epoch training on a single sample: forward + backward +
                // optimizer step, including normalizer fit and compilation.
                b.iter(|| {
                    let mut model = RouteNet::new(RouteNetConfig::default());
                    let cfg = TrainConfig {
                        epochs: 1,
                        batch_size: 1,
                        keep_best: false,
                        ..TrainConfig::default()
                    };
                    train(&mut model, std::slice::from_ref(s), &[], &cfg).expect("train")
                });
            },
        );
    }
    group.finish();
}

/// The batched CSR kernel vs the per-sample path, and its thread scaling.
/// Throughput is samples/s over a fixed nsfnet14 sweep (epochs × samples),
/// so the two groups are directly comparable: the acceptance bar for the
/// batched refactor is read straight off this report.
fn bench_batched_kernel(c: &mut Criterion) {
    let mut cfg = GenConfig::new(TopologySpec::Nsfnet, 1, 3);
    cfg.sim.duration_s = 20.0;
    cfg.sim.warmup_s = 2.0;
    let samples: Vec<_> = (0..8).map(|i| generate_sample(&cfg, i)).collect();
    let epochs = 2usize;
    let work = (samples.len() * epochs) as u64;

    let train_once = |samples: &[routenet_core::Sample], batched: bool, threads: usize| {
        let mut model = RouteNet::new(RouteNetConfig::default());
        let cfg = TrainConfig {
            epochs,
            batch_size: samples.len(),
            threads,
            batched,
            keep_best: false,
            ..TrainConfig::default()
        };
        train(&mut model, samples, &[], &cfg).expect("train")
    };

    let mut group = c.benchmark_group("batched_vs_per_sample");
    group.sample_size(10);
    group.throughput(Throughput::Elements(work));
    for (name, batched) in [("per_sample", false), ("batched", true)] {
        group.bench_with_input(BenchmarkId::new(name, "nsfnet14x8"), &samples, |b, s| {
            b.iter(|| train_once(s, batched, 1));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("batched_thread_sweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(work));
    // Sweeping past the machine's core count measures oversubscription, not
    // scaling: the extra workers time-slice one core and the "speedup" row is
    // noise. Skip those points and say so, instead of reporting them.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    for threads in [1usize, 2, 4, 8] {
        if threads > cores {
            eprintln!(
                "batched_thread_sweep: skipping {threads} threads (only {cores} core(s) available)"
            );
            continue;
        }
        group.bench_with_input(
            BenchmarkId::new("nsfnet14x8_threads", threads),
            &samples,
            |b, s| {
                b.iter(|| train_once(s, true, threads));
            },
        );
    }
    group.finish();
}

fn bench_simulator_throughput(c: &mut Criterion) {
    // One saturated link: measures raw event-processing rate.
    let mut g = Graph::new("1link", 2);
    g.add_duplex(NodeId(0), NodeId(1), 1_000_000.0, 0.0)
        .unwrap();
    let routing = shortest_path_routing(&g).unwrap();
    let mut tm = TrafficMatrix::zeros(2);
    tm.set_demand(NodeId(0), NodeId(1), 800_000.0); // 800 pps at 1000-bit pkts
    let cfg = routenet_simnet::sim::SimConfig {
        duration_s: 50.0,
        warmup_s: 5.0,
        ..routenet_simnet::sim::SimConfig::default()
    };
    let events = routenet_simnet::sim::simulate(&g, &routing, &tm, &cfg)
        .unwrap()
        .events_processed;
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(events));
    group.sample_size(10);
    group.bench_function("event_throughput_50s_800pps", |b| {
        b.iter(|| routenet_simnet::sim::simulate(&g, &routing, &tm, &cfg).unwrap());
    });
    group.finish();
}

fn bench_autodiff(c: &mut Criterion) {
    use routenet_nn::prelude::*;
    // A representative GRU-chain tape: forward + backward.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(4);
    let mut store = ParamStore::new();
    let gru = GruCell::new(&mut store, "g", 16, 16, &mut rng);
    let x = Tensor::full(256, 16, 0.1);
    let target = Tensor::zeros(256, 16);
    c.bench_function("autodiff_gru_chain_8steps_b256", |b| {
        b.iter(|| {
            let mut sess = Session::new(&store);
            let xv = sess.input(x.clone());
            let mut h = sess.input(Tensor::zeros(256, 16));
            for _ in 0..8 {
                h = gru.step(&mut sess, xv, h);
            }
            let loss = sess.tape.mse(h, &target);
            let grads = sess.tape.backward(loss);
            sess.param_grads(&grads)
        });
    });
}

criterion_group!(
    benches,
    bench_train_step,
    bench_batched_kernel,
    bench_simulator_throughput,
    bench_autodiff
);
criterion_main!(benches);
