//! Model tooling: load a checkpoint, predict over a JSONL dataset, emit CSV
//! predictions and accuracy (when labels are present).
//!
//! ```text
//! cargo run -p routenet-bench --release --bin predict -- \
//!     --model model.json --data eval.jsonl [--out predictions.csv]
//! ```

use routenet_bench::{summary_row, Args};
use routenet_core::checkpoint::MAGIC;
use routenet_core::prelude::*;
use routenet_dataset::io::load_jsonl;
use std::fmt::Write as _;

/// Load either a `model.json` export or a `TrainState` checkpoint (detected
/// by its `ROUTENET-CKPT` header); checkpoints yield their best parameters.
fn load_model(path: &str) -> Result<RouteNet, String> {
    let head = std::fs::read_to_string(path).map_err(|e| format!("failed to read: {e}"))?;
    if head.starts_with(MAGIC) {
        let state = TrainState::load(path).map_err(|e| e.to_string())?;
        return state.into_model().map_err(|e| e.to_string());
    }
    RouteNet::from_json(&head).map_err(|e| format!("failed to parse: {e}"))
}

fn main() {
    let args = Args::from_env();
    let (Some(model_path), Some(data_path)) = (args.get("model"), args.get("data")) else {
        eprintln!(
            "usage: predict --model <model.json|train-state.ckpt> --data <jsonl> [--out <csv>]"
        );
        std::process::exit(2);
    };
    let model = load_model(model_path).unwrap_or_else(|e| {
        eprintln!("{model_path}: {e}");
        std::process::exit(1);
    });
    let data = load_jsonl(data_path).unwrap_or_else(|e| {
        eprintln!("failed to load {data_path}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "model: {} params, T={}, predicting over {} samples",
        model.n_parameters(),
        model.config().t_iterations,
        data.len()
    );

    let mut csv = String::from(
        "sample,topology,src,dst,predicted_delay_s,predicted_jitter_s2,true_delay_s,true_jitter_s2\n",
    );
    for (i, s) in data.iter().enumerate() {
        let preds = model.predict_scenario(&s.scenario);
        for (((src, dst), p), t) in s.scenario.pairs().iter().zip(&preds).zip(&s.targets) {
            writeln!(
                csv,
                "{i},{},{},{},{:.6},{:.8},{:.6},{:.8}",
                s.topology, src.0, dst.0, p.delay_s, p.jitter_s2, t.delay_s, t.jitter_s2
            )
            .unwrap();
        }
    }
    match args.get("out") {
        Some(out) => {
            std::fs::write(out, &csv).unwrap_or_else(|e| {
                eprintln!("failed to write {out}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {out}");
        }
        None => print!("{csv}"),
    }

    let ev = collect_predictions(&model, &data);
    if !ev.is_empty() {
        eprintln!("{}", summary_row("delay", &ev.delay_summary()));
        if let Some(j) = ev.jitter_summary() {
            eprintln!("{}", summary_row("jitter", &Some(j)));
        }
    }
}
