//! **Table 1** (the §2.1 evaluation protocol as a table) — per-topology
//! generalization summary: RouteNet vs. the M/M/1 analytic baseline vs. the
//! fixed-input FNN baseline, for delay and jitter.
//!
//! The FNN can only be trained/applied per fixed topology; on topologies it
//! was not built for the table reports `n/a` — the paper's core argument for
//! graph-structured models.
//!
//! ```text
//! cargo run -p routenet-bench --release --bin table1 -- \
//!     [--scale 1.0] [--epochs 30] [--seed 1]
//! ```

use routenet_bench::{run_experiment, scaled_protocol, Args};
use routenet_core::prelude::*;

fn main() {
    let args = Args::from_env();
    let scale = args.get_or("scale", 1.0f64);
    let seed = args.get_or("seed", 1u64);
    let protocol = scaled_protocol(scale, seed);
    let train_cfg = TrainConfig {
        epochs: args.get_or("epochs", 30usize),
        verbose: true,
        ..TrainConfig::default()
    };
    let exp = run_experiment(&protocol, RouteNetConfig::default(), &train_cfg, true)
        .unwrap_or_else(|e| panic!("training failed: {e}"));

    // FNN baseline: train one network per *training* topology on the same
    // training samples RouteNet saw (it cannot share across topologies).
    eprintln!("# training FNN baselines (per fixed topology)...");
    let nsf_train: Vec<Sample> = exp
        .data
        .train
        .iter()
        .filter(|s| s.topology == "NSFNET")
        .cloned()
        .collect();
    let fnn_nsf = FnnBaseline::train(&nsf_train, &FnnConfig::default());
    let mm1 = Mm1Baseline::default();
    let mg1 = Mg1Baseline::default(); // knows the true (deterministic) size distribution

    println!(
        "# table1: per-topology delay/jitter accuracy (median / p95 relative error, Pearson r)"
    );
    println!(
        "{:<20} {:<10} {:>8} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "eval set", "predictor", "n", "medRE", "p95RE", "r", "jit medRE", "jit r"
    );
    let sets: [(&str, &Vec<Sample>); 3] = [
        ("NSFNET-14 (seen)", &exp.data.eval_nsfnet),
        ("Synth-50 (seen)", &exp.data.eval_synth),
        ("Geant2-24 (UNSEEN)", &exp.data.eval_geant2),
    ];
    for (name, set) in sets {
        let mut rows: Vec<(&str, Option<PairedEval>)> = vec![
            ("RouteNet", Some(collect_predictions(&exp.model, set))),
            ("M/M/1", Some(collect_predictions(&mm1, set))),
            ("M/G/1", Some(collect_predictions(&mg1, set))),
        ];
        // FNN applies only to the topology it was trained on.
        if set.iter().all(|s| fnn_nsf.supports(&s.scenario)) {
            rows.push(("FNN", Some(collect_predictions(&fnn_nsf, set))));
        } else {
            rows.push(("FNN", None));
        }
        for (pname, ev) in rows {
            match ev {
                Some(ev) => {
                    let d = ev.delay_summary().expect("evaluation sets are non-empty");
                    let (jm, jr) = match ev.jitter_summary() {
                        Some(j) => (format!("{:.3}", j.median_re), format!("{:.3}", j.pearson_r)),
                        None => ("n/a".into(), "n/a".into()),
                    };
                    println!(
                        "{:<20} {:<10} {:>8} {:>10.3} {:>10.3} {:>8.3} {:>12} {:>12}",
                        name, pname, d.n, d.median_re, d.p95_re, d.pearson_r, jm, jr
                    );
                }
                None => {
                    println!(
                        "{:<20} {:<10} {:>8} {:>10} {:>10} {:>8} {:>12} {:>12}",
                        name, pname, "-", "n/a*", "n/a*", "n/a*", "n/a*", "n/a*"
                    );
                }
            }
        }
    }
    println!("# *FNN has a fixed-size input layer: it cannot be applied to a topology");
    println!("#  with a different number of node pairs — the structural limitation the");
    println!("#  paper contrasts with RouteNet's GNN generalization.");
    println!(
        "# train: {} samples ({} NSFNET + {} Synth-50), {} epochs, gen {:.1}s, train {:.1}s",
        exp.data.train.len(),
        exp.data
            .train
            .iter()
            .filter(|s| s.topology == "NSFNET")
            .count(),
        exp.data
            .train
            .iter()
            .filter(|s| s.topology != "NSFNET")
            .count(),
        train_cfg.epochs,
        exp.gen_seconds,
        exp.train_seconds
    );
}
