//! Run one packet-level simulation scenario with full cost telemetry.
//!
//! The dataset pipeline deliberately silences per-sample [`Event::SimRun`]
//! events (one aggregate per dataset instead); this binary is the
//! single-scenario complement — it runs exactly one simulation with an
//! enabled telemetry handle and writes the event log next to its output.
//!
//! ```text
//! cargo run -p routenet-bench --release --bin simulate -- \
//!     [--topology nsfnet|geant2|gbn|synth] [--nodes 20] [--seed 1] \
//!     [--duration 120] [--warmup 10] [--intensity 0.7] \
//!     [--out sim.telemetry.jsonl]
//! ```
//!
//! [`Event::SimRun`]: routenet_obs::Event::SimRun

use rand::rngs::StdRng;
use rand::SeedableRng;
use routenet_bench::Args;
use routenet_dataset::TopologySpec;
use routenet_netgraph::routing::shortest_path_routing;
use routenet_netgraph::topology::{assign_capacities, CapacityScheme};
use routenet_netgraph::traffic::{sample_traffic_matrix, TrafficModel};
use routenet_obs::Telemetry;
use routenet_simnet::sim::{simulate, SimConfig, SizeDistribution};

fn main() {
    let args = Args::from_env();
    let seed = args.get_or("seed", 1u64);
    let intensity = args.get_or("intensity", 0.7f64);
    let topo_name = args.get("topology").unwrap_or("nsfnet");
    let spec = match topo_name {
        "nsfnet" => TopologySpec::Nsfnet,
        "geant2" => TopologySpec::Geant2,
        "gbn" => TopologySpec::Gbn,
        "synth" => TopologySpec::Synthetic {
            n: args.get_or("nodes", 20usize),
            topo_seed: seed,
        },
        other => {
            eprintln!("unknown --topology {other}; use nsfnet|geant2|gbn|synth");
            std::process::exit(2);
        }
    };
    let out = args.get("out").unwrap_or("sim.telemetry.jsonl");
    let tel = if args.get("no-telemetry").is_some() {
        Telemetry::disabled()
    } else {
        Telemetry::to_file("simulate", &format!("{topo_name} seed={seed}"), out)
    };

    // Same scenario recipe as dataset labeling: KDN-style capacities, a
    // uniform traffic structure rescaled to the target bottleneck
    // utilization, deterministic (MTU-like) packet sizes.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = spec.build();
    assign_capacities(&mut graph, &CapacityScheme::kdn_default(), &mut rng);
    let routing = shortest_path_routing(&graph).unwrap_or_else(|e| {
        eprintln!("routing failed on {topo_name}: {e}");
        std::process::exit(1);
    });
    let traffic = sample_traffic_matrix(
        &graph,
        &routing,
        &TrafficModel::Uniform { min_frac: 0.25 },
        intensity,
        &mut rng,
    );
    let cfg = SimConfig {
        duration_s: args.get_or("duration", 120.0f64),
        warmup_s: args.get_or("warmup", 10.0f64),
        size_dist: SizeDistribution::Deterministic,
        seed,
        telemetry: tel.clone(),
        ..SimConfig::default()
    };
    let res = simulate(&graph, &routing, &traffic, &cfg).unwrap_or_else(|e| {
        eprintln!("simulation rejected: {e}");
        std::process::exit(1);
    });

    let max_util = res.link_utilization.iter().cloned().fold(0.0, f64::max);
    println!(
        "{topo_name}: {} nodes, {} flows, intensity {intensity:.2}",
        graph.n_nodes(),
        res.flows.len()
    );
    println!(
        "events {}  packets {}  mean delay {}  max link util {max_util:.3}",
        res.events_processed,
        res.total_packets,
        res.overall_mean_delay_s()
            .map_or("n/a".into(), |d| format!("{:.6}s", d)),
    );
    if tel.enabled() {
        eprint!("{}", tel.summary_table());
        match tel.finish() {
            Ok(()) => eprintln!("# telemetry -> {out}"),
            Err(e) => eprintln!("warning: telemetry log incomplete: {e}"),
        }
    }
}
