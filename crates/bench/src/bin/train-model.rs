//! Model tooling: train a RouteNet on JSONL datasets and save a checkpoint.
//!
//! ```text
//! cargo run -p routenet-bench --release --bin train-model -- \
//!     --train train.jsonl [--val val.jsonl] --out model.json \
//!     [--epochs 30] [--lr 2e-3] [--batch 8] [--t-iterations 4] [--dim 16]
//! ```
//!
//! Pairs with `gen-dataset` (routenet-dataset) and `predict` for a complete
//! file-based workflow without writing any Rust.

use routenet_bench::{interrupt, Args};
use routenet_core::prelude::*;
use routenet_dataset::io::{load_jsonl, load_jsonl_lenient};
use routenet_obs::Telemetry;

fn main() {
    let args = Args::from_env();
    let Some(train_path) = args.get("train") else {
        eprintln!(
            "usage: train-model --train <jsonl> [--val <jsonl>] --out <model.json> \
             [--lenient] [--checkpoint <ckpt>] [--resume-from <ckpt>] [--no-telemetry] \
             [--threads <n>] [--sequential]"
        );
        std::process::exit(2);
    };
    let lenient = args.get("lenient").is_some();
    let out = args.get("out").unwrap_or("model.json").to_string();
    // Telemetry log rides next to the model artifact; `--no-telemetry` opts
    // out (e.g. when the output directory is read-only).
    let tel = if args.get("no-telemetry").is_some() {
        Telemetry::disabled()
    } else {
        Telemetry::to_file("train-model", &out, format!("{out}.telemetry.jsonl"))
    };
    let load = |path: &str| -> Vec<Sample> {
        if lenient {
            match load_jsonl_lenient(path) {
                Ok(r) => {
                    if r.skipped > 0 {
                        // lint: allow(panic, reason = "skipped > 0 implies a recorded first error")
                        let first = r
                            .first_error
                            .as_ref()
                            .expect("skip list records its first error");
                        eprintln!(
                            "warning: {path}: quarantined {} bad line(s){}; first error: {first}",
                            r.skipped,
                            if r.torn_tail { " (torn tail)" } else { "" },
                        );
                    }
                    r.emit_telemetry(&tel, path);
                    r.samples
                }
                Err(e) => {
                    eprintln!("failed to load {path}: {e}");
                    std::process::exit(1);
                }
            }
        } else {
            load_jsonl(path).unwrap_or_else(|e| {
                eprintln!("failed to load {path}: {e}");
                std::process::exit(1);
            })
        }
    };

    let train_set = load(train_path);
    let val_set = match args.get("val") {
        Some(p) => load(p),
        None => Vec::new(),
    };
    eprintln!(
        "loaded {} training / {} validation samples",
        train_set.len(),
        val_set.len()
    );

    let dim = args.get_or("dim", 16usize);
    let mut model = RouteNet::new(RouteNetConfig {
        link_state_dim: dim,
        path_state_dim: dim,
        readout_hidden: 2 * dim,
        t_iterations: args.get_or("t-iterations", 4usize),
        predict_jitter: true,
        predict_drops: false,
        seed: args.get_or("seed", 2019u64),
    });
    let cfg = TrainConfig {
        epochs: args.get_or("epochs", 30usize),
        batch_size: args.get_or("batch", 8usize),
        lr: args.get_or("lr", 2e-3f64),
        threads: args.get_or("threads", 0usize),
        // `--sequential` forces the per-sample execution path; the result is
        // bit-identical to the default batched kernel, just slower — kept as
        // a flag so CI can byte-diff the two (scripts/check.sh).
        batched: args.get("sequential").is_none(),
        verbose: true,
        checkpoint_path: args.get("checkpoint").map(str::to_string),
        checkpoint_every: args.get_or("checkpoint-every", 1usize),
        resume_from: args.get("resume-from").map(str::to_string),
        telemetry: tel.clone(),
        ..TrainConfig::default()
    };
    // Ctrl-C checkpoints (when --checkpoint is set) and exits cleanly.
    let control = interrupt::ctrl_c_control();
    let report = train_with_control(&mut model, &train_set, &val_set, &cfg, &control)
        .unwrap_or_else(|e| {
            eprintln!("training failed: {e}");
            std::process::exit(1);
        });
    for r in &report.recoveries {
        eprintln!(
            "recovered from {} at epoch {} (lr {:.2e} -> {:.2e})",
            r.reason, r.epoch, r.lr_before, r.lr_after
        );
    }
    if report.interrupted {
        eprintln!(
            "interrupted; training state checkpointed — rerun with --resume-from to continue"
        );
        finish_telemetry(&tel, &out);
        return;
    }
    eprintln!(
        "best epoch {} (loss {:.5}); saving {out}",
        report.best_epoch, report.best_loss
    );
    routenet_core::checkpoint::atomic_write(&out, model.to_json().as_bytes()).unwrap_or_else(|e| {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    });
    println!("model with {} parameters -> {out}", model.n_parameters());
    finish_telemetry(&tel, &out);
}

fn finish_telemetry(tel: &Telemetry, out: &str) {
    if !tel.enabled() {
        return;
    }
    if let Err(e) = tel.finish() {
        eprintln!("warning: telemetry log incomplete: {e}");
    } else {
        eprintln!("# telemetry -> {out}.telemetry.jsonl");
    }
}
