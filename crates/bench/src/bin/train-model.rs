//! Model tooling: train a RouteNet on JSONL datasets and save a checkpoint.
//!
//! ```text
//! cargo run -p routenet-bench --release --bin train-model -- \
//!     --train train.jsonl [--val val.jsonl] --out model.json \
//!     [--epochs 30] [--lr 2e-3] [--batch 8] [--t-iterations 4] [--dim 16]
//! ```
//!
//! Pairs with `gen-dataset` (routenet-dataset) and `predict` for a complete
//! file-based workflow without writing any Rust.

use routenet_bench::Args;
use routenet_core::prelude::*;
use routenet_dataset::io::load_jsonl;

fn main() {
    let args = Args::from_env();
    let Some(train_path) = args.get("train") else {
        eprintln!("usage: train-model --train <jsonl> [--val <jsonl>] --out <model.json>");
        std::process::exit(2);
    };
    let out = args.get("out").unwrap_or("model.json").to_string();

    let train_set = load_jsonl(train_path).unwrap_or_else(|e| {
        eprintln!("failed to load {train_path}: {e}");
        std::process::exit(1);
    });
    let val_set = match args.get("val") {
        Some(p) => load_jsonl(p).unwrap_or_else(|e| {
            eprintln!("failed to load {p}: {e}");
            std::process::exit(1);
        }),
        None => Vec::new(),
    };
    eprintln!(
        "loaded {} training / {} validation samples",
        train_set.len(),
        val_set.len()
    );

    let dim = args.get_or("dim", 16usize);
    let mut model = RouteNet::new(RouteNetConfig {
        link_state_dim: dim,
        path_state_dim: dim,
        readout_hidden: 2 * dim,
        t_iterations: args.get_or("t-iterations", 4usize),
        predict_jitter: true,
        predict_drops: false,
        seed: args.get_or("seed", 2019u64),
    });
    let cfg = TrainConfig {
        epochs: args.get_or("epochs", 30usize),
        batch_size: args.get_or("batch", 8usize),
        lr: args.get_or("lr", 2e-3f64),
        verbose: true,
        ..TrainConfig::default()
    };
    let report = train(&mut model, &train_set, &val_set, &cfg);
    eprintln!(
        "best epoch {} (loss {:.5}); saving {out}",
        report.best_epoch, report.best_loss
    );
    std::fs::write(&out, model.to_json()).unwrap_or_else(|e| {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    });
    println!("model with {} parameters -> {out}", model.n_parameters());
}
