//! **Extension experiment** — drop-probability prediction with finite
//! buffers (the third KPI of the RouteNet family; the demo paper covers
//! delay and jitter, drops are its natural continuation).
//!
//! Generates finite-buffer NSFNET/Geant2 datasets at high load, trains a
//! RouteNet with the drop head enabled, and compares against the M/M/1/K
//! analytic baseline.
//!
//! ```text
//! cargo run -p routenet-bench --release --bin drops -- \
//!     [--samples 48] [--epochs 30] [--buffer 5] [--seed 1]
//! ```

use routenet_bench::Args;
use routenet_core::prelude::*;
use routenet_dataset::gen::{generate_dataset, GenConfig, TopologySpec};

fn gen(spec: TopologySpec, n: usize, seed: u64, buffer: usize) -> Vec<Sample> {
    let mut cfg = GenConfig::new(spec, n, seed);
    cfg.sim.buffer_pkts = Some(buffer);
    cfg.intensity_min = 0.7;
    cfg.intensity_max = 1.1; // overload included: drops guaranteed
    cfg.sim.duration_s = 600.0;
    cfg.sim.warmup_s = 60.0;
    generate_dataset(&cfg)
}

fn main() {
    let args = Args::from_env();
    let samples = args.get_or("samples", 48usize);
    let epochs = args.get_or("epochs", 30usize);
    let buffer = args.get_or("buffer", 5usize);
    let seed = args.get_or("seed", 1u64);

    eprintln!("# generating finite-buffer datasets (K = {buffer} packets)...");
    let train_set = gen(TopologySpec::Nsfnet, samples, seed * 1_000_000, buffer);
    let val_set = gen(
        TopologySpec::Nsfnet,
        samples / 6 + 1,
        seed * 1_000_000 + 500_000,
        buffer,
    );
    let eval_nsf = gen(
        TopologySpec::Nsfnet,
        samples / 2,
        seed * 1_000_000 + 600_000,
        buffer,
    );
    let eval_geant = gen(
        TopologySpec::Geant2,
        samples / 2,
        seed * 1_000_000 + 700_000,
        buffer,
    );

    let mean_drop: f64 = train_set
        .iter()
        .flat_map(|s| s.targets.iter().map(|t| t.drop_prob))
        .sum::<f64>()
        / train_set.iter().map(|s| s.targets.len()).sum::<usize>() as f64;
    eprintln!("# mean drop probability in training labels: {mean_drop:.4}");

    let mut model = RouteNet::new(RouteNetConfig {
        predict_drops: true,
        ..RouteNetConfig::default()
    });
    eprintln!(
        "# training RouteNet with drop head ({} outputs)...",
        model.out_dim()
    );
    train(
        &mut model,
        &train_set,
        &val_set,
        &TrainConfig {
            epochs,
            verbose: true,
            ..TrainConfig::default()
        },
    )
    .unwrap_or_else(|e| panic!("training failed: {e}"));

    let mm1k = Mm1kBaseline {
        buffer_pkts: buffer,
        ..Mm1kBaseline::default()
    };
    println!("# drops: drop-probability prediction, RouteNet (drop head) vs M/M/1/K");
    println!("eval_set,predictor,n,drop_mae,drop_r,delay_medRE");
    for (name, set) in [("NSFNET-seen", &eval_nsf), ("Geant2-UNSEEN", &eval_geant)] {
        for (pname, ev) in [
            ("RouteNet", collect_predictions(&model, set)),
            ("MM1K", collect_predictions(&mm1k, set)),
        ] {
            let (mae, r) = ev.drop_summary().expect("both predictors have drop heads");
            let d = ev.delay_summary().expect("evaluation sets are non-empty");
            println!(
                "{name},{pname},{},{mae:.5},{r:.4},{:.4}",
                ev.len(),
                d.median_re
            );
        }
    }
    println!("# shape: RouteNet's drop MAE should be at or below the analytic M/M/1/K");
    println!("# (which ignores upstream thinning and non-exponential services), and its");
    println!("# advantage should persist on the unseen topology.");
}
