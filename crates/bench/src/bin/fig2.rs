//! **Fig. 2** — Regression plot of RouteNet's predicted delays vs. the true
//! (simulated) delays in one sample scenario of the unseen Geant2 topology.
//!
//! Prints the scatter series as CSV (`true_delay_s,predicted_delay_s`) plus
//! the regression statistics the plot visualizes (R², slope, intercept).
//!
//! ```text
//! cargo run -p routenet-bench --release --bin fig2 -- \
//!     [--scale 1.0] [--epochs 30] [--seed 1] [--sample 0]
//! ```

use routenet_bench::{run_experiment, scaled_protocol, Args};
use routenet_core::prelude::*;

fn main() {
    let args = Args::from_env();
    let scale = args.get_or("scale", 1.0f64);
    let seed = args.get_or("seed", 1u64);
    let sample_idx = args.get_or("sample", 0usize);
    let protocol = scaled_protocol(scale, seed);
    let train_cfg = TrainConfig {
        epochs: args.get_or("epochs", 30usize),
        verbose: true,
        ..TrainConfig::default()
    };
    let exp = run_experiment(&protocol, RouteNetConfig::default(), &train_cfg, true)
        .unwrap_or_else(|e| panic!("training failed: {e}"));

    let sample = &exp.data.eval_geant2[sample_idx.min(exp.data.eval_geant2.len() - 1)];
    let preds = exp.model.predict_scenario(&sample.scenario);

    let mut xs = Vec::new(); // true
    let mut ys = Vec::new(); // predicted
    println!("# fig2: regression of predicted vs true per-path mean delay");
    println!(
        "# topology=Geant2 (unseen during training), intensity={:.3}",
        sample.intensity
    );
    println!("true_delay_s,predicted_delay_s");
    for (p, t) in preds.iter().zip(&sample.targets) {
        if t.delay_s > 0.0 {
            println!("{:.6},{:.6}", t.delay_s, p.delay_s);
            xs.push(t.delay_s);
            ys.push(p.delay_s);
        }
    }

    // Least-squares fit y = a x + b, plus the usual regression stats.
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = routenet_core::metrics::r_squared(&ys, &xs);
    let r = routenet_core::metrics::pearson(&ys, &xs);
    eprintln!(
        "# n={} slope={slope:.3} intercept={intercept:.4}s r={r:.4} R2={r2:.4}",
        xs.len()
    );
    eprintln!("# (ideal: slope 1.0, intercept 0.0 — points on the diagonal)");
    let pts: Vec<(f64, f64)> = xs.iter().cloned().zip(ys.iter().cloned()).collect();
    eprintln!("# predicted (y) vs simulated (x) delay, seconds; '.' = ideal diagonal");
    eprint!("{}", routenet_bench::plot::scatter(&pts, 64, 20));
}
