//! **E5 / §1 cost claim** — per-sample wall-clock of RouteNet inference vs.
//! packet-level simulation vs. the analytic model, across topology sizes.
//! This is the paper's motivation: "packet-level simulators produce accurate
//! KPI predictions at the expense of high computational cost".
//!
//! ```text
//! cargo run -p routenet-bench --release --bin cost -- \
//!     [--reps 5] [--duration 60] [--capacity-mult 100]
//! ```
//!
//! `--capacity-mult` scales link capacities *and* demands together, keeping
//! utilizations (and thus the queueing structure) identical while raising
//! the packet rate to realistic levels. The KDN-style 10 kbps capacities are
//! a scaled-down convenience; real links are 10^3..10^6 times faster, and
//! simulator cost grows linearly with packet volume while inference cost
//! stays constant — that is the paper's cost argument.

use routenet_bench::Args;
use routenet_core::prelude::*;
use routenet_dataset::gen::{generate_sample, GenConfig, TopologySpec};
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let reps = args.get_or("reps", 5usize);
    let duration = args.get_or("duration", 60.0f64);
    let cap_mult = args.get_or("capacity-mult", 1000.0f64);

    let model = {
        let mut m = RouteNet::new(RouteNetConfig::default());
        // Cost is independent of training; install unit scales so the
        // forward pass is numerically healthy.
        m.set_normalizer(Normalizer {
            capacity_scale: 40_000.0,
            traffic_scale: 500.0,
            ..Normalizer::default()
        });
        m
    };
    let mm1 = Mm1Baseline::default();

    println!(
        "# cost: per-scenario wall-clock, {reps} reps, sim window {duration}s, capacities x{cap_mult}"
    );
    println!("topology,nodes,paths,sim_ms,routenet_ms,mm1_ms,speedup_vs_sim,sim_events");
    for (spec, label) in [
        (TopologySpec::Nsfnet, "NSFNET"),
        (TopologySpec::Gbn, "GBN"),
        (TopologySpec::Geant2, "Geant2"),
        (
            TopologySpec::Synthetic {
                n: 50,
                topo_seed: 2019,
            },
            "Synth-50",
        ),
    ] {
        let mut cfg = GenConfig::new(spec.clone(), 1, 5);
        cfg.sim.duration_s = duration;
        cfg.sim.warmup_s = duration / 10.0;
        // One full labeled sample (includes the simulation) to set the stage.
        let mut sample = generate_sample(&cfg, 0);
        // Scale to realistic rates: capacities and demands up together, so
        // utilization (and queueing behaviour) is unchanged.
        let link_ids: Vec<_> = sample.scenario.graph.links().map(|(id, _)| id).collect();
        for id in link_ids {
            sample.scenario.graph.link_mut(id).unwrap().capacity_bps *= cap_mult;
        }
        sample.scenario.traffic.scale(cap_mult);
        let scenario = &sample.scenario;

        // Simulator timing.
        let mut sim_ms = 0.0;
        let mut events = 0u64;
        for r in 0..reps {
            let sim_cfg = routenet_simnet::sim::SimConfig {
                seed: r as u64,
                ..cfg.sim.clone()
            };
            let t = Instant::now();
            let res = routenet_simnet::sim::simulate(
                &scenario.graph,
                &scenario.routing,
                &scenario.traffic,
                &sim_cfg,
            )
            .unwrap();
            sim_ms += t.elapsed().as_secs_f64() * 1e3;
            events = res.events_processed;
        }
        sim_ms /= reps as f64;

        // RouteNet inference timing (includes scenario compilation).
        let mut rn_ms = 0.0;
        for _ in 0..reps {
            let t = Instant::now();
            let preds = model.predict_scenario(scenario);
            rn_ms += t.elapsed().as_secs_f64() * 1e3;
            assert_eq!(preds.len(), scenario.n_pairs());
        }
        rn_ms /= reps as f64;

        // Analytic baseline timing.
        let mut mm1_ms = 0.0;
        for _ in 0..reps {
            let t = Instant::now();
            let preds = mm1.predict(scenario);
            mm1_ms += t.elapsed().as_secs_f64() * 1e3;
            assert_eq!(preds.len(), scenario.n_pairs());
        }
        mm1_ms /= reps as f64;

        println!(
            "{label},{},{},{sim_ms:.1},{rn_ms:.1},{mm1_ms:.3},{:.0},{events}",
            scenario.graph.n_nodes(),
            scenario.n_pairs(),
            sim_ms / rn_ms
        );
    }
    println!("# speedup_vs_sim = simulation time / RouteNet inference time.");
    println!("# The gap is the paper's cost argument; it widens with simulated duration");
    println!("# (labels need long windows for statistics) while inference cost does not.");
}
