//! Load generator / offline reference for the `routenet-serve` daemon.
//!
//! TCP mode — fire a query corpus at a running daemon from concurrent
//! pipelined connections and record every response:
//!
//! ```text
//! cargo run -p routenet-bench --release --bin serve-loadgen -- \
//!     --connect 127.0.0.1:4727 --data eval.jsonl --repeat 25 \
//!     --concurrency 8 --window 4 --out served.jsonl [--shutdown]
//! ```
//!
//! Offline mode — answer the SAME corpus with the library predict path and
//! the SAME wire serializer, so the two output files can be compared
//! byte-for-byte (`cmp served.jsonl offline.jsonl`):
//!
//! ```text
//! cargo run -p routenet-bench --release --bin serve-loadgen -- \
//!     --offline --model model.json --data eval.jsonl --repeat 25 \
//!     --out offline.jsonl
//! ```
//!
//! The corpus is the dataset's scenarios repeated `--repeat` times; query
//! ids enumerate the expanded corpus, and the output holds one response
//! line per id, sorted by id — identical inputs therefore yield identical
//! bytes whenever the daemon honors its determinism contract. Any error
//! response (shed, validation) fails the run: equivalence checks must size
//! the workload below the daemon's shed threshold.

use routenet_bench::Args;
use routenet_core::checkpoint::MAGIC;
use routenet_core::prelude::*;
use routenet_dataset::io::load_jsonl;
use routenet_serve::{Request, Response};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

/// The expanded query corpus: dataset scenarios cycled `repeat` times.
fn corpus(data_path: &str, repeat: usize) -> Vec<Scenario> {
    let data = load_jsonl(data_path).unwrap_or_else(|e| {
        eprintln!("failed to load {data_path}: {e}");
        std::process::exit(1);
    });
    if data.is_empty() {
        eprintln!("{data_path}: empty dataset");
        std::process::exit(1);
    }
    let mut out = Vec::with_capacity(data.len() * repeat);
    for _ in 0..repeat {
        out.extend(data.iter().map(|s| s.scenario.clone()));
    }
    out
}

/// One pipelined client: sends its id slice with at most `window` queries
/// in flight, returns `(id, response line, latency_s)` per query.
fn run_client(
    addr: &str,
    queries: &[Scenario],
    ids: &[u64],
    window: usize,
) -> std::io::Result<Vec<(u64, String, f64)>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut out = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut results = Vec::with_capacity(ids.len());
    let mut sent = BTreeMap::new(); // id -> send instant
    let mut next = 0usize;
    let mut line = String::new();
    while results.len() < ids.len() {
        while next < ids.len() && sent.len() < window.max(1) {
            let id = ids[next];
            let req = Request {
                id,
                // lint: allow(cast, reason = "ids enumerate 0..queries.len(), which fits usize by construction")
                scenario: Some(queries[id as usize].clone()),
                cmd: None,
            };
            let body = serde_json::to_string(&req).map_err(std::io::Error::other)?;
            sent.insert(id, Instant::now());
            out.write_all(body.as_bytes())?;
            out.write_all(b"\n")?;
            next += 1;
        }
        out.flush()?;
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::other("daemon closed the connection"));
        }
        let resp: Response = serde_json::from_str(line.trim()).map_err(std::io::Error::other)?;
        let t0 = sent.remove(&resp.id).ok_or_else(|| {
            std::io::Error::other(format!("response for id {} never sent", resp.id))
        })?;
        results.push((resp.id, line.trim().to_string(), t0.elapsed().as_secs_f64()));
    }
    Ok(results)
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn write_lines(out_path: &str, lines: &BTreeMap<u64, String>) {
    let mut buf = String::new();
    for line in lines.values() {
        buf.push_str(line);
        buf.push('\n');
    }
    std::fs::write(out_path, buf).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    });
}

fn main() {
    let args = Args::from_env();
    let Some(data_path) = args.get("data") else {
        eprintln!(
            "usage: serve-loadgen --data <jsonl> --out <jsonl> \
             (--connect <host:port> [--concurrency K] [--window W] [--shutdown] \
             | --offline --model <path>) [--repeat N]"
        );
        std::process::exit(2);
    };
    let Some(out_path) = args.get("out") else {
        eprintln!("serve-loadgen: --out <jsonl> is required");
        std::process::exit(2);
    };
    let repeat = args.get_or("repeat", 1usize).max(1);
    let queries = corpus(data_path, repeat);

    if args.get("offline").is_some() {
        let Some(model_path) = args.get("model") else {
            eprintln!("serve-loadgen: --offline needs --model <path>");
            std::process::exit(2);
        };
        let text = std::fs::read_to_string(model_path).unwrap_or_else(|e| {
            eprintln!("{model_path}: {e}");
            std::process::exit(1);
        });
        let model = if text.starts_with(MAGIC) {
            TrainState::load(model_path)
                .map_err(|e| e.to_string())
                .and_then(|s| s.into_model().map_err(|e| e.to_string()))
        } else {
            RouteNet::from_json(&text).map_err(|e| e.to_string())
        }
        .unwrap_or_else(|e| {
            eprintln!("{model_path}: {e}");
            std::process::exit(1);
        });
        // Chunked batched predict: equivalence is packing-independent, so
        // chunking only bounds peak memory, never changes the answers.
        let mut lines = BTreeMap::new();
        let t0 = Instant::now();
        for (chunk_idx, chunk) in queries.chunks(32).enumerate() {
            let refs: Vec<&Scenario> = chunk.iter().collect();
            for (off, preds) in model.predict_batch(&refs).into_iter().enumerate() {
                let id = (chunk_idx * 32 + off) as u64;
                lines.insert(id, Response::ok(id, preds).to_line());
            }
        }
        let wall = t0.elapsed().as_secs_f64();
        write_lines(out_path, &lines);
        eprintln!(
            "offline: {} queries in {:.3}s ({:.1} q/s) -> {out_path}",
            lines.len(),
            wall,
            lines.len() as f64 / wall.max(1e-9),
        );
        return;
    }

    let Some(addr) = args.get("connect") else {
        eprintln!("serve-loadgen: pass --connect <host:port> or --offline");
        std::process::exit(2);
    };
    let concurrency = args.get_or("concurrency", 4usize).max(1);
    let window = args.get_or("window", 4usize);
    let n = queries.len() as u64;
    let t0 = Instant::now();
    let per_client: Vec<std::io::Result<Vec<(u64, String, f64)>>> = std::thread::scope(|scope| {
        let queries = &queries;
        let handles: Vec<_> = (0..concurrency)
            .map(|c| {
                scope.spawn(move || {
                    let ids: Vec<u64> = (0..n)
                        .filter(|id| *id as usize % concurrency == c)
                        .collect();
                    run_client(addr, queries, &ids, window)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();

    let mut lines = BTreeMap::new();
    let mut latencies = Vec::new();
    let mut errors = 0usize;
    for result in per_client {
        let rows = result.unwrap_or_else(|e| {
            eprintln!("serve-loadgen: client failed: {e}");
            std::process::exit(1);
        });
        for (id, line, lat) in rows {
            if serde_json::from_str::<Response>(&line)
                .map(|r| r.error.is_some())
                .unwrap_or(true)
            {
                errors += 1;
            }
            latencies.push(lat);
            lines.insert(id, line);
        }
    }
    if lines.len() as u64 != n {
        eprintln!("serve-loadgen: {} responses for {n} queries", lines.len());
        std::process::exit(1);
    }
    write_lines(out_path, &lines);

    latencies.sort_by(|a, b| a.total_cmp(b));
    eprintln!(
        "served: {n} queries in {wall:.3}s ({:.1} q/s), client p50 {:.2}ms p95 {:.2}ms, \
         {concurrency} conns x window {window} -> {out_path}",
        n as f64 / wall.max(1e-9),
        quantile(&latencies, 0.50) * 1e3,
        quantile(&latencies, 0.95) * 1e3,
    );
    if errors > 0 {
        eprintln!("serve-loadgen: {errors} error responses (shed or rejected)");
        std::process::exit(1);
    }

    if args.get("shutdown").is_some() {
        let ack = TcpStream::connect(addr).and_then(|stream| {
            stream.set_nodelay(true)?;
            let mut out = stream.try_clone()?;
            out.write_all(b"{\"cmd\": \"shutdown\"}\n")?;
            out.flush()?;
            let mut line = String::new();
            BufReader::new(stream).read_line(&mut line)?;
            Ok(line)
        });
        match ack {
            Ok(line) if !line.trim().is_empty() => eprintln!("shutdown acknowledged"),
            Ok(_) => eprintln!("shutdown sent (no ack before close)"),
            Err(e) => {
                eprintln!("serve-loadgen: shutdown failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
