//! **Fig. 3** — Cumulative distribution function of the relative error of
//! RouteNet's delay predictions over all evaluation samples, one series per
//! topology (NSFNET-14, Synth-50, and the unseen Geant2-24), plus the M/M/1
//! analytic baseline for contrast.
//!
//! Prints CSV: `series,relative_error,cdf`.
//!
//! ```text
//! cargo run -p routenet-bench --release --bin fig3 -- \
//!     [--scale 1.0] [--epochs 30] [--seed 1] [--points 50]
//! ```

use routenet_bench::{run_experiment, scaled_protocol, summary_row, Args};
use routenet_core::prelude::*;

fn main() {
    let args = Args::from_env();
    let scale = args.get_or("scale", 1.0f64);
    let seed = args.get_or("seed", 1u64);
    let points = args.get_or("points", 50usize);
    let protocol = scaled_protocol(scale, seed);
    let train_cfg = TrainConfig {
        epochs: args.get_or("epochs", 30usize),
        verbose: true,
        ..TrainConfig::default()
    };
    let exp = run_experiment(&protocol, RouteNetConfig::default(), &train_cfg, true)
        .unwrap_or_else(|e| panic!("training failed: {e}"));

    let mm1 = Mm1Baseline::default();
    println!("# fig3: CDF of relative error of per-path delay predictions");
    println!("series,relative_error,cdf");
    let sets: [(&str, &Vec<Sample>); 3] = [
        ("NSFNET-14", &exp.data.eval_nsfnet),
        ("Synth-50", &exp.data.eval_synth),
        ("Geant2-24-unseen", &exp.data.eval_geant2),
    ];
    for (name, set) in sets {
        for (model_name, ev) in [
            ("RouteNet", collect_predictions(&exp.model, set)),
            ("MM1", collect_predictions(&mm1, set)),
        ] {
            let re = relative_errors(&ev.delay_pred, &ev.delay_true);
            for (x, f) in cdf_points(&re, points) {
                println!("{model_name}/{name},{x:.6},{f:.4}");
            }
            eprintln!(
                "{}",
                summary_row(&format!("{model_name} {name}"), &ev.delay_summary())
            );
        }
    }

    // Terminal rendition of the headline CDFs (unseen topology).
    let rn = collect_predictions(&exp.model, &exp.data.eval_geant2);
    let rn_cdf = cdf_points(&relative_errors(&rn.delay_pred, &rn.delay_true), 50);
    let qa = collect_predictions(&mm1, &exp.data.eval_geant2);
    let qa_cdf = cdf_points(&relative_errors(&qa.delay_pred, &qa.delay_true), 50);
    eprintln!("# CDF of relative delay error on UNSEEN Geant2 (right = worse):");
    eprint!(
        "{}",
        routenet_bench::plot::cdf_chart(&[("RouteNet", &rn_cdf), ("M/M/1", &qa_cdf)], 60, 16)
    );

    // The paper's figure aggregates all three topologies; emit that too.
    let all = exp.data.eval_all();
    let ev = collect_predictions(&exp.model, &all);
    let re = relative_errors(&ev.delay_pred, &ev.delay_true);
    for (x, f) in cdf_points(&re, points) {
        println!("RouteNet/all,{x:.6},{f:.4}");
    }
    eprintln!("{}", summary_row("RouteNet ALL", &ev.delay_summary()));
}
