//! One-shot evaluation report: generates the paper-protocol datasets, trains
//! RouteNet **once**, and writes every figure/table artifact into
//! `results/` (the per-figure binaries are self-contained equivalents that
//! each train their own model).
//!
//! ```text
//! cargo run -p routenet-bench --release --bin report -- \
//!     [--scale 1.0] [--epochs 40] [--seed 1] [--out results]
//! ```
//!
//! Outputs:
//! - `results/fig2.csv` — (true, predicted) scatter on an unseen Geant2 sample
//! - `results/fig3.csv` — relative-error CDFs per topology and predictor
//! - `results/fig4.csv` — Top-10 paths with more delay
//! - `results/table1.txt` — generalization summary table
//! - `results/training.csv` — loss curve
//! - `results/model.json` — the trained checkpoint
//! - `results/summary.txt` — headline numbers

use routenet_bench::{interrupt, run_experiment_with_control, scaled_protocol, summary_row, Args};
use routenet_core::prelude::*;
use routenet_obs::Telemetry;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

fn write(path: &Path, content: &str) {
    routenet_core::checkpoint::atomic_write(path, content.as_bytes())
        .unwrap_or_else(|e| panic!("write {path:?}: {e}"));
    eprintln!("# wrote {}", path.display());
}

fn main() {
    let args = Args::from_env();
    let scale = args.get_or("scale", 1.0f64);
    let seed = args.get_or("seed", 1u64);
    let epochs = args.get_or("epochs", 40usize);
    let out_dir = std::path::PathBuf::from(args.get("out").unwrap_or("results"));
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    let protocol = scaled_protocol(scale, seed);
    let tel_path = out_dir.join("report.telemetry.jsonl");
    let tel = if args.get("no-telemetry").is_some() {
        Telemetry::disabled()
    } else {
        Telemetry::to_file("report", &format!("scale={scale} seed={seed}"), &tel_path)
    };
    let ckpt_path = out_dir.join("train-state.ckpt");
    let train_cfg = TrainConfig {
        epochs,
        verbose: true,
        checkpoint_path: Some(ckpt_path.to_string_lossy().into_owned()),
        checkpoint_every: args.get_or("checkpoint-every", 1usize),
        resume_from: args
            .get("resume")
            .map(|_| ckpt_path.to_string_lossy().into_owned()),
        telemetry: tel.clone(),
        ..TrainConfig::default()
    };
    // Ctrl-C checkpoints the last epoch boundary and exits cleanly; rerun
    // with --resume to continue the run from that checkpoint.
    let control = interrupt::ctrl_c_control();
    let exp = run_experiment_with_control(
        &protocol,
        RouteNetConfig::default(),
        &train_cfg,
        true,
        &control,
    )
    .unwrap_or_else(|e| panic!("training failed: {e}"));
    if exp.report.interrupted {
        eprintln!(
            "# interrupted; training state saved to {} — rerun with --resume to continue",
            ckpt_path.display()
        );
        if let Err(e) = tel.finish() {
            eprintln!("warning: telemetry log incomplete: {e}");
        }
        return;
    }
    let mm1 = Mm1Baseline::default();
    let mg1 = Mg1Baseline::default(); // knows the true (deterministic) size distribution

    // ---- training curve ------------------------------------------------
    let mut s = String::from("epoch,train_loss,val_loss,lr\n");
    for e in &exp.report.epochs {
        writeln!(
            s,
            "{},{:.6},{},{:.2e}",
            e.epoch,
            e.train_loss,
            e.val_loss.map_or("".into(), |v| format!("{v:.6}")),
            e.lr
        )
        .unwrap();
    }
    write(&out_dir.join("training.csv"), &s);

    // ---- model checkpoint ----------------------------------------------
    write(&out_dir.join("model.json"), &exp.model.to_json());

    // ---- fig2: regression scatter on unseen Geant2 ----------------------
    let sample = &exp.data.eval_geant2[0];
    let preds = exp.model.predict_scenario(&sample.scenario);
    let mut s = String::from("true_delay_s,predicted_delay_s\n");
    let (mut xs, mut ys) = (Vec::new(), Vec::new());
    for (p, t) in preds.iter().zip(&sample.targets) {
        if t.delay_s > 0.0 {
            writeln!(s, "{:.6},{:.6}", t.delay_s, p.delay_s).unwrap();
            xs.push(t.delay_s);
            ys.push(p.delay_s);
        }
    }
    write(&out_dir.join("fig2.csv"), &s);
    let fig2_r2 = routenet_core::metrics::r_squared(&ys, &xs);
    let fig2_r = routenet_core::metrics::pearson(&ys, &xs);

    // ---- fig3: CDFs ------------------------------------------------------
    let mut s = String::from("series,relative_error,cdf\n");
    let sets: [(&str, &Vec<Sample>); 3] = [
        ("NSFNET-14", &exp.data.eval_nsfnet),
        ("Synth-50", &exp.data.eval_synth),
        ("Geant2-24-unseen", &exp.data.eval_geant2),
    ];
    let mut summaries = String::new();
    let mut per_topology = BTreeMap::new();
    for (name, set) in sets {
        for (pname, ev) in [
            ("RouteNet", collect_predictions(&exp.model, set)),
            ("MM1", collect_predictions(&mm1, set)),
        ] {
            let re = relative_errors(&ev.delay_pred, &ev.delay_true);
            for (x, f) in cdf_points(&re, 50) {
                writeln!(s, "{pname}/{name},{x:.6},{f:.4}").unwrap();
            }
            writeln!(
                summaries,
                "{}",
                summary_row(&format!("{pname} {name}"), &ev.delay_summary())
            )
            .unwrap();
            if let Some(j) = ev.jitter_summary() {
                writeln!(
                    summaries,
                    "{}",
                    summary_row(&format!("{pname} {name} [jitter]"), &Some(j))
                )
                .unwrap();
            }
            per_topology.insert(format!("{pname}/{name}"), ev);
        }
    }
    emit_eval_telemetry(&tel, "", &per_topology);
    write(&out_dir.join("fig3.csv"), &s);

    // ---- fig4: top-10 ----------------------------------------------------
    let top = top_n_paths_by_delay(&exp.model, sample, 10);
    let mut s = String::from("rank,src,dst,predicted_delay_ms,simulated_delay_ms,hops\n");
    for (rank, (src, dst, pred, truth)) in top.iter().enumerate() {
        let hops = sample.scenario.routing.hops(
            routenet_netgraph::NodeId(*src),
            routenet_netgraph::NodeId(*dst),
        );
        writeln!(
            s,
            "{},{},{},{:.2},{:.2},{}",
            rank + 1,
            src,
            dst,
            pred * 1e3,
            truth * 1e3,
            hops
        )
        .unwrap();
    }
    write(&out_dir.join("fig4.csv"), &s);

    // ---- table1 ----------------------------------------------------------
    let nsf_train: Vec<Sample> = exp
        .data
        .train
        .iter()
        .filter(|x| x.topology == "NSFNET")
        .cloned()
        .collect();
    eprintln!("# training FNN baseline on NSFNET...");
    let fnn = FnnBaseline::train(&nsf_train, &FnnConfig::default());
    let mut s = String::new();
    writeln!(
        s,
        "{:<20} {:<10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "eval set", "predictor", "n", "MAE(s)", "medRE", "p95RE", "r", "jitMedRE", "jit r"
    )
    .unwrap();
    for (name, set) in [
        ("NSFNET-14 (seen)", &exp.data.eval_nsfnet),
        ("Synth-50 (seen)", &exp.data.eval_synth),
        ("Geant2-24 (UNSEEN)", &exp.data.eval_geant2),
    ] {
        let mut rows: Vec<(&str, Option<PairedEval>)> = vec![
            ("RouteNet", Some(collect_predictions(&exp.model, set))),
            ("M/M/1", Some(collect_predictions(&mm1, set))),
            ("M/G/1", Some(collect_predictions(&mg1, set))),
        ];
        if set.iter().all(|x| fnn.supports(&x.scenario)) {
            rows.push(("FNN", Some(collect_predictions(&fnn, set))));
        } else {
            rows.push(("FNN", None));
        }
        for (pname, ev) in rows {
            match ev {
                Some(ev) => {
                    let d = ev.delay_summary().expect("evaluation sets are non-empty");
                    let (jm, jr) = match ev.jitter_summary() {
                        Some(j) => (format!("{:.3}", j.median_re), format!("{:.3}", j.pearson_r)),
                        None => ("n/a".into(), "n/a".into()),
                    };
                    writeln!(
                        s,
                        "{:<20} {:<10} {:>8} {:>8.4} {:>8.3} {:>8.3} {:>8.3} {:>10} {:>10}",
                        name, pname, d.n, d.mae, d.median_re, d.p95_re, d.pearson_r, jm, jr
                    )
                    .unwrap();
                }
                None => {
                    writeln!(
                        s,
                        "{:<20} {:<10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10}",
                        name, pname, "-", "n/a", "n/a", "n/a", "n/a", "n/a", "n/a"
                    )
                    .unwrap();
                }
            }
        }
    }
    writeln!(
        s,
        "\nFNN n/a = fixed-input model cannot be applied to other topologies."
    )
    .unwrap();
    write(&out_dir.join("table1.txt"), &s);

    // ---- summary ---------------------------------------------------------
    let mut s = String::new();
    writeln!(s, "RouteNet generalization report").unwrap();
    writeln!(
        s,
        "scale={scale} epochs={epochs} seed={seed} train_samples={} (gen {:.1}s, train {:.1}s)",
        exp.data.train.len(),
        exp.gen_seconds,
        exp.train_seconds
    )
    .unwrap();
    writeln!(s, "model parameters: {}", exp.model.n_parameters()).unwrap();
    writeln!(
        s,
        "best epoch {} val loss {:.5}",
        exp.report.best_epoch, exp.report.best_loss
    )
    .unwrap();
    writeln!(
        s,
        "fig2 (unseen Geant2 sample): r={fig2_r:.4} R2={fig2_r2:.4}"
    )
    .unwrap();
    writeln!(s, "\nper-topology summaries:\n{summaries}").unwrap();
    write(&out_dir.join("summary.txt"), &s);
    println!("{s}");
    if tel.enabled() {
        eprint!("{}", tel.summary_table());
        match tel.finish() {
            Ok(()) => eprintln!("# telemetry -> {}", tel_path.display()),
            Err(e) => eprintln!("warning: telemetry log incomplete: {e}"),
        }
    }
}
