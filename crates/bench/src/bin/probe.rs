//! Dev probe: how far is the analytic M/M/1 baseline from simulator labels
//! under different traffic processes? (No training involved.)

use routenet_bench::summary_row;
use routenet_core::prelude::*;
use routenet_dataset::gen::{generate_dataset, GenConfig, TopologySpec};
use routenet_simnet::sim::{ArrivalProcess, SizeDistribution};

fn main() {
    let mm1 = Mm1Baseline::default();
    let configs: Vec<(&str, ArrivalProcess, SizeDistribution)> = vec![
        (
            "poisson+exp (M/M/1 exact)",
            ArrivalProcess::Poisson,
            SizeDistribution::Exponential,
        ),
        (
            "poisson+det (M/D/1)",
            ArrivalProcess::Poisson,
            SizeDistribution::Deterministic,
        ),
        (
            "onoff(2,2)+exp",
            ArrivalProcess::OnOff {
                on_mean_s: 2.0,
                off_mean_s: 2.0,
            },
            SizeDistribution::Exponential,
        ),
        (
            "onoff(10,10)+exp",
            ArrivalProcess::OnOff {
                on_mean_s: 10.0,
                off_mean_s: 10.0,
            },
            SizeDistribution::Exponential,
        ),
        (
            "onoff(10,10)+det",
            ArrivalProcess::OnOff {
                on_mean_s: 10.0,
                off_mean_s: 10.0,
            },
            SizeDistribution::Deterministic,
        ),
        (
            "onoff(5,20)+det (peaky)",
            ArrivalProcess::OnOff {
                on_mean_s: 5.0,
                off_mean_s: 20.0,
            },
            SizeDistribution::Deterministic,
        ),
    ];
    for (name, arr, size) in configs {
        let mut cfg = GenConfig::new(TopologySpec::Nsfnet, 8, 77);
        cfg.sim.arrivals = arr;
        cfg.sim.size_dist = size;
        cfg.intensity_min = 0.4;
        cfg.intensity_max = 0.8;
        let ds = generate_dataset(&cfg);
        let ev = collect_predictions(&mm1, &ds);
        println!("{}", summary_row(name, &ev.delay_summary()));
        if let Some(j) = ev.jitter_summary() {
            println!("{}", summary_row(&format!("{name} [jitter]"), &Some(j)));
        }
    }
}
