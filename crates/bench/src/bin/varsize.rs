//! **Variable-size generalization** — the abstract's stress test: "accurate
//! performance prediction in more complex scenarios including larger
//! topologies of variable size (up to 50 nodes)".
//!
//! Trains per the paper protocol (NSFNET-14 + Synth-50), then evaluates on
//! *fresh random topologies* of sizes 10..=50 that the model has never seen
//! (different graphs, not just different scenarios).
//!
//! ```text
//! cargo run -p routenet-bench --release --bin varsize -- \
//!     [--scale 1.0] [--epochs 30] [--seed 1] [--per-size 6]
//! ```

use routenet_bench::{run_experiment, scaled_protocol, Args};
use routenet_core::prelude::*;
use routenet_dataset::gen::{generate_dataset, GenConfig, TopologySpec};

fn main() {
    let args = Args::from_env();
    let scale = args.get_or("scale", 1.0f64);
    let seed = args.get_or("seed", 1u64);
    let per_size = args.get_or("per-size", 6usize);
    let protocol = scaled_protocol(scale, seed);
    let train_cfg = TrainConfig {
        epochs: args.get_or("epochs", 30usize),
        verbose: true,
        ..TrainConfig::default()
    };
    let exp = run_experiment(&protocol, RouteNetConfig::default(), &train_cfg, true)
        .unwrap_or_else(|e| panic!("training failed: {e}"));
    let mm1 = Mm1Baseline::default();

    println!("# varsize: error vs topology size on fresh random graphs (never seen)");
    println!("nodes,samples,paths,routenet_medRE,routenet_r,mm1_medRE,mm1_r");
    for n in [10usize, 20, 30, 40, 50] {
        // New graph per size: topo_seed differs from the training topology.
        let mut cfg = GenConfig::new(
            TopologySpec::Synthetic {
                n,
                topo_seed: 777_000 + n as u64,
            },
            per_size,
            900_000 + n as u64,
        );
        cfg.sim.duration_s = protocol.sim_duration_s;
        cfg.sim.warmup_s = protocol.sim_warmup_s;
        let set = generate_dataset(&cfg);
        let rn = collect_predictions(&exp.model, &set)
            .delay_summary()
            .expect("generated sets are non-empty");
        let qa = collect_predictions(&mm1, &set)
            .delay_summary()
            .expect("generated sets are non-empty");
        println!(
            "{n},{},{},{:.4},{:.4},{:.4},{:.4}",
            per_size, rn.n, rn.median_re, rn.pearson_r, qa.median_re, qa.pearson_r
        );
    }
    println!("# expected shape: RouteNet's median error stays flat-ish across sizes");
    println!("# (trained on 14 and 50 nodes, it interpolates the range between).");
}
