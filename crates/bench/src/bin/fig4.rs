//! **Fig. 4** — "Top-10 paths with more delay": the network-visibility
//! analytics of the demo, driven by RouteNet predictions on one scenario of
//! the unseen Geant2 topology, with the simulator's ground truth alongside.
//!
//! ```text
//! cargo run -p routenet-bench --release --bin fig4 -- \
//!     [--scale 1.0] [--epochs 30] [--seed 1] [--sample 0] [--top 10]
//! ```

use routenet_bench::{run_experiment, scaled_protocol, Args};
use routenet_core::prelude::*;
use routenet_netgraph::NodeId;

fn main() {
    let args = Args::from_env();
    let scale = args.get_or("scale", 1.0f64);
    let seed = args.get_or("seed", 1u64);
    let sample_idx = args.get_or("sample", 0usize);
    let top_n = args.get_or("top", 10usize);
    let protocol = scaled_protocol(scale, seed);
    let train_cfg = TrainConfig {
        epochs: args.get_or("epochs", 30usize),
        verbose: true,
        ..TrainConfig::default()
    };
    let exp = run_experiment(&protocol, RouteNetConfig::default(), &train_cfg, true)
        .unwrap_or_else(|e| panic!("training failed: {e}"));

    let sample = &exp.data.eval_geant2[sample_idx.min(exp.data.eval_geant2.len() - 1)];
    let top = top_n_paths_by_delay(&exp.model, sample, top_n);

    println!("# fig4: Top-{top_n} paths with more (predicted) delay");
    println!(
        "# topology=Geant2 (unseen), intensity={:.3}",
        sample.intensity
    );
    println!("rank,src,dst,predicted_delay_ms,simulated_delay_ms,hops,route");
    for (rank, (s, d, pred, truth)) in top.iter().enumerate() {
        let (s, d) = (NodeId(*s), NodeId(*d));
        let route: Vec<String> = sample
            .scenario
            .routing
            .node_path(&sample.scenario.graph, s, d)
            .unwrap()
            .iter()
            .map(|n| n.to_string())
            .collect();
        println!(
            "{},{},{},{:.2},{:.2},{},{}",
            rank + 1,
            s.0,
            d.0,
            pred * 1e3,
            truth * 1e3,
            sample.scenario.routing.hops(s, d),
            route.join(">")
        );
    }

    // Ranking quality: how many of the model's top-N are in the true top-N?
    let mut by_truth: Vec<(usize, f64)> = sample
        .targets
        .iter()
        .enumerate()
        .map(|(i, t)| (i, t.delay_s))
        .collect();
    by_truth.sort_by(|a, b| b.1.total_cmp(&a.1));
    let truth_top: std::collections::HashSet<usize> =
        by_truth.iter().take(top_n).map(|(i, _)| *i).collect();
    let pairs = sample.scenario.pairs();
    let hits = top
        .iter()
        .filter(|(s, d, _, _)| {
            pairs
                .iter()
                .position(|(a, b)| a.0 == *s && b.0 == *d)
                .is_some_and(|i| truth_top.contains(&i))
        })
        .count();
    eprintln!("# top-{top_n} overlap with ground truth: {hits}/{top_n}");
}
