//! Pilot run: small-scale end-to-end sanity check with timing breakdown.
//!
//! Usage: `cargo run -p routenet-bench --release --bin pilot -- [--scale f]
//! [--epochs n] [--seed n]`

use routenet_bench::{interrupt, run_experiment_with_control, scaled_protocol, summary_row, Args};
use routenet_core::prelude::*;

fn main() {
    let args = Args::from_env();
    let scale = args.get_or("scale", 0.25f64);
    let seed = args.get_or("seed", 1u64);
    let protocol = scaled_protocol(scale, seed);
    let train_cfg = TrainConfig {
        epochs: args.get_or("epochs", 10usize),
        verbose: true,
        checkpoint_path: args.get("checkpoint").map(str::to_string),
        resume_from: args.get("resume-from").map(str::to_string),
        ..TrainConfig::default()
    };
    // Ctrl-C checkpoints (when --checkpoint is set) and exits cleanly.
    let control = interrupt::ctrl_c_control();
    let exp = run_experiment_with_control(
        &protocol,
        RouteNetConfig::default(),
        &train_cfg,
        true,
        &control,
    )
    .unwrap_or_else(|e| panic!("training failed: {e}"));
    if exp.report.interrupted {
        eprintln!("# interrupted; exiting after checkpoint");
        return;
    }

    let mm1 = Mm1Baseline::default();
    for (name, set) in [
        ("NSFNET (seen)", &exp.data.eval_nsfnet),
        ("Synth-50 (seen)", &exp.data.eval_synth),
        ("Geant2 (UNSEEN)", &exp.data.eval_geant2),
    ] {
        let rn = collect_predictions(&exp.model, set);
        let qa = collect_predictions(&mm1, set);
        println!(
            "{}",
            summary_row(&format!("RouteNet {name}"), &rn.delay_summary())
        );
        println!(
            "{}",
            summary_row(&format!("M/M/1    {name}"), &qa.delay_summary())
        );
    }
    println!(
        "# gen {:.1}s  train {:.1}s  ({} train samples, {} epochs)",
        exp.gen_seconds,
        exp.train_seconds,
        exp.data.train.len(),
        train_cfg.epochs
    );
}
