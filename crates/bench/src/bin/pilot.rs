//! Pilot run: small-scale end-to-end sanity check with timing breakdown.
//!
//! Usage: `cargo run -p routenet-bench --release --bin pilot -- [--scale f]
//! [--epochs n] [--seed n]`

use routenet_bench::{interrupt, run_experiment_with_control, scaled_protocol, summary_row, Args};
use routenet_core::prelude::*;
use routenet_obs::Telemetry;
use std::collections::BTreeMap;

fn main() {
    let args = Args::from_env();
    let scale = args.get_or("scale", 0.25f64);
    let seed = args.get_or("seed", 1u64);
    let protocol = scaled_protocol(scale, seed);
    let tel_path = args.get("telemetry").unwrap_or("pilot.telemetry.jsonl");
    let tel = if args.get("no-telemetry").is_some() {
        Telemetry::disabled()
    } else {
        Telemetry::to_file("pilot", &format!("scale={scale} seed={seed}"), tel_path)
    };
    let train_cfg = TrainConfig {
        epochs: args.get_or("epochs", 10usize),
        verbose: true,
        checkpoint_path: args.get("checkpoint").map(str::to_string),
        resume_from: args.get("resume-from").map(str::to_string),
        telemetry: tel.clone(),
        ..TrainConfig::default()
    };
    // Ctrl-C checkpoints (when --checkpoint is set) and exits cleanly.
    let control = interrupt::ctrl_c_control();
    let exp = run_experiment_with_control(
        &protocol,
        RouteNetConfig::default(),
        &train_cfg,
        true,
        &control,
    )
    .unwrap_or_else(|e| panic!("training failed: {e}"));
    if exp.report.interrupted {
        eprintln!("# interrupted; exiting after checkpoint");
        if let Err(e) = tel.finish() {
            eprintln!("warning: telemetry log incomplete: {e}");
        }
        return;
    }

    let mm1 = Mm1Baseline::default();
    let mut rn_evals = BTreeMap::new();
    for (name, set) in [
        ("NSFNET (seen)", &exp.data.eval_nsfnet),
        ("Synth-50 (seen)", &exp.data.eval_synth),
        ("Geant2 (UNSEEN)", &exp.data.eval_geant2),
    ] {
        let rn = collect_predictions(&exp.model, set);
        let qa = collect_predictions(&mm1, set);
        println!(
            "{}",
            summary_row(&format!("RouteNet {name}"), &rn.delay_summary())
        );
        println!(
            "{}",
            summary_row(&format!("M/M/1    {name}"), &qa.delay_summary())
        );
        rn_evals.insert(name.to_string(), rn);
    }
    emit_eval_telemetry(&tel, "routenet/", &rn_evals);
    println!(
        "# gen {:.1}s  train {:.1}s  ({} train samples, {} epochs)",
        exp.gen_seconds,
        exp.train_seconds,
        exp.data.train.len(),
        train_cfg.epochs
    );
    if tel.enabled() {
        eprint!("{}", tel.summary_table());
        match tel.finish() {
            Ok(()) => eprintln!("# telemetry -> {tel_path}"),
            Err(e) => eprintln!("warning: telemetry log incomplete: {e}"),
        }
    }
}
