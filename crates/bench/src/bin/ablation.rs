//! **A1 ablation** — the paper notes "we optimize a set of hyperparameters
//! to adapt the model to scenarios with larger topologies" without listing
//! them. This binary sweeps the two structural knobs (message-passing
//! iterations T, state dimensionality) and reports evaluation error per
//! configuration, including on the unseen topology.
//!
//! ```text
//! cargo run -p routenet-bench --release --bin ablation -- \
//!     [--scale 0.5] [--epochs 20] [--seed 1]
//! ```

use routenet_bench::{scaled_protocol, Args};
use routenet_core::prelude::*;
use routenet_dataset::split::generate_paper_datasets;
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let scale = args.get_or("scale", 0.5f64);
    let seed = args.get_or("seed", 1u64);
    let epochs = args.get_or("epochs", 20usize);
    let protocol = scaled_protocol(scale, seed);

    eprintln!("# generating shared datasets...");
    let data = generate_paper_datasets(&protocol);
    let train_cfg = TrainConfig {
        epochs,
        ..TrainConfig::default()
    };

    println!("# ablation: eval median relative delay error vs architecture knobs");
    println!("t_iterations,state_dim,params,train_s,medRE_seen,medRE_unseen");
    // Sweep T with the default dims, then dims with the default T.
    let mut configs: Vec<(usize, usize)> = vec![(1, 16), (2, 16), (4, 16), (8, 16)];
    configs.extend([(4, 8), (4, 24), (4, 32)]);
    for (t, dim) in configs {
        let cfg = RouteNetConfig {
            link_state_dim: dim,
            path_state_dim: dim,
            readout_hidden: 2 * dim,
            t_iterations: t,
            predict_jitter: true,
            predict_drops: false,
            seed: 2019,
        };
        let mut model = RouteNet::new(cfg);
        let t0 = Instant::now();
        train(&mut model, &data.train, &data.val, &train_cfg)
            .unwrap_or_else(|e| panic!("training failed for T={t} dim={dim}: {e}"));
        let train_s = t0.elapsed().as_secs_f64();
        let mut seen = collect_predictions(&model, &data.eval_nsfnet);
        seen.extend(&collect_predictions(&model, &data.eval_synth));
        let unseen = collect_predictions(&model, &data.eval_geant2);
        println!(
            "{t},{dim},{},{train_s:.1},{:.4},{:.4}",
            model.n_parameters(),
            seen.delay_summary()
                .expect("evaluation sets are non-empty")
                .median_re,
            unseen
                .delay_summary()
                .expect("evaluation sets are non-empty")
                .median_re
        );
    }
    println!("# expected shape: T=1 is clearly insufficient (information cannot make a");
    println!("# full path->link->path round trip); the optimal depth grows with the");
    println!("# training budget (T=2 wins at small scale, deeper models need more data),");
    println!("# and at fixed T wider states keep helping until overfitting.");
}
