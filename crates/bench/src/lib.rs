//! # routenet-bench
//!
//! Shared harness behind the figure/table binaries. Each binary regenerates
//! one artifact of the paper's evaluation:
//!
//! | Binary   | Paper artifact |
//! |----------|----------------|
//! | `fig2`   | Regression plot of predicted vs. true delay (Geant2 sample) |
//! | `fig3`   | CDF of relative error per evaluation topology |
//! | `fig4`   | Top-10 paths with more delay |
//! | `table1` | Generalization summary: RouteNet vs M/M/1 vs FNN per topology |
//! | `cost`   | Inference vs packet-level simulation wall-clock |
//! | `ablation` | Error vs T iterations and state dims |
//! | `varsize` | Error vs topology size on fresh 10..=50-node graphs |
//! | `report` | Everything above, trained once, written to `results/` |
//! | `train-model` / `predict` / `probe` / `pilot` | File-based model tooling and dev checks |
//!
//! All binaries accept `--scale <f>` (dataset-size multiplier), `--epochs
//! <n>`, `--seed <n>` and print machine-readable series to stdout.

#![warn(missing_docs)]

pub mod plot;

use routenet_core::prelude::*;
use routenet_dataset::split::{generate_paper_datasets, PaperDatasets, ProtocolConfig};
use std::time::Instant;

/// Minimal CLI flag parser: `--key value` pairs, all optional.
#[derive(Debug, Clone, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parse from `std::env::args`, skipping the binary name.
    pub fn from_env() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        Self::from_slice(&argv)
    }

    /// Parse from an explicit list (used by tests).
    pub fn from_slice(argv: &[String]) -> Self {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i].trim_start_matches("--").to_string();
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                pairs.push((key, argv[i + 1].clone()));
                i += 2;
            } else {
                pairs.push((key, "true".into()));
                i += 1;
            }
        }
        Args { pairs }
    }

    /// Look up a flag value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parse a flag as `T`, falling back to `default`.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Scaled paper protocol: `scale = 1.0` is the laptop default; the paper's
/// full scale corresponds to roughly `scale = 5000`.
pub fn scaled_protocol(scale: f64, seed: u64) -> ProtocolConfig {
    let base = ProtocolConfig::default();
    let mul = |n: usize| ((n as f64 * scale).round() as usize).max(1);
    ProtocolConfig {
        train_per_topology: mul(base.train_per_topology),
        val_per_topology: mul(base.val_per_topology),
        eval_per_topology: mul(base.eval_per_topology),
        eval_geant2: mul(base.eval_geant2),
        seed,
        ..base
    }
}

/// End-to-end experiment context shared by the figure binaries: generated
/// datasets plus a RouteNet trained per the paper's protocol.
pub struct Experiment {
    /// The generated datasets.
    pub data: PaperDatasets,
    /// The trained model.
    pub model: RouteNet,
    /// The training report.
    pub report: TrainReport,
    /// Wall-clock seconds spent generating data.
    pub gen_seconds: f64,
    /// Wall-clock seconds spent training.
    pub train_seconds: f64,
}

/// Generate datasets and train RouteNet. `verbose` prints progress to stderr.
pub fn run_experiment(
    protocol: &ProtocolConfig,
    model_cfg: RouteNetConfig,
    train_cfg: &TrainConfig,
    verbose: bool,
) -> Result<Experiment, TrainError> {
    run_experiment_with_control(
        protocol,
        model_cfg,
        train_cfg,
        verbose,
        &TrainControl::new(),
    )
}

/// [`run_experiment`] with a [`TrainControl`] so callers (e.g. binaries that
/// install a Ctrl-C handler via [`interrupt::ctrl_c_control`]) can convert
/// interruption into a clean checkpoint-and-exit.
pub fn run_experiment_with_control(
    protocol: &ProtocolConfig,
    model_cfg: RouteNetConfig,
    train_cfg: &TrainConfig,
    verbose: bool,
    control: &TrainControl,
) -> Result<Experiment, TrainError> {
    if verbose {
        eprintln!(
            "# generating datasets: {} train/topology, {} eval/topology, {} geant2",
            protocol.train_per_topology, protocol.eval_per_topology, protocol.eval_geant2
        );
    }
    // Single wiring point for the bins: the trainer's telemetry handle is
    // threaded into dataset generation, so enabling telemetry on TrainConfig
    // instruments the whole experiment.
    let mut protocol = protocol.clone();
    protocol.telemetry = train_cfg.telemetry.clone();
    let t0 = Instant::now();
    let data = generate_paper_datasets(&protocol);
    let gen_seconds = t0.elapsed().as_secs_f64();
    if verbose {
        eprintln!("# generated in {gen_seconds:.1}s; training...");
    }
    let mut model = RouteNet::new(model_cfg);
    let t1 = Instant::now();
    let report = train_with_control(&mut model, &data.train, &data.val, train_cfg, control)?;
    let train_seconds = t1.elapsed().as_secs_f64();
    if verbose {
        eprintln!(
            "# trained in {train_seconds:.1}s; best epoch {} (loss {:.5})",
            report.best_epoch, report.best_loss
        );
        if report.interrupted {
            eprintln!("# training interrupted; state checkpointed at the last epoch boundary");
        }
        for r in &report.recoveries {
            eprintln!(
                "# recovered from {} at epoch {} (lr {:.2e} -> {:.2e})",
                r.reason, r.epoch, r.lr_before, r.lr_after
            );
        }
    }
    Ok(Experiment {
        data,
        model,
        report,
        gen_seconds,
        train_seconds,
    })
}

/// Cooperative Ctrl-C handling for long-running training binaries: the
/// first SIGINT sets the shared stop flag so the trainer checkpoints and
/// exits cleanly at the next batch boundary instead of losing the run. A
/// second SIGINT means the user wants out *now*: the handler exits
/// immediately with status 130 (128 + SIGINT), skipping the graceful path.
pub mod interrupt {
    use routenet_core::TrainControl;
    use std::sync::atomic::AtomicBool;
    use std::sync::{Arc, OnceLock};

    static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

    /// Conventional exit status for death-by-SIGINT (128 + signal 2).
    pub const SIGINT_EXIT_CODE: i32 = 130;

    #[cfg(unix)]
    extern "C" fn handle_sigint(_signum: i32) {
        // Async-signal-safe: a single atomic swap on an already-initialized
        // flag (ctrl_c_control initializes it before installing the handler),
        // and on the escalation path `_exit` — which, unlike `std::process::
        // exit`, runs no atexit hooks or destructors and is on POSIX's
        // async-signal-safe list.
        if let Some(flag) = FLAG.get() {
            if flag.swap(true, std::sync::atomic::Ordering::SeqCst) {
                // Second Ctrl-C: the graceful shutdown is taking too long
                // (or is stuck in a retry loop) — bail out immediately.
                unsafe extern "C" {
                    fn _exit(status: i32) -> !;
                }
                unsafe { _exit(SIGINT_EXIT_CODE) }
            }
        }
    }

    /// A [`TrainControl`] whose stop flag is set by the first SIGINT
    /// (Ctrl-C); a second SIGINT exits immediately with
    /// [`SIGINT_EXIT_CODE`]. The handler is installed once; repeated calls
    /// share the same flag. On non-Unix platforms the control is returned
    /// without a handler.
    pub fn ctrl_c_control() -> TrainControl {
        let flag = FLAG.get_or_init(|| Arc::new(AtomicBool::new(false)));
        #[cfg(unix)]
        {
            const SIGINT: i32 = 2;
            // glibc/musl signal(2); typed handler avoids any pointer casts.
            unsafe extern "C" {
                fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
            }
            unsafe {
                signal(SIGINT, handle_sigint);
            }
        }
        TrainControl::with_flag(Arc::clone(flag))
    }
}

/// Format an evaluation summary as one table row. An empty evaluation
/// (`None`: every flow carried the unobserved sentinel) renders as an
/// explicit "no data" row instead of panicking upstream.
pub fn summary_row(label: &str, s: &Option<EvalSummary>) -> String {
    match s {
        Some(s) => format!(
            "{label:<22} n={:<7} MAE={:.4}s RMSE={:.4}s MRE={:.3} medRE={:.3} p95RE={:.3} r={:.3} R2={:.3}",
            s.n, s.mae, s.rmse, s.mre, s.median_re, s.p95_re, s.pearson_r, s.r2
        ),
        None => format!("{label:<22} (no observed flows)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_flags_and_defaults() {
        let args = Args::from_slice(&[
            "--scale".into(),
            "2.5".into(),
            "--verbose".into(),
            "--epochs".into(),
            "7".into(),
        ]);
        assert_eq!(args.get_or("scale", 1.0f64), 2.5);
        assert_eq!(args.get_or("epochs", 3usize), 7);
        assert_eq!(args.get("verbose"), Some("true"));
        assert_eq!(args.get_or("seed", 42u64), 42);
    }

    #[test]
    fn later_flags_win() {
        let args = Args::from_slice(&["--x".into(), "1".into(), "--x".into(), "2".into()]);
        assert_eq!(args.get_or("x", 0i32), 2);
    }

    #[test]
    fn scaled_protocol_scales_counts() {
        let p = scaled_protocol(0.5, 9);
        let base = ProtocolConfig::default();
        assert_eq!(p.train_per_topology, base.train_per_topology / 2);
        assert_eq!(p.seed, 9);
        // never zero
        let tiny = scaled_protocol(0.0001, 1);
        assert!(tiny.train_per_topology >= 1);
    }
}
