//! Terminal plotting: ASCII scatter plots and CDF curves, so the figure
//! binaries show the paper's plots directly in the terminal next to their
//! CSV output.

/// Render a scatter plot of `(x, y)` points into a `width x height`
/// character grid with axes and ranges. Also draws the `y = x` diagonal
/// (as `.`), which is the ideal line of Fig. 2's regression plot.
pub fn scatter(points: &[(f64, f64)], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 8, "plot area too small");
    if points.is_empty() {
        return "(no data)\n".to_string();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in points {
        lo = lo.min(x).min(y);
        hi = hi.max(x).max(y);
    }
    if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
        hi = lo + 1.0;
    }
    let pad = (hi - lo) * 0.03;
    let (lo, hi) = (lo - pad, hi + pad);
    let mut grid = vec![vec![b' '; width]; height];
    // Diagonal y = x. The row index depends on the column, so this cannot
    // be an iterator chain over `grid`.
    #[allow(clippy::needless_range_loop)]
    for c in 0..width {
        let x = lo + (hi - lo) * (c as f64 + 0.5) / width as f64;
        let r = ((hi - x) / (hi - lo) * height as f64) as usize;
        if r < height {
            grid[r][c] = b'.';
        }
    }
    // Points (x: truth, y: prediction).
    for &(x, y) in points {
        let c = (((x - lo) / (hi - lo)) * width as f64) as usize;
        let r = ((hi - y) / (hi - lo) * height as f64) as usize;
        if r < height && c < width {
            grid[r][c] = match grid[r][c] {
                b' ' | b'.' => b'o',
                b'o' => b'O',
                _ => b'@',
            };
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{hi:9.3} |")
        } else if i == height - 1 {
            format!("{lo:9.3} |")
        } else {
            "          |".to_string()
        };
        out.push_str(&label);
        // lint: allow(panic, reason = "grid cells only ever hold ASCII glyphs written by this module")
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        out.push('\n');
    }
    out.push_str(&format!(
        "          +{}\n           {:<w$.3}{:>w2$.3}\n",
        "-".repeat(width),
        lo,
        hi,
        w = width / 2,
        w2 = width - width / 2
    ));
    out
}

/// Render one or more CDF series (as produced by
/// `routenet_core::metrics::cdf_points`) on a shared `width x height` grid.
/// Series are drawn with distinct glyphs in order: `o`, `x`, `+`, `*`.
pub fn cdf_chart(series: &[(&str, &[(f64, f64)])], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 8, "plot area too small");
    let glyphs = [b'o', b'x', b'+', b'*'];
    let mut xmax = 0.0f64;
    for (_, pts) in series {
        for &(x, _) in pts.iter() {
            xmax = xmax.max(x);
        }
    }
    // Clip the x-axis at the 2x the largest p95-ish point for readability.
    let xmax = if xmax > 0.0 { xmax.min(2.0) } else { 1.0 };
    let mut grid = vec![vec![b' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let g = glyphs[si % glyphs.len()];
        for &(x, f) in pts.iter() {
            if x > xmax {
                continue;
            }
            let c = ((x / xmax) * (width - 1) as f64) as usize;
            let r = ((1.0 - f) * (height - 1) as f64) as usize;
            grid[r][c] = g;
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let frac = 1.0 - i as f64 / (height - 1) as f64;
        out.push_str(&format!("{frac:5.2} |"));
        // lint: allow(panic, reason = "grid cells only ever hold ASCII glyphs written by this module")
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        out.push('\n');
    }
    out.push_str(&format!(
        "      +{}\n       0{:>w$.2}\n",
        "-".repeat(width),
        xmax,
        w = width - 1
    ));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!(
            "       {} = {}\n",
            glyphs[si % glyphs.len()] as char,
            name
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_renders_points_and_diagonal() {
        let pts = vec![(0.1, 0.1), (0.5, 0.6), (0.9, 0.85)];
        let s = scatter(&pts, 40, 12);
        assert!(s.contains('o') || s.contains('O'));
        assert!(s.contains('.'));
        assert!(s.lines().count() >= 12);
    }

    #[test]
    fn scatter_handles_empty_and_degenerate() {
        assert_eq!(scatter(&[], 40, 12), "(no data)\n");
        // all-identical points must not divide by zero
        let s = scatter(&[(0.5, 0.5), (0.5, 0.5)], 40, 12);
        assert!(s.contains('o') || s.contains('O'));
    }

    #[test]
    #[should_panic(expected = "plot area too small")]
    fn scatter_rejects_tiny_area() {
        scatter(&[(0.0, 0.0)], 5, 3);
    }

    #[test]
    fn cdf_chart_draws_all_series() {
        let a: Vec<(f64, f64)> = (0..20)
            .map(|i| (i as f64 * 0.01, i as f64 / 19.0))
            .collect();
        let b: Vec<(f64, f64)> = (0..20)
            .map(|i| (i as f64 * 0.03, i as f64 / 19.0))
            .collect();
        let s = cdf_chart(&[("fast", &a), ("slow", &b)], 50, 14);
        assert!(s.contains('o'));
        assert!(s.contains('x'));
        assert!(s.contains("o = fast"));
        assert!(s.contains("x = slow"));
        // y-axis labels from 1.00 down to 0.00
        assert!(s.contains(" 1.00 |"));
        assert!(s.contains(" 0.00 |"));
    }

    #[test]
    fn cdf_chart_clips_long_tails() {
        let a: Vec<(f64, f64)> = vec![(0.01, 0.5), (50.0, 1.0)]; // huge tail
        let s = cdf_chart(&[("t", &a)], 40, 10);
        // x-axis capped at 2.0
        assert!(s.contains("2.00") || s.contains("2.0"));
    }
}
