//! NDJSON wire format: one JSON object per line, in both directions.
//!
//! A request line is either a **query** (`scenario` present) or a
//! **control command** (`cmd` present):
//!
//! ```text
//! {"id": 7, "scenario": {"graph": ..., "routing": ..., "traffic": ...}}
//! {"cmd": "shutdown"}
//! ```
//!
//! Every query gets exactly one response line, carrying the echoed `id` and
//! either per-pair predictions in canonical pair order or a typed error
//! string (never both):
//!
//! ```text
//! {"id": 7, "predictions": [{"delay_s": ..., ...}, ...], "error": null}
//! {"id": 8, "predictions": null, "error": "query shed: queue full (cap 256)"}
//! ```
//!
//! Non-finite floats serialize as `null` per the workspace's JSON dialect
//! (a predictor without a jitter head reports `jitter_s2: null`), and the
//! `float_roundtrip` feature keeps every finite `f64` bit-exact across a
//! serialize/deserialize cycle — the byte-identical served-vs-offline diff
//! in `scripts/check.sh` depends on both.

use routenet_core::{Prediction, Scenario};
use serde::{Deserialize, Serialize};

/// One request line: a what-if query or a control command.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen query id, echoed verbatim on the response so clients
    /// can match answers to in-flight queries.
    #[serde(default)]
    pub id: u64,
    /// The what-if scenario to predict. `None` for control commands.
    #[serde(default)]
    pub scenario: Option<Scenario>,
    /// Control command; `"shutdown"` drains the queue and stops the daemon.
    #[serde(default)]
    pub cmd: Option<String>,
}

/// One response line. Exactly one of `predictions` / `error` is set, except
/// for control-command acknowledgements where both are `None`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Response {
    /// Echo of the request id (0 when the request was too malformed to
    /// carry one).
    #[serde(default)]
    pub id: u64,
    /// Per-pair KPI predictions in canonical pair order.
    #[serde(default)]
    pub predictions: Option<Vec<Prediction>>,
    /// Typed error description when the query could not be answered.
    #[serde(default)]
    pub error: Option<String>,
}

impl Response {
    /// Successful answer for query `id`.
    pub fn ok(id: u64, predictions: Vec<Prediction>) -> Self {
        Response {
            id,
            predictions: Some(predictions),
            error: None,
        }
    }

    /// Failed answer for query `id`.
    pub fn err(id: u64, error: impl Into<String>) -> Self {
        Response {
            id,
            predictions: None,
            error: Some(error.into()),
        }
    }

    /// Control-command acknowledgement.
    pub fn ack(id: u64) -> Self {
        Response {
            id,
            predictions: None,
            error: None,
        }
    }

    /// Serialize to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        // lint: allow(panic, reason = "in-memory numeric data always serializes")
        serde_json::to_string(self).expect("response serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parses_query_and_command_forms() {
        let r: Request = serde_json::from_str(r#"{"cmd": "shutdown"}"#).unwrap();
        assert_eq!(r.cmd.as_deref(), Some("shutdown"));
        assert!(r.scenario.is_none());
        assert_eq!(r.id, 0);

        let r: Request = serde_json::from_str(r#"{"id": 42}"#).unwrap();
        assert_eq!(r.id, 42);
        assert!(r.scenario.is_none() && r.cmd.is_none());
    }

    #[test]
    fn response_roundtrips_nan_as_null() {
        let line = Response::ok(
            3,
            vec![Prediction {
                delay_s: 0.25,
                jitter_s2: f64::NAN,
                drop_prob: f64::NAN,
            }],
        )
        .to_line();
        assert!(line.contains("null"), "{line}");
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.id, 3);
        let p = &back.predictions.unwrap()[0];
        assert_eq!(p.delay_s.to_bits(), 0.25f64.to_bits());
        assert!(p.jitter_s2.is_nan() && p.drop_prob.is_nan());
        assert!(back.error.is_none());
    }

    #[test]
    fn error_response_carries_no_predictions() {
        let line = Response::err(9, "queue full").to_line();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert!(back.predictions.is_none());
        assert_eq!(back.error.as_deref(), Some("queue full"));
    }
}
