//! The serving daemon: load a model once, answer NDJSON what-if queries
//! over TCP and/or stdin with micro-batched RouteNet inference.
//!
//! ```text
//! cargo run -p routenet-serve --release --bin routenet-serve -- \
//!     --model model.json --listen 127.0.0.1:0 --port-file serve.port \
//!     [--stdin] [--queue-cap 256] [--max-batch 32] [--batch-window-us 1000] \
//!     [--cache-cap 8] [--telemetry serve.telemetry.jsonl]
//! ```
//!
//! With `--listen`, the resolved port (useful with `:0`) is written to
//! `--port-file` once the socket is bound, so scripts can start the daemon
//! on an ephemeral port and discover it race-free. With `--stdin`, queries
//! are read from stdin and responses written to stdout until EOF or a
//! `{"cmd": "shutdown"}` line. Both can run at once; either's shutdown
//! stops the daemon.

use routenet_faults::FsHandle;
use routenet_obs::Telemetry;
use routenet_serve::server::{serve_pipe, serve_tcp};
use routenet_serve::{Engine, Server, ServerConfig};
use std::io::Write as _;
use std::net::TcpListener;
use std::path::Path;
use std::time::Duration;

/// Minimal `--key value` / `--flag` parser (same contract as the bench
/// harness's; replicated here because depending on the bench crate from
/// the daemon would invert the workspace layering).
struct Args(Vec<String>);

impl Args {
    fn from_env() -> Self {
        Args(std::env::args().skip(1).collect())
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == &format!("--{key}"))
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, key: &str) -> bool {
        self.0.iter().any(|a| a == &format!("--{key}"))
    }

    fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn main() {
    let args = Args::from_env();
    let Some(model_path) = args.get("model") else {
        eprintln!(
            "usage: routenet-serve --model <model.json|ckpt> [--listen <addr>] \
             [--port-file <path>] [--stdin] [--queue-cap N] [--max-batch N] \
             [--batch-window-us N] [--cache-cap N] [--telemetry <jsonl>]"
        );
        std::process::exit(2);
    };
    let cfg = ServerConfig {
        queue_cap: args.get_or("queue-cap", 256),
        max_batch: args.get_or("max-batch", 32),
        batch_window: Duration::from_micros(args.get_or("batch-window-us", 1000)),
    };
    let use_stdin = args.has("stdin");
    let listen = args.get("listen");
    if !use_stdin && listen.is_none() {
        eprintln!("routenet-serve: nothing to serve (pass --listen and/or --stdin)");
        std::process::exit(2);
    }

    let fs = FsHandle::default();
    let engine = Engine::load(&fs, Path::new(model_path), args.get_or("cache-cap", 8))
        .unwrap_or_else(|e| {
            eprintln!("routenet-serve: {model_path}: {e}");
            std::process::exit(1);
        });
    eprintln!(
        "routenet-serve: model loaded ({} params, T={}), queue_cap={} max_batch={} window={}us",
        engine.model().n_parameters(),
        engine.model().config().t_iterations,
        cfg.queue_cap,
        cfg.max_batch,
        cfg.batch_window.as_micros(),
    );

    let tel = match args.get("telemetry") {
        Some(path) => Telemetry::to_file("routenet-serve", model_path, path),
        None => Telemetry::disabled(),
    };
    let server = Server::start(engine, cfg, tel);

    // Bind the TCP front-end (if requested) before announcing readiness:
    // the port file appears only once the socket accepts connections.
    let listener = listen.map(|addr| {
        let listener = TcpListener::bind(addr).unwrap_or_else(|e| {
            eprintln!("routenet-serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        });
        let local = listener.local_addr().expect("bound socket has an address");
        eprintln!("routenet-serve: listening on {local}");
        if let Some(pf) = args.get("port-file") {
            // The port file is control-plane plumbing for scripts, not data
            // the IO seam needs to see; write-then-rename keeps it atomic.
            let tmp = format!("{pf}.tmp");
            let write = std::fs::File::create(&tmp)
                .and_then(|mut f| writeln!(f, "{}", local.port()).and_then(|()| f.flush()))
                .and_then(|()| std::fs::rename(&tmp, pf));
            if let Err(e) = write {
                eprintln!("routenet-serve: cannot write port file {pf}: {e}");
                std::process::exit(1);
            }
        }
        listener
    });

    match (listener, use_stdin) {
        (Some(listener), true) => {
            // Both front-ends at once: TCP on a scoped thread, stdin here.
            let server_ref = &server;
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    if let Err(e) = serve_tcp(listener, server_ref) {
                        eprintln!("routenet-serve: accept loop failed: {e}");
                    }
                });
                let stdin = std::io::stdin();
                if let Err(e) = serve_pipe(stdin.lock(), std::io::stdout(), server_ref) {
                    eprintln!("routenet-serve: stdin loop failed: {e}");
                }
            });
        }
        (Some(listener), false) => {
            if let Err(e) = serve_tcp(listener, &server) {
                eprintln!("routenet-serve: accept loop failed: {e}");
            }
        }
        (None, _) => {
            let stdin = std::io::stdin();
            if let Err(e) = serve_pipe(stdin.lock(), std::io::stdout(), &server) {
                eprintln!("routenet-serve: stdin loop failed: {e}");
            }
        }
    }

    let tel = server.telemetry().clone();
    if let Err(e) = server.finish() {
        eprintln!("routenet-serve: telemetry flush failed: {e}");
        std::process::exit(1);
    }
    let table = tel.summary_table();
    if !table.is_empty() {
        eprintln!("{table}");
    }
}
