//! The daemon core: bounded query queue, micro-batcher thread, and the
//! TCP / stdin front-ends.
//!
//! Threading model (no locks on the prediction path beyond the queue):
//!
//! ```text
//! conn thread 1 ──┐                     ┌── writer thread 1 (mpsc → socket)
//! conn thread 2 ──┤→ bounded queue ─→ batcher thread (owns Engine) ─→ txs
//! stdin reader  ──┘   (Mutex+Condvar)   one predict_batch per micro-batch
//! ```
//!
//! Connection threads parse, finalize, and validate queries, then enqueue
//! [`Job`]s. The single batcher thread drains up to
//! [`ServerConfig::max_batch`] jobs per [`ServerConfig::batch_window`] and
//! answers them with ONE batched forward pass. When the queue is full the
//! query is *shed* — answered immediately with a typed error — rather than
//! queued unboundedly; the transition into an overload episode emits one
//! `QueryShed` event (per-shed emission would make the O(log) file sink
//! quadratic exactly when the daemon is busiest).

use crate::engine::Engine;
use crate::wire::{Request, Response};
use routenet_core::Scenario;
use routenet_obs::{Event, Telemetry};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Telemetry metric names, in one place so the bench/validate tooling and
/// the tests agree with the daemon.
pub mod metrics {
    /// Counter: queries accepted into the queue.
    pub const QUERIES: &str = "serve.queries";
    /// Counter: responses sent (success or typed error, sheds included).
    pub const RESPONSES: &str = "serve.responses";
    /// Counter: queries shed at a full queue.
    pub const SHED: &str = "serve.shed";
    /// Histogram: enqueue-to-response latency, seconds.
    pub const LATENCY_S: &str = "serve.latency_s";
    /// Histogram: micro-batch sizes (queries per batched forward pass).
    pub const BATCH_SIZE: &str = "serve.batch_size";
}

/// Tunables of the serving loop.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Bounded queue capacity; queries arriving beyond it are shed.
    pub queue_cap: usize,
    /// Largest micro-batch handed to one batched forward pass.
    pub max_batch: usize,
    /// How long the batcher waits for more queries after the first one
    /// lands, before running a partial batch. Zero serves every query solo.
    pub batch_window: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_cap: 256,
            max_batch: 32,
            batch_window: Duration::from_millis(1),
        }
    }
}

/// One admitted query waiting for the batcher.
struct Job {
    id: u64,
    scenario: Scenario,
    tx: mpsc::Sender<String>,
    t0: Instant,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    stopped: bool,
    /// Inside an overload episode (set on first shed, cleared by the next
    /// successful admit) — gates the one-per-episode `QueryShed` event.
    shedding: bool,
    shed_total: u64,
}

struct Shared {
    state: Mutex<QueueState>,
    notify: Condvar,
    cfg: ServerConfig,
    tel: Telemetry,
}

fn lock(m: &Mutex<QueueState>) -> MutexGuard<'_, QueueState> {
    // A panicking connection thread must not poison the daemon.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What a submitted request line asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submission {
    /// A query (answered or shed) or a malformed line (answered with an
    /// error response); the connection keeps reading.
    Handled,
    /// A shutdown command: the caller should stop its read loop.
    Shutdown,
}

/// The running daemon: queue, batcher thread, telemetry.
pub struct Server {
    shared: Arc<Shared>,
    batcher: Option<thread::JoinHandle<()>>,
    started: Instant,
}

impl Server {
    /// Start the batcher thread over `engine`.
    pub fn start(engine: Engine, cfg: ServerConfig, tel: Telemetry) -> Server {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState::default()),
            notify: Condvar::new(),
            cfg,
            tel,
        });
        let batcher_shared = Arc::clone(&shared);
        let batcher = thread::spawn(move || run_batcher(engine, &batcher_shared));
        Server {
            shared,
            batcher: Some(batcher),
            started: Instant::now(),
        }
    }

    /// A cheap handle for connection threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// True once [`Server::stop`] (or a shutdown command) was issued.
    pub fn is_stopped(&self) -> bool {
        lock(&self.shared.state).stopped
    }

    /// Ask the batcher to drain the queue and exit.
    pub fn stop(&self) {
        self.shared.stop();
    }

    /// Stop, join the batcher (draining queued queries first), emit the
    /// end-of-run `Serve` digest, and flush telemetry. Returns the deferred
    /// telemetry sink failure, if any.
    #[must_use = "ignoring the result hides deferred telemetry sink failures"]
    pub fn finish(mut self) -> std::io::Result<()> {
        self.shared.stop();
        if let Some(b) = self.batcher.take() {
            // lint: allow(error-discard, reason = "a panicked batcher already printed its panic; finish must still flush telemetry")
            let _ = b.join();
        }
        let tel = &self.shared.tel;
        let wall_s = self.started.elapsed().as_secs_f64();
        let responses = tel.counter(metrics::RESPONSES);
        let lat = tel.histogram_summary(metrics::LATENCY_S);
        let batch = tel.histogram_summary(metrics::BATCH_SIZE);
        tel.emit(Event::Serve {
            queries: tel.counter(metrics::QUERIES),
            responses,
            shed: tel.counter(metrics::SHED),
            batches: batch.map_or(0, |b| b.count),
            qps: if wall_s > 0.0 {
                responses as f64 / wall_s
            } else {
                0.0
            },
            p50_latency_s: lat.map_or(0.0, |l| l.p50),
            p95_latency_s: lat.map_or(0.0, |l| l.p95),
            mean_batch: batch.map_or(0.0, |b| b.mean),
            max_batch: batch.map_or(0, |b| b.max as u64),
            wall_s,
        });
        tel.finish()
    }

    /// The daemon's telemetry handle (for probes and summaries).
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.tel
    }
}

impl Shared {
    fn stop(&self) {
        lock(&self.state).stopped = true;
        self.notify.notify_all();
    }
}

/// Cloneable queue endpoint used by connection threads.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Parse one request line and act on it. Query responses (including
    /// parse/validation errors and sheds) are delivered through `tx`;
    /// blank lines are ignored. Returns [`Submission::Shutdown`] for a
    /// shutdown command, after acknowledging it on `tx`.
    pub fn submit_line(&self, line: &str, tx: &mpsc::Sender<String>) -> Submission {
        let line = line.trim();
        if line.is_empty() {
            return Submission::Handled;
        }
        let req: Request = match serde_json::from_str(line) {
            Ok(r) => r,
            Err(e) => {
                self.respond(tx, Response::err(0, format!("bad request: {e}")));
                return Submission::Handled;
            }
        };
        if let Some(cmd) = req.cmd.as_deref() {
            return match cmd {
                "shutdown" => {
                    self.respond(tx, Response::ack(req.id));
                    self.shared.stop();
                    Submission::Shutdown
                }
                other => {
                    self.respond(
                        tx,
                        Response::err(req.id, format!("unknown command `{other}`")),
                    );
                    Submission::Handled
                }
            };
        }
        let Some(mut scenario) = req.scenario else {
            self.respond(tx, Response::err(req.id, "query carries no scenario"));
            return Submission::Handled;
        };
        scenario.finalize();
        if let Err(e) = scenario.validate() {
            self.respond(tx, Response::err(req.id, format!("invalid scenario: {e}")));
            return Submission::Handled;
        }
        if scenario.n_pairs() == 0 {
            self.respond(tx, Response::err(req.id, "scenario routes no pairs"));
            return Submission::Handled;
        }
        self.enqueue(req.id, scenario, tx);
        Submission::Handled
    }

    /// Admit a validated query or shed it at a full queue.
    fn enqueue(&self, id: u64, scenario: Scenario, tx: &mpsc::Sender<String>) {
        let cap = self.shared.cfg.queue_cap;
        let shed_msg = {
            let mut st = lock(&self.shared.state);
            if st.stopped {
                Some("server is shutting down".to_string())
            } else if st.jobs.len() >= cap {
                st.shed_total += 1;
                let first_of_episode = !st.shedding;
                st.shedding = true;
                let shed_total = st.shed_total;
                let queue_len = st.jobs.len();
                drop(st);
                self.shared.tel.counter_add(metrics::SHED, 1);
                if first_of_episode {
                    self.shared.tel.emit(Event::QueryShed {
                        queue_len,
                        shed_total,
                    });
                }
                Some(format!("query shed: queue full (cap {cap})"))
            } else {
                st.jobs.push_back(Job {
                    id,
                    scenario,
                    tx: tx.clone(),
                    t0: Instant::now(),
                });
                st.shedding = false;
                None
            }
        };
        match shed_msg {
            Some(msg) => self.respond(tx, Response::err(id, msg)),
            None => {
                self.shared.tel.counter_add(metrics::QUERIES, 1);
                self.shared.notify.notify_one();
            }
        }
    }

    fn respond(&self, tx: &mpsc::Sender<String>, resp: Response) {
        self.shared.tel.counter_add(metrics::RESPONSES, 1);
        // lint: allow(error-discard, reason = "a disconnected client cannot receive its response; dropping it is the only option")
        let _ = tx.send(resp.to_line());
    }
}

/// The batcher loop: wait for queries, gather a micro-batch, predict,
/// respond. Exits when the server is stopped AND the queue is drained.
fn run_batcher(mut engine: Engine, shared: &Shared) {
    loop {
        let batch: Vec<Job> = {
            let mut st = lock(&shared.state);
            loop {
                if !st.jobs.is_empty() {
                    break;
                }
                if st.stopped {
                    return;
                }
                st = shared
                    .notify
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            // Micro-batch window: give concurrently arriving queries a
            // moment to join this batch instead of forcing one forward
            // pass per query.
            let deadline = Instant::now() + shared.cfg.batch_window;
            while st.jobs.len() < shared.cfg.max_batch && !st.stopped {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (g, _) = shared
                    .notify
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = g;
            }
            let n = st.jobs.len().min(shared.cfg.max_batch);
            st.jobs.drain(..n).collect()
        };
        let scenarios: Vec<&Scenario> = batch.iter().map(|j| &j.scenario).collect();
        let preds = engine.predict(&scenarios);
        shared
            .tel
            .observe_s(metrics::BATCH_SIZE, batch.len() as f64);
        for (job, p) in batch.into_iter().zip(preds) {
            shared.tel.counter_add(metrics::RESPONSES, 1);
            // lint: allow(error-discard, reason = "a disconnected client cannot receive its response; dropping it is the only option")
            let _ = job.tx.send(Response::ok(job.id, p).to_line());
            shared
                .tel
                .observe_s(metrics::LATENCY_S, job.t0.elapsed().as_secs_f64());
        }
    }
}

/// Accept loop: serve NDJSON connections until the server stops. Each
/// connection gets a reader (this thread's child) and a writer thread; a
/// hostile or malformed peer only ever affects its own connection.
#[must_use = "ignoring the result hides accept-loop failures"]
pub fn serve_tcp(listener: TcpListener, server: &Server) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut conns: Vec<thread::JoinHandle<()>> = Vec::new();
    while !server.is_stopped() {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let handle = server.handle();
                conns.push(thread::spawn(move || {
                    // lint: allow(error-discard, reason = "a connection dying mid-dialogue is the peer's business; the daemon keeps serving")
                    let _ = serve_connection(stream, &handle);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
        conns.retain(|c| !c.is_finished());
    }
    // Connections still open at shutdown belong to clients that already got
    // every response they asked for (the batcher drains before exit); they
    // end when the peer hangs up or the process exits.
    Ok(())
}

fn serve_connection(stream: std::net::TcpStream, handle: &ServerHandle) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let (tx, rx) = mpsc::channel::<String>();
    let mut out = stream.try_clone()?;
    let writer = thread::spawn(move || {
        while let Ok(line) = rx.recv() {
            if out.write_all(line.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
                break;
            }
            if out.flush().is_err() {
                break;
            }
        }
    });
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break, // mid-line disconnect or garbage bytes
        };
        if handle.submit_line(&line, &tx) == Submission::Shutdown {
            break;
        }
    }
    drop(tx); // writer drains pending responses, then exits
              // lint: allow(error-discard, reason = "writer thread cannot panic; join failure would only repeat a peer disconnect")
    let _ = writer.join();
    Ok(())
}

/// Stdin/stdout mode: the same daemon over process pipes, for environments
/// without a network namespace. Reads queries from `input` until EOF or a
/// shutdown command; responses go to `output` in completion order.
#[must_use = "ignoring the result hides input-stream failures"]
pub fn serve_pipe(
    input: impl BufRead,
    mut output: impl Write + Send + 'static,
    server: &Server,
) -> std::io::Result<()> {
    let (tx, rx) = mpsc::channel::<String>();
    let writer = thread::spawn(move || {
        while let Ok(line) = rx.recv() {
            if writeln!(output, "{line}").is_err() {
                break;
            }
            if output.flush().is_err() {
                break;
            }
        }
    });
    let handle = server.handle();
    for line in input.lines() {
        let line = line?;
        if handle.submit_line(&line, &tx) == Submission::Shutdown {
            break;
        }
    }
    // Wait for every admitted query's response before closing the pipe:
    // stopping makes the batcher drain the queue and exit, and dropping tx
    // afterwards ends the writer once the drained responses are written.
    server.stop();
    drop(tx);
    // lint: allow(error-discard, reason = "writer thread cannot panic; join failure would only repeat a closed pipe")
    let _ = writer.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use routenet_core::features::Normalizer;
    use routenet_core::{RouteNet, RouteNetConfig};
    use routenet_netgraph::routing::shortest_path_routing;
    use routenet_netgraph::topology::nsfnet;
    use routenet_netgraph::TrafficMatrix;

    fn model() -> RouteNet {
        let mut m = RouteNet::new(RouteNetConfig {
            link_state_dim: 4,
            path_state_dim: 4,
            readout_hidden: 8,
            t_iterations: 2,
            predict_jitter: true,
            predict_drops: false,
            seed: 11,
        });
        m.set_normalizer(Normalizer {
            capacity_scale: 10_000.0,
            traffic_scale: 200.0,
            ..Normalizer::default()
        });
        m
    }

    fn scenario(demand: f64) -> Scenario {
        let g = nsfnet();
        let routing = shortest_path_routing(&g).unwrap();
        let mut traffic = TrafficMatrix::zeros(g.n_nodes());
        for (s, d) in g.node_pairs() {
            traffic.set_demand(s, d, demand + (s.0 * 14 + d.0) as f64);
        }
        Scenario {
            graph: g,
            routing,
            traffic,
        }
    }

    fn query_line(id: u64, sc: &Scenario) -> String {
        serde_json::to_string(&Request {
            id,
            scenario: Some(sc.clone()),
            cmd: None,
        })
        .unwrap()
    }

    fn start_server(cfg: ServerConfig) -> Server {
        Server::start(
            Engine::from_model(model(), 4),
            cfg,
            Telemetry::in_memory("serve-test", "t"),
        )
    }

    #[test]
    fn queries_get_predictions_and_shutdown_acks() {
        let server = start_server(ServerConfig::default());
        let handle = server.handle();
        let (tx, rx) = mpsc::channel();
        let sc = scenario(120.0);
        for id in 0..3u64 {
            assert_eq!(
                handle.submit_line(&query_line(id, &sc), &tx),
                Submission::Handled
            );
        }
        let mut got = Vec::new();
        for _ in 0..3 {
            let line = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            let resp: Response = serde_json::from_str(&line).unwrap();
            let preds = resp.predictions.expect("query must be answered");
            assert_eq!(preds.len(), sc.n_pairs());
            got.push(resp.id);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(
            handle.submit_line(r#"{"id": 9, "cmd": "shutdown"}"#, &tx),
            Submission::Shutdown
        );
        let ack: Response = serde_json::from_str(&rx.recv().unwrap()).unwrap();
        assert_eq!(ack.id, 9);
        assert!(ack.predictions.is_none() && ack.error.is_none());
        server.finish().unwrap();
    }

    #[test]
    fn malformed_lines_get_error_responses_not_crashes() {
        let server = start_server(ServerConfig::default());
        let handle = server.handle();
        let (tx, rx) = mpsc::channel();
        for bad in [
            "{ not json",
            r#"{"id": 1}"#,
            r#"{"id": 2, "cmd": "reboot"}"#,
            r#"{"id": 3, "scenario": {"graph": null, "routing": null, "traffic": null}}"#,
        ] {
            assert_eq!(handle.submit_line(bad, &tx), Submission::Handled);
            let resp: Response = serde_json::from_str(&rx.recv().unwrap()).unwrap();
            assert!(resp.error.is_some(), "{bad} must produce an error");
            assert!(resp.predictions.is_none());
        }
        // Blank lines are ignored without a response.
        assert_eq!(handle.submit_line("   ", &tx), Submission::Handled);
        // The daemon still serves after all that.
        let sc = scenario(90.0);
        handle.submit_line(&query_line(7, &sc), &tx);
        let resp: Response = serde_json::from_str(&rx.recv().unwrap()).unwrap();
        assert_eq!(resp.id, 7);
        assert!(resp.predictions.is_some());
        server.finish().unwrap();
    }

    #[test]
    fn full_queue_sheds_with_typed_error_and_one_episode_event() {
        // queue_cap 1 and a long window: the batcher naps while we flood.
        let server = start_server(ServerConfig {
            queue_cap: 1,
            max_batch: 8,
            batch_window: Duration::from_millis(200),
        });
        let handle = server.handle();
        let (tx, rx) = mpsc::channel();
        let sc = scenario(100.0);
        let mut sheds = 0;
        for id in 0..6u64 {
            handle.submit_line(&query_line(id, &sc), &tx);
        }
        let mut answered = 0;
        for _ in 0..6 {
            let resp: Response =
                serde_json::from_str(&rx.recv_timeout(Duration::from_secs(30)).unwrap()).unwrap();
            match resp.error {
                Some(e) => {
                    assert!(e.contains("queue full"), "{e}");
                    sheds += 1;
                }
                None => answered += 1,
            }
        }
        assert!(sheds > 0, "tiny queue must shed under a burst");
        assert!(answered > 0, "admitted queries must still be answered");
        let tel = server.telemetry().clone();
        server.finish().unwrap();
        assert_eq!(tel.counter(metrics::SHED), sheds);
        let records = tel.records();
        let shed_events: Vec<_> = records
            .iter()
            .filter(|r| r.event.kind() == "QueryShed")
            .collect();
        assert_eq!(
            shed_events.len(),
            1,
            "one uninterrupted overload episode emits exactly one event"
        );
        assert!(records.iter().any(|r| r.event.kind() == "Serve"));
    }

    #[test]
    fn pipe_mode_serves_and_drains_on_eof() {
        let server = start_server(ServerConfig::default());
        let sc = scenario(70.0);
        let mut input = String::new();
        for id in 0..4u64 {
            input.push_str(&query_line(id, &sc));
            input.push('\n');
        }
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct SharedWriter(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        serve_pipe(input.as_bytes(), SharedWriter(Arc::clone(&buf)), &server).unwrap();
        server.finish().unwrap();
        let out = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let mut ids: Vec<u64> = out
            .lines()
            .map(|l| serde_json::from_str::<Response>(l).unwrap())
            .map(|r| {
                assert!(r.predictions.is_some());
                r.id
            })
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}
