//! `routenet-serve`: a long-lived what-if prediction daemon.
//!
//! The paper's case for RouteNet is that a trained GNN answers the what-if
//! queries ("what happens to per-pair delay if this traffic matrix arrives /
//! this flow is rerouted?") that a packet-level simulator is too slow to
//! answer inside an SDN control loop (Rusek et al., SOSR 2019). This crate
//! is that control-loop surface: it loads a trained model once, keeps the
//! compiled message-passing plans of the topologies it has seen, and turns a
//! stream of concurrent scenario queries into micro-batched calls through
//! [`routenet_core::RouteNet`]'s batched forward pass.
//!
//! Design highlights (see DESIGN.md "Serving"):
//!
//! - **Wire format** ([`wire`]): newline-delimited JSON over a raw TCP
//!   socket or stdin — hand-rolled framing, zero new dependencies, the same
//!   `Scenario` JSON the dataset files use.
//! - **Plan cache** ([`cache`]): per-topology [`PathTensors`] indexings keyed
//!   by routing equality, FIFO-evicted, deterministic (no hash-order
//!   iteration anywhere — this crate is in the analyzer's RN101 scope).
//! - **Micro-batching** ([`server`]): a bounded queue feeds one batcher
//!   thread that drains up to `max_batch` queries per window and runs them
//!   as ONE batched forward pass, reusing a single arena tape.
//! - **Determinism contract**: by the batched-equivalence property
//!   (PR 7; `crates/core/tests/batched_equivalence.rs`), every query's
//!   served predictions are bitwise identical to an offline
//!   [`routenet_core::sample::KpiPredictor::predict_batch`] on the same
//!   scenario, regardless of which queries happened to share its
//!   micro-batch.
//! - **Overload**: when the bounded queue is full the daemon sheds the
//!   query with a typed error response instead of queueing unboundedly;
//!   shedding is observable via the `QueryShed` telemetry event.
//! - **Faults**: the checkpoint loads through the `routenet-faults` IO seam
//!   ([`FsHandle`]), so injected IO faults surface as typed
//!   [`ServeError`]s, never panics; malformed or hostile socket input is
//!   answered with per-query error responses.
//!
//! [`PathTensors`]: routenet_core::indexing::PathTensors
//! [`FsHandle`]: routenet_faults::FsHandle

pub mod cache;
pub mod engine;
pub mod server;
pub mod wire;

pub use cache::PlanCache;
pub use engine::{Engine, ServeError};
pub use server::{Server, ServerConfig};
pub use wire::{Request, Response};
