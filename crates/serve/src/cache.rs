//! Per-topology plan cache: compiled message-passing indexings keyed by
//! routing.
//!
//! A [`PathTensors`] indexing depends only on the routing scheme and link
//! count — not on traffic — so a stream of what-if queries against a
//! handful of network topologies (the expected control-loop workload:
//! thousands of traffic matrices, few topologies) pays the index build once
//! per topology. Lookup is a linear scan with full routing equality: the
//! cache holds at most a handful of entries, [`RoutingScheme`] equality
//! short-circuits on the first differing path, and — unlike a hash map —
//! scan order is insertion order, keeping the daemon free of hash-order
//! nondeterminism (RN101 scope).

use routenet_core::indexing::PathTensors;
use routenet_core::Scenario;
use routenet_netgraph::RoutingScheme;

/// One cached plan.
struct CacheEntry {
    n_links: usize,
    routing: RoutingScheme,
    plan: PathTensors,
}

/// FIFO-evicting cache of per-topology [`PathTensors`] plans.
pub struct PlanCache {
    cap: usize,
    /// Insertion order, oldest first — index 0 is the eviction victim.
    entries: Vec<CacheEntry>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// Cache holding at most `cap` plans (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "plan cache needs capacity for at least one plan");
        PlanCache {
            cap,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The message-passing plan for `scenario`'s routing, built on first
    /// sight and recalled (cloned) on every later query with an equal
    /// routing. The clone hands the caller an owned plan cheaper than the
    /// graph traversal that built it; `compile_with_index` wants ownership.
    pub fn plan_for(&mut self, scenario: &Scenario) -> PathTensors {
        let n_links = scenario.graph.n_links();
        if let Some(e) = self
            .entries
            .iter()
            .find(|e| e.n_links == n_links && e.routing == scenario.routing)
        {
            self.hits += 1;
            return e.plan.clone();
        }
        self.misses += 1;
        let plan = PathTensors::build(scenario);
        if self.entries.len() == self.cap {
            self.entries.remove(0);
        }
        self.entries.push(CacheEntry {
            n_links,
            routing: scenario.routing.clone(),
            plan: plan.clone(),
        });
        plan
    }

    /// Number of plans currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no plan is cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routenet_netgraph::routing::shortest_path_routing;
    use routenet_netgraph::topology::nsfnet;
    use routenet_netgraph::{generate, NodeId, TrafficMatrix};

    fn scenario_on(g: routenet_netgraph::Graph) -> Scenario {
        let routing = shortest_path_routing(&g).unwrap();
        let mut traffic = TrafficMatrix::zeros(g.n_nodes());
        traffic.set_demand(NodeId(0), NodeId(1), 500.0);
        Scenario {
            graph: g,
            routing,
            traffic,
        }
    }

    #[test]
    fn repeated_topology_hits_after_first_miss() {
        let mut cache = PlanCache::new(4);
        let sc = scenario_on(nsfnet());
        let a = cache.plan_for(&sc);
        // A different traffic matrix over the same routing is still a hit.
        let mut sc2 = sc.clone();
        sc2.traffic.set_demand(NodeId(2), NodeId(0), 900.0);
        let b = cache.plan_for(&sc2);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
        assert_eq!(a.n_paths, b.n_paths);
        assert_eq!(a.positions.len(), b.positions.len());
    }

    #[test]
    fn distinct_topologies_get_distinct_plans() {
        let mut cache = PlanCache::new(4);
        let a = cache.plan_for(&scenario_on(nsfnet()));
        let b = cache.plan_for(&scenario_on(generate::full_mesh(3)));
        assert_eq!(cache.stats(), (0, 2));
        assert_eq!(cache.len(), 2);
        assert_ne!(a.n_paths, b.n_paths);
    }

    #[test]
    fn fifo_eviction_drops_oldest() {
        let mut cache = PlanCache::new(2);
        let first = scenario_on(nsfnet());
        cache.plan_for(&first);
        cache.plan_for(&scenario_on(generate::full_mesh(3)));
        cache.plan_for(&scenario_on(generate::full_mesh(4)));
        assert_eq!(cache.len(), 2);
        // The NSFNET plan (oldest) was evicted: querying it again misses.
        cache.plan_for(&first);
        assert_eq!(cache.stats(), (0, 4));
    }
}
