//! The prediction engine: one loaded model, one plan cache, one arena tape.
//!
//! [`Engine`] owns everything a micro-batch needs and is driven by exactly
//! one thread (the batcher), so it needs no interior locking: connection
//! threads never touch the model, they only move queries through the queue.

use crate::cache::PlanCache;
use routenet_core::checkpoint::{CheckpointError, TrainState, MAGIC};
use routenet_core::{Prediction, RouteNet, Scenario};
use routenet_faults::FsHandle;
use routenet_nn::Tape;
use std::path::Path;

/// Upper bound on recycled arena buffers kept between micro-batches. One
/// oversized batch would otherwise pin its tape memory for the daemon's
/// whole lifetime (the pool never shrinks on its own; see
/// [`Tape::trim_pool`]).
const ARENA_POOL_CAP: usize = 4096;

/// Typed serving failures. The daemon maps each to an error response or a
/// clean exit — it never panics on bad input or injected IO faults.
#[derive(Debug)]
pub enum ServeError {
    /// Filesystem error reaching the model artifact (through the IO seam).
    Io(std::io::Error),
    /// The model artifact is a checkpoint container but failed to load.
    Checkpoint(CheckpointError),
    /// The model artifact is a JSON export but failed to parse.
    Model(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "model io error: {e}"),
            ServeError::Checkpoint(e) => write!(f, "checkpoint load failed: {e}"),
            ServeError::Model(msg) => write!(f, "model parse failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}

/// Model + plan cache + arena tape: the single-threaded prediction core.
pub struct Engine {
    model: RouteNet,
    cache: PlanCache,
    arena: Option<Tape>,
}

impl Engine {
    /// Load a model artifact through the IO seam — either a `TrainState`
    /// checkpoint (detected by its `ROUTENET-CKPT` header; yields the best
    /// parameters) or a `RouteNet::to_json` export — and allot a plan cache
    /// of `cache_cap` topologies.
    #[must_use = "dropping the result loses both the engine and the load failure"]
    pub fn load(fs: &FsHandle, path: &Path, cache_cap: usize) -> Result<Engine, ServeError> {
        let text = fs.fs().read_to_string(path)?;
        let model = if text.starts_with(MAGIC) {
            TrainState::load_with(fs.fs(), path)?.into_model()?
        } else {
            RouteNet::from_json(&text).map_err(|e| ServeError::Model(e.to_string()))?
        };
        Ok(Engine::from_model(model, cache_cap))
    }

    /// Wrap an already-loaded model (tests, embedded use).
    pub fn from_model(model: RouteNet, cache_cap: usize) -> Engine {
        Engine {
            model,
            cache: PlanCache::new(cache_cap),
            arena: Some(Tape::new()),
        }
    }

    /// The loaded model.
    pub fn model(&self) -> &RouteNet {
        &self.model
    }

    /// Predict one micro-batch in a single batched forward pass, reusing
    /// cached per-topology plans and the arena tape. Scenarios must be
    /// finalized and validated with at least one routed pair each (the
    /// server rejects anything else before it reaches the queue). Returns
    /// one prediction vector per scenario, in input order — bitwise
    /// identical, per sample, to the offline per-sample predict path.
    pub fn predict(&mut self, scenarios: &[&Scenario]) -> Vec<Vec<Prediction>> {
        if scenarios.is_empty() {
            return Vec::new();
        }
        let compiled: Vec<_> = scenarios
            .iter()
            .map(|sc| {
                let plan = self.cache.plan_for(sc);
                self.model.compile_with_index(sc, plan)
            })
            .collect();
        let refs: Vec<_> = compiled.iter().collect();
        // lint: allow(panic, reason = "arena is only vacant inside this call; both exits restore it")
        let arena = self.arena.take().expect("arena present between batches");
        let (preds, mut arena) = self.model.predict_batch_compiled_reuse(&refs, arena);
        arena.trim_pool(ARENA_POOL_CAP);
        self.arena = Some(arena);
        preds
    }

    /// `(hits, misses)` of the plan cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routenet_core::RouteNetConfig;
    use routenet_netgraph::routing::shortest_path_routing;
    use routenet_netgraph::topology::nsfnet;
    use routenet_netgraph::TrafficMatrix;

    fn model() -> RouteNet {
        let mut m = RouteNet::new(RouteNetConfig {
            link_state_dim: 4,
            path_state_dim: 4,
            readout_hidden: 8,
            t_iterations: 2,
            predict_jitter: true,
            predict_drops: false,
            seed: 3,
        });
        m.set_normalizer(routenet_core::features::Normalizer {
            capacity_scale: 10_000.0,
            traffic_scale: 200.0,
            ..routenet_core::features::Normalizer::default()
        });
        m
    }

    fn scenario(demand: f64) -> Scenario {
        let g = nsfnet();
        let routing = shortest_path_routing(&g).unwrap();
        let mut traffic = TrafficMatrix::zeros(g.n_nodes());
        for (s, d) in g.node_pairs() {
            traffic.set_demand(s, d, demand + (s.0 * 14 + d.0) as f64);
        }
        Scenario {
            graph: g,
            routing,
            traffic,
        }
    }

    #[test]
    fn engine_batches_match_offline_predictions_bitwise() {
        let m = model();
        let scenarios = [scenario(100.0), scenario(180.0), scenario(40.0)];
        let refs: Vec<&Scenario> = scenarios.iter().collect();
        let offline = {
            use routenet_core::KpiPredictor;
            m.predict_batch(&refs)
        };
        let mut engine = Engine::from_model(model(), 4);
        let served = engine.predict(&refs);
        assert_eq!(served.len(), offline.len());
        for (s, o) in served.iter().zip(&offline) {
            for (a, b) in s.iter().zip(o) {
                assert_eq!(a.delay_s.to_bits(), b.delay_s.to_bits());
                assert_eq!(a.jitter_s2.to_bits(), b.jitter_s2.to_bits());
                assert_eq!(a.drop_prob.to_bits(), b.drop_prob.to_bits());
            }
        }
        // Three same-topology queries compiled against one cached plan.
        assert_eq!(engine.cache_stats(), (2, 1));
    }

    #[test]
    fn engine_load_surfaces_typed_errors() {
        use routenet_faults::{FaultKind, FaultPlan, FaultRule, OpKind};
        let plan = FaultPlan::new().rule(FaultRule::every(1, FaultKind::Eio).on_op(OpKind::Read));
        let (fs, _plan) = FsHandle::faulty(plan);
        let err = Engine::load(&fs, Path::new("/nonexistent/model.json"), 2)
            .err()
            .expect("must fail");
        assert!(matches!(err, ServeError::Io(_)), "{err}");
        assert!(err.to_string().contains("io error"));
    }
}
