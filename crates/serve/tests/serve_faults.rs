//! Fault-tolerance of the serving daemon: injected filesystem faults at
//! load time surface as typed [`ServeError`]s (never panics), and hostile
//! TCP peers — garbage bytes, invalid UTF-8, mid-line disconnects — only
//! ever cost their own connection while the daemon keeps serving.

use routenet_core::features::Normalizer;
use routenet_core::{RouteNet, RouteNetConfig, Scenario};
use routenet_faults::{FaultKind, FaultPlan, FaultRule, FsHandle, OpKind};
use routenet_netgraph::routing::shortest_path_routing;
use routenet_netgraph::topology::nsfnet;
use routenet_netgraph::TrafficMatrix;
use routenet_obs::Telemetry;
use routenet_serve::server::serve_tcp;
use routenet_serve::{Engine, Request, Response, ServeError, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

fn model() -> RouteNet {
    let mut m = RouteNet::new(RouteNetConfig {
        link_state_dim: 4,
        path_state_dim: 4,
        readout_hidden: 8,
        t_iterations: 2,
        predict_jitter: false,
        predict_drops: false,
        seed: 5,
    });
    m.set_normalizer(Normalizer {
        capacity_scale: 10_000.0,
        traffic_scale: 200.0,
        ..Normalizer::default()
    });
    m
}

fn scenario() -> Scenario {
    let g = nsfnet();
    let routing = shortest_path_routing(&g).unwrap();
    let mut traffic = TrafficMatrix::zeros(g.n_nodes());
    for (s, d) in g.node_pairs() {
        traffic.set_demand(s, d, 80.0 + (s.0 * 14 + d.0) as f64);
    }
    Scenario {
        graph: g,
        routing,
        traffic,
    }
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "routenet-serve-faults-{tag}-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn load_faults_are_typed_never_panics() {
    let dir = tmpdir("load");

    // EIO on every read through the seam -> ServeError::Io.
    let good = dir.join("model.json");
    std::fs::write(&good, model().to_json()).unwrap();
    let plan = FaultPlan::new().rule(FaultRule::every(1, FaultKind::Eio).on_op(OpKind::Read));
    let (fs, _plan) = FsHandle::faulty(plan);
    let err = Engine::load(&fs, &good, 2)
        .err()
        .expect("injected EIO must fail");
    assert!(matches!(err, ServeError::Io(_)), "{err}");

    // A file that *claims* to be a checkpoint but is truncated garbage ->
    // ServeError::Checkpoint, not a panic.
    let bogus_ckpt = dir.join("bogus.ckpt");
    std::fs::write(
        &bogus_ckpt,
        "ROUTENET-CKPT garbage that is not a checkpoint\n",
    )
    .unwrap();
    let fs = FsHandle::default();
    let err = Engine::load(&fs, &bogus_ckpt, 2)
        .err()
        .expect("bogus checkpoint must fail");
    assert!(matches!(err, ServeError::Checkpoint(_)), "{err}");

    // Non-checkpoint, non-model JSON -> ServeError::Model.
    let bogus_json = dir.join("bogus.json");
    std::fs::write(&bogus_json, "{\"not\": \"a model\"}").unwrap();
    let err = Engine::load(&fs, &bogus_json, 2)
        .err()
        .expect("bogus JSON must fail");
    assert!(matches!(err, ServeError::Model(_)), "{err}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn hostile_peers_only_cost_their_own_connection() {
    let server = Server::start(
        Engine::from_model(model(), 4),
        ServerConfig::default(),
        Telemetry::in_memory("serve-test", "faults"),
    );
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    std::thread::scope(|scope| {
        let server_ref = &server;
        scope.spawn(move || serve_tcp(listener, server_ref).unwrap());

        // Peer 1: invalid UTF-8 garbage, then hangs up. The read loop
        // breaks on the decode error; the daemon must survive.
        {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&[0xff, 0xfe, 0x00, 0x80, b'\n']).unwrap();
            drop(s);
        }

        // Peer 2: a valid query with NO trailing newline, then a mid-line
        // disconnect. The partial line is either answered (BufRead yields
        // the final fragment at EOF) or dropped — never a daemon crash.
        {
            let mut s = TcpStream::connect(addr).unwrap();
            let req = serde_json::to_string(&Request {
                id: 1,
                scenario: Some(scenario()),
                cmd: None,
            })
            .unwrap();
            s.write_all(&req.as_bytes()[..req.len() / 2]).unwrap();
            drop(s);
        }

        // Peer 3: sends a query then disconnects WITHOUT reading the
        // response; the batcher's send into the dead connection is
        // discarded, not propagated.
        {
            let mut s = TcpStream::connect(addr).unwrap();
            let req = serde_json::to_string(&Request {
                id: 2,
                scenario: Some(scenario()),
                cmd: None,
            })
            .unwrap();
            s.write_all(req.as_bytes()).unwrap();
            s.write_all(b"\n").unwrap();
            s.flush().unwrap();
            drop(s);
        }

        // A well-behaved peer is still served after all of the above.
        let stream = TcpStream::connect(addr).unwrap();
        let mut out = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let req = serde_json::to_string(&Request {
            id: 42,
            scenario: Some(scenario()),
            cmd: None,
        })
        .unwrap();
        out.write_all(req.as_bytes()).unwrap();
        out.write_all(b"\n").unwrap();
        out.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp: Response = serde_json::from_str(line.trim()).unwrap();
        assert_eq!(resp.id, 42);
        let preds = resp.predictions.expect("healthy peer gets its prediction");
        assert_eq!(preds.len(), scenario().n_pairs());

        server.stop();
    });
    server.finish().unwrap();
}
