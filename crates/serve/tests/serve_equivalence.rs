//! End-to-end serving equivalence: predictions served over TCP by the
//! micro-batching daemon are BYTE-identical to the offline
//! [`KpiPredictor::predict_batch`] path on the same queries — the serving
//! counterpart of the batched-training equivalence contract
//! (`crates/core/tests/batched_equivalence.rs`). Concurrent clients make
//! the micro-batch composition nondeterministic on purpose: the answers
//! must not depend on it.

use routenet_core::features::Normalizer;
use routenet_core::{KpiPredictor, RouteNet, RouteNetConfig, Scenario};
use routenet_netgraph::routing::shortest_path_routing;
use routenet_netgraph::topology::nsfnet;
use routenet_netgraph::{generate, TrafficMatrix};
use routenet_obs::Telemetry;
use routenet_serve::server::serve_tcp;
use routenet_serve::{Engine, Request, Response, Server, ServerConfig};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

fn model() -> RouteNet {
    let mut m = RouteNet::new(RouteNetConfig {
        link_state_dim: 6,
        path_state_dim: 6,
        readout_hidden: 12,
        t_iterations: 3,
        predict_jitter: true,
        predict_drops: false,
        seed: 29,
    });
    m.set_normalizer(Normalizer {
        capacity_scale: 10_000.0,
        traffic_scale: 250.0,
        ..Normalizer::default()
    });
    m
}

fn scenario_on(g: routenet_netgraph::Graph, salt: u64) -> Scenario {
    let routing = shortest_path_routing(&g).unwrap();
    let n = g.n_nodes();
    let mut traffic = TrafficMatrix::zeros(n);
    for (s, d) in g.node_pairs() {
        let demand = 60.0 + ((salt * 31 + (s.0 * n + d.0) as u64 * 7) % 200) as f64;
        traffic.set_demand(s, d, demand);
    }
    Scenario {
        graph: g,
        routing,
        traffic,
    }
}

/// The query corpus: three topology families, traffic varying per query.
fn corpus() -> Vec<Scenario> {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(77);
    (0..12)
        .map(|i| match i % 3 {
            0 => scenario_on(nsfnet(), i),
            1 => scenario_on(generate::full_mesh(5), i),
            _ => scenario_on(generate::synthetic(8, &mut rng), i / 3),
        })
        .collect()
}

#[test]
fn tcp_served_predictions_are_byte_identical_to_offline() {
    let queries = corpus();
    // Offline reference: the KpiPredictor sweep path, serialized through
    // the SAME wire encoder the daemon uses.
    let reference = {
        let m = model();
        let refs: Vec<&Scenario> = queries.iter().collect();
        let preds = m.predict_batch(&refs);
        preds
            .into_iter()
            .enumerate()
            .map(|(id, p)| (id as u64, Response::ok(id as u64, p).to_line()))
            .collect::<BTreeMap<u64, String>>()
    };

    let server = Server::start(
        Engine::from_model(model(), 4),
        ServerConfig {
            queue_cap: 64,
            max_batch: 8,
            batch_window: Duration::from_millis(2),
        },
        Telemetry::in_memory("serve-test", "equivalence"),
    );
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let served: BTreeMap<u64, String> = std::thread::scope(|scope| {
        let server_ref = &server;
        scope.spawn(move || serve_tcp(listener, server_ref).unwrap());
        // Three concurrent clients, interleaved ids: the batch composition
        // the daemon sees is timing-dependent; the answers must not be.
        let mut clients = Vec::new();
        for c in 0..3usize {
            let queries = &queries;
            clients.push(scope.spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let mut out = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                let my: Vec<u64> = (0..queries.len() as u64)
                    .filter(|id| *id as usize % 3 == c)
                    .collect();
                for &id in &my {
                    let req = Request {
                        id,
                        scenario: Some(queries[id as usize].clone()),
                        cmd: None,
                    };
                    let line = serde_json::to_string(&req).unwrap();
                    out.write_all(line.as_bytes()).unwrap();
                    out.write_all(b"\n").unwrap();
                }
                out.flush().unwrap();
                let mut got = Vec::new();
                for _ in 0..my.len() {
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    let resp: Response = serde_json::from_str(line.trim()).unwrap();
                    assert!(resp.error.is_none(), "{:?}", resp.error);
                    got.push((resp.id, line.trim().to_string()));
                }
                got
            }));
        }
        let mut all = BTreeMap::new();
        for c in clients {
            for (id, line) in c.join().unwrap() {
                all.insert(id, line);
            }
        }
        server.stop(); // ends the accept loop
        all
    });

    assert_eq!(served.len(), reference.len());
    for (id, line) in &reference {
        assert_eq!(
            served.get(id),
            Some(line),
            "served response for query {id} must be byte-identical to offline"
        );
    }

    let tel = server.telemetry().clone();
    server.finish().unwrap();
    assert_eq!(tel.counter("serve.queries"), queries.len() as u64);
    assert_eq!(tel.counter("serve.shed"), 0);
    // The digest event is present and self-consistent.
    let records = tel.records();
    let serve_event = records
        .iter()
        .find(|r| r.event.kind() == "Serve")
        .expect("Serve digest emitted");
    if let routenet_obs::Event::Serve {
        queries: q,
        responses,
        batches,
        max_batch,
        ..
    } = &serve_event.event
    {
        assert_eq!(*q, 12);
        assert_eq!(*responses, 12);
        assert!(
            *batches >= 2,
            "12 queries over max_batch 8 need >= 2 batches"
        );
        assert!(*max_batch <= 8);
    } else {
        unreachable!();
    }
}
