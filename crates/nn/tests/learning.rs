//! End-to-end learning capability tests and tensor-algebra property tests.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use routenet_nn::prelude::*;

/// A 2-layer MLP must solve XOR (nonlinear capacity check).
#[test]
fn mlp_learns_xor() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let mlp = Mlp::new(
        &mut store,
        "xor",
        &[2, 8, 1],
        Activation::Tanh,
        Activation::Sigmoid,
        &mut rng,
    );
    let mut opt = Adam::new(&store, 0.05);
    let x = Tensor::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
    let y = Tensor::from_vec(4, 1, vec![0., 1., 1., 0.]);
    let mut last_loss = f64::INFINITY;
    for _ in 0..800 {
        let mut sess = Session::new(&store);
        let vx = sess.input(x.clone());
        let pred = mlp.forward(&mut sess, vx);
        let loss = sess.tape.mse(pred, &y);
        last_loss = sess.tape.value(loss).get(0, 0);
        let grads = sess.tape.backward(loss);
        let pg = sess.param_grads(&grads);
        opt.step(&mut store, &pg);
    }
    assert!(last_loss < 0.01, "XOR loss stuck at {last_loss}");
    let mut sess = Session::new(&store);
    let vx = sess.input(x);
    let pred = mlp.forward(&mut sess, vx);
    let p = sess.tape.value(pred);
    for (i, want) in [0.0, 1.0, 1.0, 0.0].iter().enumerate() {
        assert!(
            (p.get(i, 0) - want).abs() < 0.15,
            "sample {i}: {} vs {want}",
            p.get(i, 0)
        );
    }
}

/// A GRU unrolled over a sequence must learn to discriminate sequences by
/// their sum — checks gradient flow through recurrent steps.
#[test]
fn gru_learns_sequence_sum_sign() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let gru = GruCell::new(&mut store, "g", 1, 6, &mut rng);
    let readout = Dense::new(&mut store, "r", 6, 1, Activation::Sigmoid, &mut rng);
    let mut opt = Adam::new(&store, 0.02);

    // 16 random length-5 sequences; label = 1 if sum > 0.
    let mut data_rng = StdRng::seed_from_u64(3);
    let seqs: Vec<Vec<f64>> = (0..16)
        .map(|_| {
            (0..5)
                .map(|_| rand::Rng::gen_range(&mut data_rng, -1.0..1.0))
                .collect()
        })
        .collect();
    let labels: Vec<f64> = seqs
        .iter()
        .map(|s| {
            if s.iter().sum::<f64>() > 0.0 {
                1.0
            } else {
                0.0
            }
        })
        .collect();

    let mut final_loss = f64::INFINITY;
    for _ in 0..400 {
        let mut sess = Session::new(&store);
        // Batch all sequences: B x 1 input per step.
        let mut h = sess.input(Tensor::zeros(seqs.len(), 6));
        for t in 0..5 {
            let xt = sess.input(Tensor::from_fn(seqs.len(), 1, |b, _| seqs[b][t]));
            h = gru.step(&mut sess, xt, h);
        }
        let pred = readout.forward(&mut sess, h);
        let target = Tensor::from_fn(seqs.len(), 1, |b, _| labels[b]);
        let loss = sess.tape.mse(pred, &target);
        final_loss = sess.tape.value(loss).get(0, 0);
        let grads = sess.tape.backward(loss);
        let mut pg = sess.param_grads(&grads);
        routenet_nn::optim::clip_global_norm(&mut pg, 5.0);
        opt.step(&mut store, &pg);
    }
    assert!(final_loss < 0.05, "GRU sum-sign loss stuck at {final_loss}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (AB)^T == B^T A^T
    #[test]
    fn transpose_of_product(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::xavier(3, 4, &mut rng);
        let b = Tensor::xavier(4, 2, &mut rng);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    /// Matmul distributes over addition: A(B + C) == AB + AC.
    #[test]
    fn matmul_distributive(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::xavier(2, 3, &mut rng);
        let b = Tensor::xavier(3, 3, &mut rng);
        let c = Tensor::xavier(3, 3, &mut rng);
        let bc = b.zip(&c, |x, y| x + y);
        let lhs = a.matmul(&bc);
        let ab = a.matmul(&b);
        let ac = a.matmul(&c);
        let rhs = ab.zip(&ac, |x, y| x + y);
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    /// gather(scatter) with identity permutation is the identity; and the
    /// tape value of scatter_add sums duplicate rows.
    #[test]
    fn scatter_gather_consistency(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::xavier(4, 3, &mut rng);
        let mut tape = Tape::new();
        let a = tape.leaf(t.clone());
        let perm = tape.gather_rows(a, vec![0, 1, 2, 3]);
        prop_assert_eq!(tape.value(perm), &t);
        // scatter rows 0 and 1 into the same output row
        let s = tape.scatter_add_rows(a, vec![0, 0, 1, 1], 2);
        let sv = tape.value(s);
        for c in 0..3 {
            prop_assert!((sv.get(0, c) - (t.get(0, c) + t.get(1, c))).abs() < 1e-12);
            prop_assert!((sv.get(1, c) - (t.get(2, c) + t.get(3, c))).abs() < 1e-12);
        }
    }

    /// Adam with any sensible lr strictly decreases a convex quadratic within
    /// the first few steps.
    #[test]
    fn adam_descends_quadratic(lr in 0.001f64..0.3, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::xavier(1, 4, &mut rng).map(|x| x * 10.0));
        let target = Tensor::zeros(1, 4);
        let mut opt = Adam::new(&store, lr);
        let loss_at = |store: &ParamStore| {
            let mut sess = Session::new(store);
            let vw = sess.param(w);
            let l = sess.tape.mse(vw, &target);
            sess.tape.value(l).get(0, 0)
        };
        let before = loss_at(&store);
        prop_assume!(before > 1e-9);
        for _ in 0..10 {
            let mut sess = Session::new(&store);
            let vw = sess.param(w);
            let l = sess.tape.mse(vw, &target);
            let grads = sess.tape.backward(l);
            let pg = sess.param_grads(&grads);
            opt.step(&mut store, &pg);
        }
        prop_assert!(loss_at(&store) < before);
    }
}
