//! Precomputed index and segment plans for batched tape ops.
//!
//! A batched forward pass replays the same gather/scatter topology every
//! epoch, so the row-index arrays are built once at pack time and shared
//! into each tape node behind an `Arc` — pushing an op onto the tape never
//! copies an index vector. `SegmentPlan` is the CSR row-pointer half of that
//! story: it records where each sample's row block starts inside a
//! concatenated tensor, and segment-aware ops iterate those blocks in sample
//! order so batched reductions associate exactly like the per-sample path
//! (see DESIGN.md "Batched execution & memory arenas").

use std::sync::Arc;

/// A shared row-index array for `gather_rows_plan` / `scatter_add_rows_plan`.
///
/// Cheap to clone (Arc bump); build once per batch, reuse every epoch.
#[derive(Debug, Clone)]
pub struct IndexPlan {
    idx: Arc<Vec<usize>>,
}

impl IndexPlan {
    /// Wrap an index vector.
    pub fn new(idx: Vec<usize>) -> Self {
        IndexPlan { idx: Arc::new(idx) }
    }

    /// The row indices.
    pub fn indices(&self) -> &[usize] {
        &self.idx
    }

    /// Number of indices (rows gathered / scattered).
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// True if the plan selects no rows.
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }
}

/// CSR-style segment offsets over the rows of a concatenated tensor.
///
/// `offsets` has `n_segments + 1` entries, starts at 0, and is
/// nondecreasing; segment `s` owns rows `[offsets[s], offsets[s+1])`. Empty
/// segments are legal (a sample can be inactive at a padded position).
/// Segment order IS the determinism contract: every segment-aware op visits
/// segments in index order, so floating-point accumulation associates
/// identically to running the samples one at a time.
#[derive(Debug, Clone)]
pub struct SegmentPlan {
    offsets: Arc<Vec<usize>>,
}

impl SegmentPlan {
    /// Wrap an offsets array. Panics unless it starts at 0 and is
    /// nondecreasing.
    pub fn new(offsets: Vec<usize>) -> Self {
        assert!(
            offsets.first() == Some(&0),
            "segment offsets must start at 0"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "segment offsets must be nondecreasing"
        );
        SegmentPlan {
            offsets: Arc::new(offsets),
        }
    }

    /// Build from per-segment lengths.
    pub fn from_lens(lens: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(lens.len() + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for &l in lens {
            acc += l;
            offsets.push(acc);
        }
        SegmentPlan {
            offsets: Arc::new(offsets),
        }
    }

    /// A single segment spanning `n` rows — the degenerate "batch of one".
    pub fn singleton(n: usize) -> Self {
        SegmentPlan {
            offsets: Arc::new(vec![0, n]),
        }
    }

    /// Number of segments.
    pub fn n_segments(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Row range `[lo, hi)` of segment `s`.
    pub fn range(&self, s: usize) -> (usize, usize) {
        (self.offsets[s], self.offsets[s + 1])
    }

    /// Total rows covered (the required row count of the operand tensor).
    pub fn total(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }

    /// The raw offsets array.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_plan_shares_indices() {
        let p = IndexPlan::new(vec![3, 1, 4, 1]);
        assert_eq!(p.indices(), &[3, 1, 4, 1]);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        let q = p.clone();
        assert_eq!(q.indices().as_ptr(), p.indices().as_ptr());
    }

    #[test]
    fn segment_plan_from_lens_and_ranges() {
        let s = SegmentPlan::from_lens(&[2, 0, 3]);
        assert_eq!(s.n_segments(), 3);
        assert_eq!(s.range(0), (0, 2));
        assert_eq!(s.range(1), (2, 2));
        assert_eq!(s.range(2), (2, 5));
        assert_eq!(s.total(), 5);
        assert_eq!(s.offsets(), &[0, 2, 2, 5]);
    }

    #[test]
    fn segment_plan_singleton() {
        let s = SegmentPlan::singleton(7);
        assert_eq!(s.n_segments(), 1);
        assert_eq!(s.range(0), (0, 7));
        assert_eq!(s.total(), 7);
    }

    #[test]
    #[should_panic(expected = "start at 0")]
    fn segment_plan_rejects_nonzero_start() {
        SegmentPlan::new(vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn segment_plan_rejects_decreasing() {
        SegmentPlan::new(vec![0, 3, 2]);
    }
}
