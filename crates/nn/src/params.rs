//! Parameter storage and tape binding.
//!
//! Parameters live outside tapes in a [`ParamStore`] so a fresh tape can be
//! built per sample (define-by-run) while weights persist across samples.
//! A [`Session`] memoizes the store→tape binding: a parameter used many
//! times in one forward pass (e.g. a GRU cell applied at every message-
//! passing iteration) is registered as a single leaf, so its gradient
//! accumulates correctly.

use crate::tape::{Gradients, Tape, Var};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Handle to a parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ParamEntry {
    name: String,
    tensor: Tensor,
}

/// Named collection of trainable tensors.
///
/// `PartialEq` compares names and tensor contents positionally with exact
/// float equality — used by checkpoint/resume tests to prove runs identical.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParamStore {
    entries: Vec<ParamEntry>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a tensor under `name`. Names must be unique.
    pub fn add(&mut self, name: impl Into<String>, tensor: Tensor) -> ParamId {
        let name = name.into();
        assert!(
            self.entries.iter().all(|e| e.name != name),
            "duplicate parameter name {name:?}"
        );
        self.entries.push(ParamEntry { name, tensor });
        ParamId(self.entries.len() - 1)
    }

    /// Number of parameters (tensors).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total scalar count across all tensors.
    pub fn n_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.tensor.len()).sum()
    }

    /// Read a parameter.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].tensor
    }

    /// Mutate a parameter (used by optimizers).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].tensor
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Look a parameter up by name.
    pub fn by_name(&self, name: &str) -> Option<ParamId> {
        self.entries
            .iter()
            .position(|e| e.name == name)
            .map(ParamId)
    }

    /// Iterate ids in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.entries.len()).map(ParamId)
    }

    /// Copy `src`'s parameters into `self`, reusing existing tensor buffers
    /// when names and shapes line up (the epoch-boundary snapshot path: after
    /// the first epoch this never allocates). Falls back to a full clone when
    /// the layouts differ, so the result always equals `src.clone()`.
    pub fn copy_from(&mut self, src: &ParamStore) {
        let layouts_match = self.entries.len() == src.entries.len()
            && self.entries.iter().zip(&src.entries).all(|(a, b)| {
                a.name == b.name
                    && a.tensor.rows() == b.tensor.rows()
                    && a.tensor.cols() == b.tensor.cols()
            });
        if layouts_match {
            for (dst, s) in self.entries.iter_mut().zip(&src.entries) {
                dst.tensor.copy_from(&s.tensor);
            }
        } else {
            self.clone_from(src);
        }
    }

    /// Serialize all parameters to JSON (model checkpoint).
    pub fn to_json(&self) -> String {
        // lint: allow(panic, reason = "in-memory numeric data always serializes; f64 is emitted as a literal")
        serde_json::to_string(self).expect("ParamStore serializes")
    }

    /// Restore from [`ParamStore::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// One forward pass: a tape plus the memoized param bindings.
pub struct Session<'a> {
    /// The autodiff tape being built.
    pub tape: Tape,
    store: &'a ParamStore,
    bound: Vec<Option<Var>>,
}

impl<'a> Session<'a> {
    /// Start a session over `store`.
    pub fn new(store: &'a ParamStore) -> Self {
        Session::with_tape(store, Tape::new())
    }

    /// Start a session over `store` reusing an arena-backed tape from a
    /// previous pass. The tape is reset (recycling its value buffers) before
    /// recording begins; pair with [`Session::into_tape`] to thread one tape
    /// through a training or eval loop with zero steady-state allocation.
    pub fn with_tape(store: &'a ParamStore, mut tape: Tape) -> Self {
        tape.reset();
        Session {
            tape,
            store,
            bound: vec![None; store.len()],
        }
    }

    /// End the session, yielding the tape for arena reuse.
    pub fn into_tape(self) -> Tape {
        self.tape
    }

    /// Clear the session for another forward pass over the same store:
    /// resets the tape (recycling value buffers) and unbinds all params.
    pub fn reset(&mut self) {
        self.tape.reset();
        for b in self.bound.iter_mut() {
            *b = None;
        }
    }

    /// Tape variable for parameter `id` (bound at most once per session).
    pub fn param(&mut self, id: ParamId) -> Var {
        if let Some(v) = self.bound[id.0] {
            return v;
        }
        let v = self.tape.leaf_copied(self.store.get(id));
        self.bound[id.0] = Some(v);
        v
    }

    /// Register a non-trainable input tensor.
    pub fn input(&mut self, t: Tensor) -> Var {
        self.tape.leaf(t)
    }

    /// Register a non-trainable input by copying into an arena-recycled
    /// buffer (keeps the tape pool balanced in reset loops).
    pub fn input_copied(&mut self, t: &Tensor) -> Var {
        self.tape.leaf_copied(t)
    }

    /// Collect `(param, grad)` pairs for every bound parameter that received
    /// a gradient.
    pub fn param_grads(&self, grads: &Gradients) -> Vec<(ParamId, Tensor)> {
        let mut out = Vec::new();
        for (i, b) in self.bound.iter().enumerate() {
            if let Some(v) = b {
                if let Some(g) = grads.get(*v) {
                    out.push((ParamId(i), g.clone()));
                }
            }
        }
        out
    }

    /// Collect per-sample `(param, grad)` lists from a batched backward
    /// pass over `n_seg` segments.
    ///
    /// Entry `s` holds, in parameter-id order, exactly the pairs
    /// [`Session::param_grads`] would return for sample `s` run on its own
    /// tape: weights/biases touched by `seg_matmul`/`seg_add_row` come from
    /// their per-segment slots, and parameters a sample never touched are
    /// skipped (as a per-sample tape would skip them).
    pub fn param_grads_seg(&self, grads: &Gradients, n_seg: usize) -> Vec<Vec<(ParamId, Tensor)>> {
        let mut out: Vec<Vec<(ParamId, Tensor)>> = (0..n_seg).map(|_| Vec::new()).collect();
        for (i, b) in self.bound.iter().enumerate() {
            let Some(v) = b else { continue };
            for (s, per_sample) in out.iter_mut().enumerate() {
                if let Some(g) = grads.seg_get(*v, s) {
                    per_sample.push((ParamId(i), g.clone()));
                }
            }
        }
        out
    }
}

/// Gradient accumulator for minibatching: sums per-sample gradients keyed by
/// parameter, then averages.
#[derive(Debug, Default)]
pub struct GradAccumulator {
    sums: Vec<Option<Tensor>>,
    count: usize,
}

impl GradAccumulator {
    /// Accumulator sized for `store`.
    pub fn new(store: &ParamStore) -> Self {
        GradAccumulator {
            sums: vec![None; store.len()],
            count: 0,
        }
    }

    /// Add one sample's parameter gradients.
    pub fn add(&mut self, grads: &[(ParamId, Tensor)]) {
        self.count += 1;
        for (id, g) in grads {
            match &mut self.sums[id.0] {
                Some(s) => s.add_scaled(g, 1.0),
                slot @ None => *slot = Some(g.clone()),
            }
        }
    }

    /// Number of samples accumulated.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Average gradients `(sum / count)` and reset the accumulator.
    pub fn take_mean(&mut self) -> Vec<(ParamId, Tensor)> {
        let n = self.count.max(1) as f64;
        let out = self
            .sums
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.take().map(|t| (ParamId(i), t.map(|x| x / n))))
            .collect();
        self.count = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_roundtrip_and_lookup() {
        let mut store = ParamStore::new();
        let a = store.add("w", Tensor::full(2, 2, 1.5));
        let b = store.add("b", Tensor::zeros(1, 2));
        assert_eq!(store.len(), 2);
        assert_eq!(store.n_scalars(), 6);
        assert_eq!(store.name(a), "w");
        assert_eq!(store.by_name("b"), Some(b));
        assert_eq!(store.by_name("nope"), None);
        let json = store.to_json();
        let restored = ParamStore::from_json(&json).unwrap();
        assert_eq!(restored.get(a), store.get(a));
        assert_eq!(restored.name(b), "b");
    }

    #[test]
    fn copy_from_equals_clone_in_both_layout_cases() {
        let mut src = ParamStore::new();
        let w = src.add("w", Tensor::full(2, 2, 1.5));
        src.add("b", Tensor::zeros(1, 2));

        // Layout mismatch (empty destination): falls back to clone.
        let mut dst = ParamStore::new();
        dst.copy_from(&src);
        assert_eq!(dst, src);

        // Matching layout: buffers reused, values tracked.
        src.get_mut(w).set(0, 0, -3.25);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_rejected() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::zeros(1, 1));
        store.add("w", Tensor::zeros(1, 1));
    }

    #[test]
    fn session_memoizes_param_binding() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::full(1, 1, 3.0));
        let mut sess = Session::new(&store);
        let v1 = sess.param(w);
        let v2 = sess.param(w);
        assert_eq!(v1, v2);
        assert_eq!(sess.tape.len(), 1);
    }

    #[test]
    fn reused_param_gradient_accumulates() {
        // loss = sum(w * w_used_twice): param used in two places; grad must
        // be the total derivative 2w.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(1, 2, vec![2.0, -3.0]));
        let mut sess = Session::new(&store);
        let vw = sess.param(w);
        let sq = sess.tape.mul(vw, vw);
        let loss = sess.tape.sum_all(sq);
        let grads = sess.tape.backward(loss);
        let pg = sess.param_grads(&grads);
        assert_eq!(pg.len(), 1);
        assert_eq!(pg[0].1.data(), &[4.0, -6.0]);
    }

    #[test]
    fn accumulator_averages_and_resets() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(1, 2));
        let mut acc = GradAccumulator::new(&store);
        acc.add(&[(w, Tensor::from_vec(1, 2, vec![1.0, 2.0]))]);
        acc.add(&[(w, Tensor::from_vec(1, 2, vec![3.0, 4.0]))]);
        assert_eq!(acc.count(), 2);
        let mean = acc.take_mean();
        assert_eq!(mean.len(), 1);
        assert_eq!(mean[0].1.data(), &[2.0, 3.0]);
        assert_eq!(acc.count(), 0);
        assert!(acc.take_mean().is_empty());
    }
}
