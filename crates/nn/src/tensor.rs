//! Dense 2-D `f64` tensors (row-major).
//!
//! Everything in the NN stack is a matrix; vectors are `1 x n` or `n x 1`
//! matrices. Shapes are validated eagerly with panics — shape bugs are
//! programming errors, not runtime conditions.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Tensor {
    /// `rows x cols` of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// `rows x cols` filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f64) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Tensor { rows, cols, data }
    }

    /// Build from a flat row-major vector. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat data length != rows*cols");
        Tensor { rows, cols, data }
    }

    /// Build a zeroed `rows x cols` tensor reusing `buf`'s capacity.
    ///
    /// The arena primitive: a buffer recycled through `Tape::reset` re-enters
    /// the graph here without a fresh heap allocation (as long as its
    /// capacity suffices). Contents are cleared to exact `+0.0`.
    pub fn from_buffer(rows: usize, cols: usize, mut buf: Vec<f64>) -> Self {
        buf.clear();
        buf.resize(rows * cols, 0.0);
        Tensor {
            rows,
            cols,
            data: buf,
        }
    }

    /// Consume the tensor, yielding its backing buffer for reuse.
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// Copy of the half-open row range `[lo, hi)` as a new `hi-lo x cols`
    /// tensor. Used by segment-aware backward passes to slice one sample's
    /// row block out of a batched activation.
    pub fn rows_copy(&self, lo: usize, hi: usize) -> Tensor {
        assert!(lo <= hi && hi <= self.rows, "rows_copy range out of bounds");
        let mut data = Vec::with_capacity((hi - lo) * self.cols);
        data.extend_from_slice(&self.data[lo * self.cols..hi * self.cols]);
        Tensor {
            rows: hi - lo,
            cols: self.cols,
            data,
        }
    }

    /// A `1 x n` row vector.
    pub fn row_vector(data: Vec<f64>) -> Self {
        let n = data.len();
        Tensor {
            rows: 1,
            cols: n,
            data,
        }
    }

    /// Xavier/Glorot uniform initialization for a `rows x cols` weight.
    pub fn xavier<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        Tensor::from_fn(rows, cols, |_, _| rng.gen_range(-limit..limit))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy `src`'s elements into `self` without reallocating. Shapes must
    /// match — this is the buffer-reuse primitive for epoch-boundary state
    /// snapshots (see `ParamStore::copy_from`).
    pub fn copy_from(&mut self, src: &Tensor) {
        assert_eq!(
            (self.rows, self.cols),
            (src.rows, src.cols),
            "copy_from shape mismatch"
        );
        self.data.copy_from_slice(&src.data);
    }

    /// Copy row `r` of `src` into row `dst_r` of `self`.
    pub fn copy_row_from(&mut self, dst_r: usize, src: &Tensor, src_r: usize) {
        assert_eq!(self.cols, src.cols, "row width mismatch");
        let d = dst_r * self.cols;
        let s = src_r * src.cols;
        self.data[d..d + self.cols].copy_from_slice(&src.data[s..s + src.cols]);
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product `self * rhs` written into `out` (which must already be
    /// a zeroed `self.rows x rhs.cols` tensor). Single implementation shared
    /// with `matmul` so pooled and non-pooled paths are bitwise identical.
    pub fn matmul_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, rhs.cols),
            "matmul_into output shape mismatch"
        );
        // i-k-j loop order: contiguous access on rhs and out rows.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                // lint: allow(float-eq, reason = "exact-zero sparsity skip; any nonzero magnitude must multiply")
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// Row-sliced transposed product: `self[lo..hi]^T * rhs[lo..hi]`,
    /// bitwise identical to
    /// `self.rows_copy(lo, hi).transpose().matmul(&rhs.rows_copy(lo, hi))`
    /// without materializing the slices or the transpose. This is the
    /// per-segment weight-gradient kernel of the batched backward pass
    /// (`Op::SegMatMul`), where the copies would dominate.
    pub fn matmul_t_rows(&self, rhs: &Tensor, lo: usize, hi: usize) -> Tensor {
        assert_eq!(self.rows, rhs.rows, "matmul_t_rows row count mismatch");
        assert!(
            lo <= hi && hi <= self.rows,
            "matmul_t_rows range out of bounds"
        );
        let mut out = Tensor::zeros(self.cols, rhs.cols);
        // i-k-j order over the *transposed* slice: k walks rows lo..hi
        // ascending — the same accumulation order (and the same exact-zero
        // sparsity skip) as the copy/transpose/matmul chain, so the result
        // is bitwise identical to the per-sample path.
        for i in 0..self.cols {
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for k in lo..hi {
                let a = self.data[k * self.cols + i];
                // lint: allow(float-eq, reason = "exact-zero sparsity skip; any nonzero magnitude must multiply")
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise combine with another same-shaped tensor.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += alpha * other`.
    pub fn add_scaled(&mut self, other: &Tensor, alpha: f64) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// True if all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors_and_shape() {
        let t = Tensor::zeros(2, 3);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
        let t = Tensor::full(1, 2, 7.0);
        assert_eq!(t.data(), &[7.0, 7.0]);
        let t = Tensor::from_fn(2, 2, |r, c| (r * 10 + c) as f64);
        assert_eq!(t.data(), &[0.0, 1.0, 10.0, 11.0]);
        let t = Tensor::row_vector(vec![1.0, 2.0]);
        assert_eq!(t.shape(), (1, 2));
    }

    #[test]
    #[should_panic(expected = "flat data length")]
    fn from_vec_checks_len() {
        Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn get_set_row() {
        let mut t = Tensor::zeros(2, 3);
        t.set(1, 2, 5.0);
        assert_eq!(t.get(1, 2), 5.0);
        assert_eq!(t.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let i = Tensor::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_t_rows_matches_copy_transpose_matmul() {
        let a = Tensor::from_fn(7, 4, |r, c| ((r * 13 + c * 5) % 11) as f64 - 3.7);
        let g = Tensor::from_fn(7, 3, |r, c| ((r * 7 + c * 17) % 9) as f64 * 0.31);
        for (lo, hi) in [(0, 7), (2, 5), (3, 3), (0, 1)] {
            let fast = a.matmul_t_rows(&g, lo, hi);
            let slow = a.rows_copy(lo, hi).transpose().matmul(&g.rows_copy(lo, hi));
            assert_eq!(fast.shape(), slow.shape());
            for (x, y) in fast.data().iter().zip(slow.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_fn(2, 4, |r, c| (r * 7 + c * 3) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(3, 1), a.get(1, 3));
    }

    #[test]
    fn map_zip_add_scaled() {
        let a = Tensor::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Tensor::from_vec(1, 3, vec![4., 5., 6.]);
        assert_eq!(a.map(|x| x * 2.0).data(), &[2., 4., 6.]);
        assert_eq!(a.zip(&b, |x, y| x + y).data(), &[5., 7., 9.]);
        let mut c = a.clone();
        c.add_scaled(&b, 0.5);
        assert_eq!(c.data(), &[3.0, 4.5, 6.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(1, 4, vec![3.0, -4.0, 0.0, 1.0]);
        assert_eq!(a.sum(), 0.0);
        assert_eq!(a.norm(), (9.0f64 + 16.0 + 1.0).sqrt());
        assert_eq!(a.max_abs(), 4.0);
        assert!(a.all_finite());
        let b = Tensor::from_vec(1, 1, vec![f64::NAN]);
        assert!(!b.all_finite());
    }

    #[test]
    fn xavier_in_limits_and_seeded() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::xavier(16, 16, &mut rng);
        let limit = (6.0 / 32.0f64).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= limit));
        let t2 = Tensor::xavier(16, 16, &mut StdRng::seed_from_u64(1));
        assert_eq!(t, t2);
        // not all identical
        assert!(t.data().iter().any(|&x| x != t.data()[0]));
    }

    #[test]
    fn copy_row_from_moves_one_row() {
        let src = Tensor::from_fn(3, 2, |r, c| (r * 2 + c) as f64);
        let mut dst = Tensor::zeros(2, 2);
        dst.copy_row_from(1, &src, 2);
        assert_eq!(dst.row(0), &[0.0, 0.0]);
        assert_eq!(dst.row(1), &[4.0, 5.0]);
    }

    #[test]
    fn from_buffer_reuses_capacity_and_zeroes() {
        let buf = vec![5.0; 12];
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        let t = Tensor::from_buffer(2, 3, buf);
        assert_eq!(t.shape(), (2, 3));
        assert!(t.data().iter().all(|&x| x == 0.0 && x.is_sign_positive()));
        let back = t.into_data();
        assert_eq!(back.capacity(), cap);
        assert_eq!(back.as_ptr(), ptr);
    }

    #[test]
    fn rows_copy_slices_row_block() {
        let t = Tensor::from_fn(4, 2, |r, c| (r * 2 + c) as f64);
        let mid = t.rows_copy(1, 3);
        assert_eq!(mid.shape(), (2, 2));
        assert_eq!(mid.data(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(t.rows_copy(2, 2).shape(), (0, 2));
    }

    #[test]
    fn matmul_into_matches_matmul() {
        let a = Tensor::from_fn(3, 4, |r, c| (r as f64 - c as f64) * 0.37);
        let b = Tensor::from_fn(4, 2, |r, c| (r * 2 + c) as f64 * 0.11);
        let via_alloc = a.matmul(&b);
        let mut out = Tensor::zeros(3, 2);
        a.matmul_into(&b, &mut out);
        assert_eq!(via_alloc, out);
    }

    #[test]
    fn serde_roundtrip() {
        let a = Tensor::from_fn(2, 2, |r, c| (r + c) as f64);
        let s = serde_json::to_string(&a).unwrap();
        let b: Tensor = serde_json::from_str(&s).unwrap();
        assert_eq!(a, b);
    }
}
