//! # routenet-nn
//!
//! A minimal, self-contained neural-network stack: dense `f64` tensors, a
//! reverse-mode autodiff tape, GRU/dense layers, and SGD/Adam optimizers.
//!
//! The offline Rust ecosystem has no usable GNN framework, so this crate is
//! the substrate on which `routenet-core` builds the RouteNet model. The op
//! set is deliberately small — exactly what message passing over paths and
//! links needs — and every gradient is verified against central finite
//! differences in the test suite.
//!
//! ## Example: one training step
//!
//! ```
//! use routenet_nn::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut store = ParamStore::new();
//! let layer = Dense::new(&mut store, "out", 2, 1, Activation::Linear, &mut rng);
//! let mut opt = Adam::new(&store, 1e-2);
//!
//! let x = Tensor::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
//! let y = Tensor::from_vec(4, 1, vec![0., 1., 1., 2.]); // y = x0 + x1
//! for _ in 0..200 {
//!     let mut sess = Session::new(&store);
//!     let vx = sess.input(x.clone());
//!     let pred = layer.forward(&mut sess, vx);
//!     let loss = sess.tape.mse(pred, &y);
//!     let grads = sess.tape.backward(loss);
//!     let pg = sess.param_grads(&grads);
//!     opt.step(&mut store, &pg);
//! }
//! // The layer learned to sum its inputs.
//! let mut sess = Session::new(&store);
//! let vx = sess.input(Tensor::from_vec(1, 2, vec![3.0, 4.0]));
//! let pred = layer.forward(&mut sess, vx);
//! assert!((sess.tape.value(pred).get(0, 0) - 7.0).abs() < 0.2);
//! ```

#![warn(missing_docs)]

pub mod layers;
pub mod optim;
pub mod params;
pub mod plan;
pub mod tape;
pub mod tensor;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::layers::{Activation, Dense, GruCell, Mlp};
    pub use crate::optim::{clip_global_norm, Adam, Sgd};
    pub use crate::params::{GradAccumulator, ParamId, ParamStore, Session};
    pub use crate::plan::{IndexPlan, SegmentPlan};
    pub use crate::tape::{Gradients, Tape, Var};
    pub use crate::tensor::Tensor;
}

pub use layers::{Activation, Dense, GruCell, Mlp};
pub use optim::{Adam, Sgd};
pub use params::{GradAccumulator, ParamId, ParamStore, Session};
pub use plan::{IndexPlan, SegmentPlan};
pub use tape::{Gradients, Tape, Var};
pub use tensor::Tensor;
