//! Reverse-mode automatic differentiation on a linear tape.
//!
//! A [`Tape`] records every operation eagerly (define-by-run); calling
//! [`Tape::backward`] walks the tape in reverse accumulating gradients.
//! The op set is exactly what RouteNet's message passing needs, including
//! the two structural ops that encode the graph: [`Tape::gather_rows`]
//! (read link states along each path) and [`Tape::scatter_add_rows`]
//! (aggregate per-hop messages into per-link inboxes).
//!
//! Every op's gradient is validated against central finite differences in
//! this crate's test suite.

use crate::tensor::Tensor;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug)]
enum Op {
    /// Leaf: input or parameter. No gradient propagation (gradients are
    /// still *accumulated* into leaves so the optimizer can read them).
    Leaf,
    MatMul(Var, Var),
    Add(Var, Var),
    /// `a + broadcast(b)` where `b` is `1 x cols`.
    AddRow(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    /// `alpha * a + beta` elementwise.
    Affine(Var, f64, f64),
    /// Elementwise product with a constant tensor (no grad to the constant).
    MulConst(Var, Tensor),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    ConcatCols(Var, Var),
    /// `out[i, :] = a[idx[i], :]`.
    GatherRows(Var, Vec<usize>),
    /// `out[idx[i], :] += a[i, :]`, out has `out_rows` rows.
    ScatterAddRows(Var, Vec<usize>),
    SumAll(Var),
    MeanAll(Var),
    /// Mean squared error against a constant target.
    Mse(Var, Tensor),
    /// Mean absolute error against a constant target.
    Mae(Var, Tensor),
}

struct Node {
    op: Op,
    value: Tensor,
}

/// A linear autodiff tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    poisoned: bool,
}

impl Tape {
    /// Empty tape.
    pub fn new() -> Self {
        Tape {
            nodes: Vec::new(),
            poisoned: false,
        }
    }

    /// True if any recorded node produced a non-finite value. A poisoned
    /// tape still evaluates and differentiates (NaN/inf propagate), so the
    /// caller — e.g. the trainer's divergence-recovery loop — can observe
    /// the blow-up and roll back instead of crashing mid-run.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes are recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total number of scalars held in node values — the working-set size
    /// of one recorded forward pass. Together with [`Tape::len`] this is
    /// the telemetry probe for per-sample autodiff cost: node count tracks
    /// op dispatch overhead, scalar count tracks memory traffic.
    pub fn value_scalars(&self) -> usize {
        self.nodes.iter().map(|n| n.value.len()).sum()
    }

    /// Value of a node.
    ///
    /// INVARIANT: every `Var` is minted by `push` on this tape and therefore
    /// indexes into `nodes`; tapes are not interchangeable across sessions.
    pub fn value(&self, v: Var) -> &Tensor {
        debug_assert!(v.0 < self.nodes.len(), "Var from a different tape");
        &self.nodes[v.0].value // lint: allow(panic, reason = "Var minted by this tape, see INVARIANT above")
    }

    fn push(&mut self, op: Op, value: Tensor) -> Var {
        // Non-finite values are a runtime condition (divergence), not a
        // programming error: record the poisoning instead of asserting so
        // recovery loops can roll back to a good state.
        if !value.all_finite() {
            self.poisoned = true;
        }
        self.nodes.push(Node { op, value });
        Var(self.nodes.len() - 1)
    }

    /// Register a leaf (input or parameter).
    pub fn leaf(&mut self, t: Tensor) -> Var {
        self.push(Op::Leaf, t)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), v)
    }

    /// Elementwise sum of two same-shaped tensors.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), |x, y| x + y);
        self.push(Op::Add(a, b), v)
    }

    /// Add a `1 x cols` row vector to every row of `a` (bias add).
    pub fn add_row(&mut self, a: Var, b: Var) -> Var {
        let (ar, ac) = self.value(a).shape();
        let (br, bc) = self.value(b).shape();
        assert_eq!(br, 1, "add_row rhs must be a row vector");
        assert_eq!(ac, bc, "add_row width mismatch");
        let av = self.value(a);
        let bv = self.value(b);
        let v = Tensor::from_fn(ar, ac, |r, c| av.get(r, c) + bv.get(0, c));
        self.push(Op::AddRow(a, b), v)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), |x, y| x - y);
        self.push(Op::Sub(a, b), v)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), |x, y| x * y);
        self.push(Op::Mul(a, b), v)
    }

    /// `alpha * a + beta` elementwise.
    pub fn affine(&mut self, a: Var, alpha: f64, beta: f64) -> Var {
        let v = self.value(a).map(|x| alpha * x + beta);
        self.push(Op::Affine(a, alpha, beta), v)
    }

    /// `1 - a` elementwise (GRU gate complement).
    pub fn one_minus(&mut self, a: Var) -> Var {
        self.affine(a, -1.0, 1.0)
    }

    /// Elementwise product with a constant (no gradient flows into `c`).
    pub fn mul_const(&mut self, a: Var, c: &Tensor) -> Var {
        let v = self.value(a).zip(c, |x, y| x * y);
        self.push(Op::MulConst(a, c.clone()), v)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a), v)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f64::tanh);
        self.push(Op::Tanh(a), v)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a);
        let bv = self.value(b);
        assert_eq!(av.rows(), bv.rows(), "concat_cols row mismatch");
        let (r, ac, bc) = (av.rows(), av.cols(), bv.cols());
        let v = Tensor::from_fn(r, ac + bc, |i, j| {
            if j < ac {
                av.get(i, j)
            } else {
                bv.get(i, j - ac)
            }
        });
        self.push(Op::ConcatCols(a, b), v)
    }

    /// Row gather: `out[i, :] = a[idx[i], :]`. Indices may repeat.
    pub fn gather_rows(&mut self, a: Var, idx: Vec<usize>) -> Var {
        let av = self.value(a);
        let cols = av.cols();
        for &i in &idx {
            assert!(i < av.rows(), "gather index {i} out of {} rows", av.rows());
        }
        let mut v = Tensor::zeros(idx.len(), cols);
        for (r, &i) in idx.iter().enumerate() {
            v.copy_row_from(r, av, i);
        }
        self.push(Op::GatherRows(a, idx), v)
    }

    /// Row scatter-add: `out[idx[i], :] += a[i, :]` into a fresh
    /// `out_rows x cols` zero tensor. The message-aggregation primitive.
    pub fn scatter_add_rows(&mut self, a: Var, idx: Vec<usize>, out_rows: usize) -> Var {
        let av = self.value(a);
        assert_eq!(idx.len(), av.rows(), "one index per input row required");
        let cols = av.cols();
        for &i in &idx {
            assert!(i < out_rows, "scatter index {i} out of {out_rows} rows");
        }
        let mut v = Tensor::zeros(out_rows, cols);
        for (r, &i) in idx.iter().enumerate() {
            for c in 0..cols {
                v.set(i, c, v.get(i, c) + av.get(r, c));
            }
        }
        self.push(Op::ScatterAddRows(a, idx), v)
    }

    /// Sum of all elements (`1 x 1`).
    pub fn sum_all(&mut self, a: Var) -> Var {
        let s = self.value(a).sum();
        self.push(Op::SumAll(a), Tensor::from_vec(1, 1, vec![s]))
    }

    /// Mean of all elements (`1 x 1`).
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = self.value(a);
        let m = v.sum() / v.len() as f64;
        self.push(Op::MeanAll(a), Tensor::from_vec(1, 1, vec![m]))
    }

    /// Mean squared error between `pred` and a constant `target` (`1 x 1`).
    pub fn mse(&mut self, pred: Var, target: &Tensor) -> Var {
        let p = self.value(pred);
        assert_eq!(p.shape(), target.shape(), "mse shape mismatch");
        let n = p.len() as f64;
        let loss = p
            .data()
            .iter()
            .zip(target.data())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f64>()
            / n;
        self.push(
            Op::Mse(pred, target.clone()),
            Tensor::from_vec(1, 1, vec![loss]),
        )
    }

    /// Mean absolute error between `pred` and a constant `target` (`1 x 1`).
    pub fn mae(&mut self, pred: Var, target: &Tensor) -> Var {
        let p = self.value(pred);
        assert_eq!(p.shape(), target.shape(), "mae shape mismatch");
        let n = p.len() as f64;
        let loss = p
            .data()
            .iter()
            .zip(target.data())
            .map(|(&a, &b)| (a - b).abs())
            .sum::<f64>()
            / n;
        self.push(
            Op::Mae(pred, target.clone()),
            Tensor::from_vec(1, 1, vec![loss]),
        )
    }

    /// Reverse pass from `loss` (must be `1 x 1`). Returns one gradient slot
    /// per node; leaves hold the accumulated parameter gradients.
    /// INVARIANT: `grads` has exactly one slot per tape node, so every node
    /// id (and every `Var` recorded inside an op, which predates its node)
    /// indexes into it.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(self.value(loss).shape(), (1, 1), "loss must be scalar");
        debug_assert!(loss.0 < self.nodes.len(), "loss Var from a different tape");
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::from_vec(1, 1, vec![1.0])); // lint: allow(panic, reason = "one grad slot per node, see INVARIANT above")
        for i in (0..=loss.0).rev() {
            // lint: allow(panic, reason = "i <= loss.0 < nodes.len() == grads.len()")
            let Some(g) = grads[i].take() else { continue };
            debug_assert!(
                self.poisoned || g.all_finite(),
                "non-finite gradient reached node {i} on a clean tape"
            );
            self.accumulate(i, &g, &mut grads);
            grads[i] = Some(g); // lint: allow(panic, reason = "same in-bounds index as the take above")
        }
        Gradients { grads }
    }

    /// INVARIANT: callers pass `i < self.nodes.len()` and a `grads` slice
    /// with one slot per node; ops only reference `Var`s older than their own
    /// node, so `v.0 < i` for every operand.
    fn accumulate(&self, i: usize, g: &Tensor, grads: &mut [Option<Tensor>]) {
        debug_assert!(i < self.nodes.len() && grads.len() == self.nodes.len());
        let poisoned = self.poisoned;
        let add_to = move |grads: &mut [Option<Tensor>], v: Var, delta: Tensor| {
            debug_assert!(
                poisoned || delta.all_finite(),
                "non-finite partial for node {} on a clean tape",
                v.0
            );
            // lint: allow(panic, reason = "operand Vars predate node i, see INVARIANT above")
            match &mut grads[v.0] {
                Some(existing) => existing.add_scaled(&delta, 1.0),
                slot @ None => *slot = Some(delta),
            }
        };
        let node = &self.nodes[i]; // lint: allow(panic, reason = "i bounds-checked by the debug_assert above, see INVARIANT")
        match &node.op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                let av = self.value(*a);
                let bv = self.value(*b);
                add_to(grads, *a, g.matmul(&bv.transpose()));
                add_to(grads, *b, av.transpose().matmul(g));
            }
            Op::Add(a, b) => {
                add_to(grads, *a, g.clone());
                add_to(grads, *b, g.clone());
            }
            Op::AddRow(a, b) => {
                add_to(grads, *a, g.clone());
                // column sums
                let mut gb = Tensor::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for c in 0..g.cols() {
                        gb.set(0, c, gb.get(0, c) + g.get(r, c));
                    }
                }
                add_to(grads, *b, gb);
            }
            Op::Sub(a, b) => {
                add_to(grads, *a, g.clone());
                add_to(grads, *b, g.map(|x| -x));
            }
            Op::Mul(a, b) => {
                let av = self.value(*a).clone();
                let bv = self.value(*b).clone();
                add_to(grads, *a, g.zip(&bv, |x, y| x * y));
                add_to(grads, *b, g.zip(&av, |x, y| x * y));
            }
            Op::Affine(a, alpha, _beta) => {
                add_to(grads, *a, g.map(|x| alpha * x));
            }
            Op::MulConst(a, c) => {
                add_to(grads, *a, g.zip(c, |x, y| x * y));
            }
            Op::Sigmoid(a) => {
                let y = &node.value;
                add_to(grads, *a, g.zip(y, |gx, yx| gx * yx * (1.0 - yx)));
            }
            Op::Tanh(a) => {
                let y = &node.value;
                add_to(grads, *a, g.zip(y, |gx, yx| gx * (1.0 - yx * yx)));
            }
            Op::Relu(a) => {
                let x = self.value(*a).clone();
                add_to(
                    grads,
                    *a,
                    g.zip(&x, |gx, xv| if xv > 0.0 { gx } else { 0.0 }),
                );
            }
            Op::ConcatCols(a, b) => {
                let ac = self.value(*a).cols();
                let bc = self.value(*b).cols();
                let ga = Tensor::from_fn(g.rows(), ac, |r, c| g.get(r, c));
                let gb = Tensor::from_fn(g.rows(), bc, |r, c| g.get(r, ac + c));
                add_to(grads, *a, ga);
                add_to(grads, *b, gb);
            }
            Op::GatherRows(a, idx) => {
                let rows = self.value(*a).rows();
                let mut ga = Tensor::zeros(rows, g.cols());
                for (r, &i) in idx.iter().enumerate() {
                    for c in 0..g.cols() {
                        ga.set(i, c, ga.get(i, c) + g.get(r, c));
                    }
                }
                add_to(grads, *a, ga);
            }
            Op::ScatterAddRows(a, idx) => {
                let mut ga = Tensor::zeros(idx.len(), g.cols());
                for (r, &i) in idx.iter().enumerate() {
                    ga.copy_row_from(r, g, i);
                }
                add_to(grads, *a, ga);
            }
            Op::SumAll(a) => {
                let s = g.get(0, 0);
                let (r, c) = self.value(*a).shape();
                add_to(grads, *a, Tensor::full(r, c, s));
            }
            Op::MeanAll(a) => {
                let av = self.value(*a);
                let s = g.get(0, 0) / av.len() as f64;
                let (r, c) = av.shape();
                add_to(grads, *a, Tensor::full(r, c, s));
            }
            Op::Mse(p, target) => {
                let pv = self.value(*p);
                let n = pv.len() as f64;
                let s = g.get(0, 0);
                let gp = pv.zip(target, |a, b| 2.0 * (a - b) * s / n);
                add_to(grads, *p, gp);
            }
            Op::Mae(p, target) => {
                let pv = self.value(*p);
                let n = pv.len() as f64;
                let s = g.get(0, 0);
                let gp = pv.zip(target, |a, b| (a - b).signum() * s / n);
                add_to(grads, *p, gp);
            }
        }
    }
}

/// Result of a backward pass.
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss w.r.t. node `v`, if it received any.
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Central finite-difference check of `d loss / d leaf` for every element
    /// of every listed leaf.
    fn grad_check(build: impl Fn(&mut Tape, &[Tensor]) -> Var, leaves: &[Tensor], tol: f64) {
        // Analytic gradients.
        let mut tape = Tape::new();
        let vars: Vec<Var> = leaves.iter().map(|t| tape.leaf(t.clone())).collect();
        let loss = build(&mut tape, leaves);
        let grads = tape.backward(loss);
        let eps = 1e-6;
        for (li, leaf) in leaves.iter().enumerate() {
            let analytic = grads
                .get(vars[li])
                .unwrap_or_else(|| panic!("leaf {li} got no gradient"))
                .clone();
            for e in 0..leaf.len() {
                let mut plus = leaves.to_vec();
                plus[li].data_mut()[e] += eps;
                let mut t1 = Tape::new();
                for t in &plus {
                    t1.leaf(t.clone());
                }
                let l1 = build(&mut t1, &plus);
                let mut minus = leaves.to_vec();
                minus[li].data_mut()[e] -= eps;
                let mut t2 = Tape::new();
                for t in &minus {
                    t2.leaf(t.clone());
                }
                let l2 = build(&mut t2, &minus);
                let numeric = (t1.value(l1).get(0, 0) - t2.value(l2).get(0, 0)) / (2.0 * eps);
                let a = analytic.data()[e];
                assert!(
                    (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                    "leaf {li} elem {e}: analytic {a} vs numeric {numeric}"
                );
            }
        }
    }

    fn rand_t(r: usize, c: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::xavier(r, c, &mut rng)
    }

    #[test]
    fn value_scalars_counts_all_node_values() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::zeros(2, 3)); // 6 scalars
        let b = tape.leaf(Tensor::zeros(2, 3)); // 6 scalars
        let s = tape.add(a, b); // 6 scalars
        let _total = tape.sum_all(s); // 1 scalar
        assert_eq!(tape.len(), 4);
        assert_eq!(tape.value_scalars(), 19);
    }

    #[test]
    fn grad_matmul_chain() {
        let a = rand_t(3, 4, 1);
        let b = rand_t(4, 2, 2);
        grad_check(
            |tape, _| {
                let (va, vb) = (Var(0), Var(1));
                let c = tape.matmul(va, vb);
                tape.sum_all(c)
            },
            &[a, b],
            1e-6,
        );
    }

    #[test]
    fn grad_elementwise_ops() {
        let a = rand_t(2, 3, 3);
        let b = rand_t(2, 3, 4);
        grad_check(
            |tape, _| {
                let (va, vb) = (Var(0), Var(1));
                let s = tape.add(va, vb);
                let d = tape.sub(s, vb);
                let m = tape.mul(d, va);
                let f = tape.affine(m, 0.5, -0.1);
                tape.mean_all(f)
            },
            &[a, b],
            1e-6,
        );
    }

    #[test]
    fn grad_activations() {
        let a = rand_t(2, 4, 5);
        for act in 0..3 {
            grad_check(
                |tape, _| {
                    let va = Var(0);
                    let y = match act {
                        0 => tape.sigmoid(va),
                        1 => tape.tanh(va),
                        _ => tape.relu(va),
                    };
                    tape.sum_all(y)
                },
                std::slice::from_ref(&a),
                1e-5,
            );
        }
    }

    #[test]
    fn grad_add_row_broadcast() {
        let a = rand_t(3, 4, 6);
        let b = rand_t(1, 4, 7);
        grad_check(
            |tape, _| {
                let (va, vb) = (Var(0), Var(1));
                let y = tape.add_row(va, vb);
                let z = tape.tanh(y);
                tape.mean_all(z)
            },
            &[a, b],
            1e-6,
        );
    }

    #[test]
    fn grad_concat() {
        let a = rand_t(2, 3, 8);
        let b = rand_t(2, 2, 9);
        grad_check(
            |tape, _| {
                let (va, vb) = (Var(0), Var(1));
                let y = tape.concat_cols(va, vb);
                let z = tape.sigmoid(y);
                tape.sum_all(z)
            },
            &[a, b],
            1e-6,
        );
    }

    #[test]
    fn grad_gather_scatter() {
        let a = rand_t(4, 3, 10);
        grad_check(
            |tape, _| {
                let va = Var(0);
                let gathered = tape.gather_rows(va, vec![0, 2, 2, 3, 1]);
                let act = tape.tanh(gathered);
                let scattered = tape.scatter_add_rows(act, vec![1, 0, 1, 2, 2], 3);
                tape.sum_all(scattered)
            },
            &[a],
            1e-6,
        );
    }

    #[test]
    fn grad_losses() {
        let p = rand_t(3, 2, 11);
        let target = rand_t(3, 2, 12);
        let t2 = target.clone();
        grad_check(
            move |tape, _| {
                let vp = Var(0);
                tape.mse(vp, &t2)
            },
            std::slice::from_ref(&p),
            1e-6,
        );
        let t3 = target.clone();
        grad_check(
            move |tape, _| {
                let vp = Var(0);
                tape.mae(vp, &t3)
            },
            &[p],
            1e-5,
        );
    }

    #[test]
    fn grad_mul_const_and_one_minus() {
        let a = rand_t(2, 3, 13);
        let mask = Tensor::from_fn(2, 3, |r, c| if (r + c) % 2 == 0 { 1.0 } else { 0.3 });
        grad_check(
            move |tape, _| {
                let va = Var(0);
                let m = tape.mul_const(va, &mask);
                let o = tape.one_minus(m);
                tape.mean_all(o)
            },
            &[a],
            1e-6,
        );
    }

    #[test]
    fn grad_gru_like_composite() {
        // A full GRU-style cell wired by hand: the most representative
        // composite for RouteNet.
        let x = rand_t(5, 3, 20);
        let h = rand_t(5, 4, 21);
        let wz = rand_t(3, 4, 22);
        let uz = rand_t(4, 4, 23);
        let bz = rand_t(1, 4, 24);
        let wh = rand_t(3, 4, 25);
        let uh = rand_t(4, 4, 26);
        grad_check(
            |tape, _| {
                let (x, h, wz, uz, bz, wh, uh) =
                    (Var(0), Var(1), Var(2), Var(3), Var(4), Var(5), Var(6));
                let xw = tape.matmul(x, wz);
                let hu = tape.matmul(h, uz);
                let s = tape.add(xw, hu);
                let s = tape.add_row(s, bz);
                let z = tape.sigmoid(s);
                let xwh = tape.matmul(x, wh);
                let rh = tape.mul(z, h); // stand-in for reset gate
                let rhu = tape.matmul(rh, uh);
                let cand_in = tape.add(xwh, rhu);
                let cand = tape.tanh(cand_in);
                let zi = tape.one_minus(z);
                let keep = tape.mul(zi, h);
                let take = tape.mul(z, cand);
                let hnew = tape.add(keep, take);
                tape.mean_all(hnew)
            },
            &[x, h, wz, uz, bz, wh, uh],
            1e-5,
        );
    }

    #[test]
    fn values_are_correct_for_simple_graph() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let b = tape.leaf(Tensor::from_vec(1, 2, vec![3.0, 4.0]));
        let s = tape.add(a, b);
        assert_eq!(tape.value(s).data(), &[4.0, 6.0]);
        let m = tape.mul(s, s);
        assert_eq!(tape.value(m).data(), &[16.0, 36.0]);
        let l = tape.sum_all(m);
        assert_eq!(tape.value(l).get(0, 0), 52.0);
        let grads = tape.backward(l);
        // dL/da = 2*s = [8, 12]
        assert_eq!(grads.get(a).unwrap().data(), &[8.0, 12.0]);
        assert_eq!(grads.get(b).unwrap().data(), &[8.0, 12.0]);
    }

    #[test]
    fn diamond_graph_accumulates_gradients() {
        // loss = sum(a*a + a): grad = 2a + 1
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(1, 3, vec![1.0, -2.0, 0.5]));
        let sq = tape.mul(a, a);
        let s = tape.add(sq, a);
        let l = tape.sum_all(s);
        let grads = tape.backward(l);
        assert_eq!(grads.get(a).unwrap().data(), &[3.0, -3.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_requires_scalar() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::zeros(2, 2));
        tape.backward(a);
    }

    #[test]
    fn unused_nodes_get_no_gradient() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(1, 1, vec![2.0]));
        let unused = tape.leaf(Tensor::from_vec(1, 1, vec![5.0]));
        let l = tape.sum_all(a);
        let grads = tape.backward(l);
        assert!(grads.get(unused).is_none());
        assert!(grads.get(a).is_some());
    }
}
